"""Cost-based query planning: ``algorithm="auto"`` (the engine's middle layer).

The paper's Figs. 12–17 show that no single algorithm wins everywhere:
BIG/IBIG dominate when their bounds bite (low missing rate, small ``k``),
UBB avoids their index build on one-shot queries, and the vectorised
Naive scan is unbeatable on small datasets or when heavy missingness
(MovieLens, σ ≈ 0.95) makes every bound loose. The seed API pushed that
choice onto the caller; :func:`plan_query` makes it from a cost model over
``(n, d, missing rate, k, index availability)`` instead.

The model prices two kinds of work, calibrated for the NumPy kernels in
:mod:`repro.engine.kernels`:

* vectorised element traffic (seconds per boolean element), and
* per-object Python steps (seconds each — queue pops, bitmap
  intersections, candidate-set updates).

The two constants start from hand-fitted defaults, are re-measured once
per process by an import-time microbenchmark (:class:`Calibration`,
clipped so noise rescales but never inverts the model), and are then
refined per algorithm from observed query runtimes — the
:class:`~repro.engine.session.QueryEngine` feeds every planned query's
measured time back through :func:`record_observation`.

Bound-based algorithms score only part of the MaxScore queue; the scanned
fraction is estimated from ``k/n`` and the missing rate (missing values
widen every ``T_i`` set, which is the paper's own explanation for the
MovieLens behaviour in Fig. 18a). Preparation cost is charged unless the
caller reports the structure as already prepared (the
:class:`~repro.engine.session.QueryEngine` does exactly that), spread
over ``repeats`` expected queries otherwise.

The chosen plan is *always exact* — every registered algorithm returns
the same score multiset for the same ``(S, k)``. As everywhere in the
library, tie-breaking at the k-th score boundary is arbitrary by design
(paper: "random selection"), so *which* of several boundary-tied objects
is returned may differ between planned algorithms; the score multiset is
the invariant.
"""

from __future__ import annotations

import inspect
import math
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..errors import InvalidParameterError
from . import telemetry
from ._lockcheck import make_lock
from .kernels import _BITSET_TABLE_BUDGET_BYTES, _bitset_table_bytes
from .telemetry import clock as _clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.dataset import IncompleteDataset

__all__ = [
    "QueryPlan",
    "DeltaPlan",
    "PartitionPlan",
    "Calibration",
    "calibration",
    "calibration_state",
    "apply_calibration_state",
    "estimate_costs",
    "estimate_delta_costs",
    "estimate_partition_costs",
    "estimate_survival",
    "plan_query",
    "plan_delta",
    "plan_partitioned",
    "explain_plan",
    "merge_plan_options",
    "record_observation",
    "reset_calibration",
]

#: Seconds per vectorised boolean element touched by a broadcast kernel
#: (hand-fitted default; recalibrated once per process, see Calibration).
_VEC_DEFAULT = 2.0e-9
#: Seconds per per-object Python step (queue pop + bound check + offer).
_STEP_DEFAULT = 4.0e-6
#: Per-iteration cost of the pure-Python reference loop on the machine the
#: defaults were fitted on; the measured loop rescales _STEP through it.
_REFERENCE_LOOP_S = 60e-9
#: Extra per-object steps BIG pays for bitmap intersections and rim checks.
_BIG_STEP_FACTOR = 6.0
#: Each calibrated constant may move at most this factor from its default…
_CAL_CLIP = 2.5
#: …and the vec/step *ratio* at most this factor, so a noisy microbenchmark
#: can rescale the model but never flip its regime ordering outright.
_RATIO_CLIP = 2.0
#: Observed-runtime feedback bounds the per-algorithm bias multiplier.
_BIAS_CLIP = (0.5, 2.0)
#: EWMA weight (in log space) of one observation against the running bias.
_BIAS_ALPHA = 0.3
#: Measured kernel-backend speedups are believed only within this range —
#: a corrupt store entry can rescale vectorised costs but not zero them.
_BACKEND_SPEEDUP_CLIP = (0.25, 16.0)


@dataclass
class Calibration:
    """The cost model's machine-dependent constants, per process.

    ``vec``/``step`` start from the hand-fitted defaults and are replaced
    once, at import time, by a microbenchmark of this machine (clipped —
    see ``_CAL_CLIP``/``_RATIO_CLIP``). ``bias`` holds per-algorithm
    multipliers learned from observed query runtimes vs modelled cost
    (:func:`record_observation`, fed by ``QueryEngine.query``); it starts
    empty and is bounded by ``_BIAS_CLIP`` so exploration noise cannot run
    away. ``backends`` holds measured kernel-backend speedups relative to
    the numpy route (:func:`record_backend_speedup`, fed by
    ``backend.measure_backend_speedup``); persisting them through the
    store lets a cold process auto-select the right backend without
    re-measuring. Set ``REPRO_PLANNER_CALIBRATION=0`` to pin the defaults.
    """

    vec: float = _VEC_DEFAULT
    step: float = _STEP_DEFAULT
    source: str = "default"
    bias: dict[str, float] = field(default_factory=dict)
    backends: dict[str, float] = field(default_factory=dict)

    def biased(self, algorithm: str, seconds: float) -> float:
        return seconds * self.bias.get(algorithm, 1.0)


_calibration: Calibration | None = None

#: Guards the process-wide calibration singleton and its ``bias`` dict —
#: ``record_observation`` is fed from every planned query, including from
#: concurrent server threads sharing one process.
_calibration_lock = make_lock("planner")


def _measure_vec() -> float:
    """Seconds per boolean element of a vectorised compare (best of 3)."""
    elements = 1 << 18
    a = np.linspace(0.0, 1.0, elements)
    b = a[::-1].copy()
    best = float("inf")
    for _ in range(3):
        start = _clock()
        (a <= b).sum()
        best = min(best, _clock() - start)
    return best / elements


def _measure_loop() -> float:
    """Seconds per iteration of a small pure-Python bookkeeping loop."""
    items = list(range(4096))
    best = float("inf")
    for _ in range(3):
        start = _clock()
        acc = 0
        for value in items:
            if value > acc:
                acc = value
        best = min(best, _clock() - start)
    return best / len(items)


def calibration() -> Calibration:
    """The process-wide calibration, measuring it on first use."""
    global _calibration
    with _calibration_lock:
        if _calibration is not None:
            return _calibration
        if os.environ.get("REPRO_PLANNER_CALIBRATION", "1").lower() in ("0", "false", "off"):
            _calibration = Calibration()
            return _calibration
        try:
            vec = float(np.clip(_measure_vec(), _VEC_DEFAULT / _CAL_CLIP, _VEC_DEFAULT * _CAL_CLIP))
            step = _STEP_DEFAULT * (_measure_loop() / _REFERENCE_LOOP_S)
            step = float(np.clip(step, _STEP_DEFAULT / _CAL_CLIP, _STEP_DEFAULT * _CAL_CLIP))
            # Bound the relative tilt: pull both constants toward each other
            # until the vec/step ratio moved at most _RATIO_CLIP from default.
            ratio = (vec / _VEC_DEFAULT) / (step / _STEP_DEFAULT)
            if ratio > _RATIO_CLIP or ratio < 1.0 / _RATIO_CLIP:
                excess = math.sqrt(ratio / _RATIO_CLIP) if ratio > 1 else math.sqrt(ratio * _RATIO_CLIP)
                vec /= excess
                step *= excess
            _calibration = Calibration(vec=vec, step=step, source="microbenchmark")
        except Exception:  # pragma: no cover - timing must never break planning
            _calibration = Calibration()
        return _calibration


def reset_calibration() -> None:
    """Forget measurements and biases (tests; re-measures on next use)."""
    global _calibration
    with _calibration_lock:
        _calibration = None


def record_observation(algorithm: str, modelled_seconds: float, measured_seconds: float) -> None:
    """Feed one observed (modelled, measured) pair back into the model.

    Nudges the per-algorithm bias multiplier by a bounded log-space EWMA;
    :class:`~repro.engine.session.QueryEngine` calls this after every
    planned query, so ``algorithm="auto"`` converges toward the machine's
    actual behaviour instead of the hand-fitted constants. Thread-safe:
    the read-nudge-write cycle holds the calibration lock.
    """
    if modelled_seconds <= 0.0 or measured_seconds <= 0.0:
        return
    with _calibration_lock:
        cal = calibration()
        previous = cal.bias.get(algorithm, 1.0)
        nudged = previous * (measured_seconds / modelled_seconds) ** _BIAS_ALPHA
        bias = cal.bias[algorithm] = float(np.clip(nudged, *_BIAS_CLIP))
    if telemetry.enabled():
        registry = telemetry.metrics()
        registry.count(f"planner.observations.{algorithm}")
        registry.gauge(f"planner.bias.{algorithm}", bias)
        registry.observe(f"planner.measured_seconds.{algorithm}", measured_seconds)


def backend_speedup(name: str) -> float | None:
    """The recorded speedup of kernel backend *name* over numpy, if any.

    ``0.0`` is a real (and meaningful) value: the measurement found the
    backend unusable (e.g. a parity mismatch), which auto-selection
    treats as "never pick this".
    """
    with _calibration_lock:
        return calibration().backends.get(str(name))


def record_backend_speedup(name: str, speedup: float) -> None:
    """Record a measured kernel-backend speedup (persisted via the store).

    Positive values are clipped to ``_BACKEND_SPEEDUP_CLIP``; ``0.0``
    passes through untouched as the "disabled by measurement" marker.
    """
    try:
        value = float(speedup)
    except (TypeError, ValueError):
        return
    if not math.isfinite(value) or value < 0.0:
        return
    if value > 0.0:
        value = float(np.clip(value, *_BACKEND_SPEEDUP_CLIP))
    with _calibration_lock:
        calibration().backends[str(name)] = value


def _active_backend_speedup() -> float:
    """Vectorised-cost scale of the *currently selected* kernel backend.

    1.0 for numpy (the constants' reference point) or when nothing has
    been measured yet. Deliberately passive: it peeks at the selection
    without resolving it, so pure planning never triggers a backend
    build/measurement. Exception-safe: the planner must keep working
    even if the backend layer cannot load.
    """
    try:  # deferred: backend imports planner for calibration recording
        from . import backend as backend_module

        active = backend_module._active_backend
        if active is None or not active.native:
            return 1.0
        # Prefer the calibration of the variant actually dispatched
        # (e.g. "native:avx512:t4"): a speedup measured for one SIMD
        # route / thread count must not price a different one. Fall back
        # to the backend-wide key for observations recorded before the
        # variant was known (or persisted by an older store).
        variant = getattr(active, "calibration_key", None)
        speedup = backend_speedup(variant) if variant else None
        if speedup is None:
            speedup = backend_speedup(active.name)
    except Exception:  # pragma: no cover - defensive
        return 1.0
    if speedup is None or speedup <= 0.0:
        return 1.0
    return float(speedup)


def calibration_state() -> dict:
    """JSON-safe snapshot of the calibration (what the store persists).

    ``vec``/``step`` travel for inspection; ``bias`` is the part worth
    reusing across processes (see :func:`apply_calibration_state`).
    """
    with _calibration_lock:
        cal = calibration()
        return {
            "vec": cal.vec,
            "step": cal.step,
            "source": cal.source,
            "bias": dict(cal.bias),
            "backends": dict(cal.backends),
        }


def apply_calibration_state(state: Mapping) -> None:
    """Adopt a persisted calibration snapshot into this process.

    Only the learned per-algorithm ``bias`` multipliers are applied
    (re-clipped defensively), and only for algorithms this process has
    not observed yet — in-process learning is always fresher than a
    persisted snapshot, so opening a store mid-process can never regress
    a bias that ``record_observation`` already refined. ``vec``/``step``
    stay as this machine's own import-time measurement — they cost ~2 ms
    to re-measure and adopting another host's constants could mis-rank
    algorithms outright. Unknown or malformed fields are ignored so a
    hand-edited store cannot break planning.
    """
    if not isinstance(state, Mapping):
        return
    bias = state.get("bias")
    backends = state.get("backends")
    with _calibration_lock:
        cal = calibration()
        if isinstance(bias, Mapping):
            for algorithm, value in bias.items():
                if str(algorithm) in cal.bias:
                    continue
                try:
                    cal.bias[str(algorithm)] = float(np.clip(float(value), *_BIAS_CLIP))
                except (TypeError, ValueError):
                    continue
        if isinstance(backends, Mapping):
            # Same freshness rule as bias: a persisted speedup never
            # overrides one this process measured itself.
            for name, value in backends.items():
                if str(name) in cal.backends:
                    continue
                record_backend_speedup(str(name), value)

#: Algorithms the planner will choose between. Deliberately the paper's
#: core trio + Naive: the alternative-index algorithms (mosaic/brtree/
#: quantization) answer the same queries but are never the fastest route
#: in this implementation, and "ibig" only trades time for space.
_PLANNABLE = ("naive", "ubb", "big")


@dataclass(frozen=True)
class QueryPlan:
    """Outcome of cost-based planning for one ``(dataset, k)`` query."""

    #: Registry name of the chosen algorithm.
    algorithm: str
    #: Constructor options for :func:`repro.core.query.make_algorithm`.
    options: dict = field(default_factory=dict)
    #: One-line human-readable justification.
    reason: str = ""
    #: Modelled cost (seconds) of the chosen plan.
    estimated_seconds: float = 0.0
    #: Modelled cost of every candidate plan, for inspection/printing.
    candidate_seconds: dict = field(default_factory=dict)

    def summary(self) -> str:
        """Render the plan the way ``repro query --explain`` prints it."""
        ranking = ", ".join(
            f"{name}={seconds * 1e3:.2f}ms"
            for name, seconds in sorted(self.candidate_seconds.items(), key=lambda kv: kv[1])
        )
        return f"plan: {self.algorithm} ({self.reason}) | modelled: {ranking}"


def _scanned_fraction(n: int, k: int, missing_rate: float) -> float:
    """Expected fraction of the MaxScore queue a bound-based scan visits.

    Grows with ``k/n`` (deeper answers need more exact scores) and with
    the missing rate (every missing cell inflates ``|T_i|``, flattening
    the queue). The constants are fitted loosely to this implementation's
    behaviour on the Table 2 grid; the planner only needs ordering, not
    absolute accuracy.
    """
    base = min(1.0, 4.0 * max(k, 1) / max(n, 1))
    slack = missing_rate * 2.0
    return float(min(1.0, base + 0.02 + slack * slack))


def estimate_costs(
    n: int,
    d: int,
    missing_rate: float,
    k: int,
    *,
    prepared: Sequence[str] = (),
    repeats: int = 1,
) -> dict[str, float]:
    """Modelled query cost (seconds) of each plannable algorithm."""
    if n <= 0 or d <= 0:
        raise InvalidParameterError(f"need n >= 1 and d >= 1, got n={n} d={d}")
    if not 0.0 <= missing_rate <= 1.0:
        raise InvalidParameterError(f"missing_rate must lie in [0, 1], got {missing_rate}")
    repeats = max(int(repeats), 1)
    prepared_set = frozenset(prepared)
    cal = calibration()
    # Vectorised-kernel terms scale with the active kernel backend: a
    # native backend measured S× faster than numpy divides every `vec`
    # contribution by S while the pure-Python `step` terms stay put, so
    # ``algorithm="auto"`` prices plans for the backend that will run them.
    vec, step = cal.vec / _active_backend_speedup(), cal.step

    pair_elems = float(n) * n * d
    frac = _scanned_fraction(n, k, missing_rate)
    scanned = frac * n

    # Naive: one blocked kernel sweep over all n objects, no preparation.
    costs = {"naive": vec * pair_elems + step * math.ceil(n / 256)}

    # UBB: MaxScore queue build (unless prepared), then per-object exact
    # scores down the queue until Heuristic 1 fires.
    ubb_prep = 0.0 if "ubb" in prepared_set else (vec * n * d * max(math.log2(n), 1.0)) / repeats
    costs["ubb"] = ubb_prep + scanned * (step + vec * n * d)

    # BIG: bitmap index build is ~one pass per distinct value per dimension
    # (bounded by n but typically the Table 2 cardinality ~100); queries
    # replace the O(n·d) exact score with a handful of packed bitmap ops.
    effective_cardinality = min(n, 160)
    big_prep = (
        0.0
        if "big" in prepared_set
        else (vec * n * d * effective_cardinality * 0.5) / repeats
    )
    costs["big"] = big_prep + scanned * step * _BIG_STEP_FACTOR + scanned * vec * n * 0.1

    # Observed-runtime feedback: bounded per-algorithm multipliers learned
    # from QueryStats history (see record_observation).
    return {name: cal.biased(name, seconds) for name, seconds in costs.items()}


def plan_query(
    dataset: "IncompleteDataset",
    k: int,
    *,
    prepared: Sequence[str] = (),
    repeats: int = 1,
) -> QueryPlan:
    """Choose the cheapest exact algorithm for one TKD query.

    Parameters
    ----------
    dataset: the query's dataset (only shape statistics are read).
    k: the answer size.
    prepared: algorithm names whose auxiliary structures already exist
        (their preparation cost is not charged) — the
        :class:`~repro.engine.session.QueryEngine` passes its cache state.
    repeats: expected number of queries that will reuse the preparation;
        amortises index builds for parametrised sweeps.
    """
    with telemetry.trace("planner.plan") as span:
        n, d = dataset.n, dataset.d
        missing_rate = dataset.missing_rate
        costs = estimate_costs(n, d, missing_rate, k, prepared=prepared, repeats=repeats)

        algorithm = min(costs, key=costs.__getitem__)
        options: dict = {}
        if algorithm == "ubb":
            # Blocked exact scoring amortises the per-object kernel dispatch.
            # A constant block keeps the options — and therefore a session's
            # prepared-structure cache key — identical across a k-ladder.
            options["block"] = 64

        if algorithm == "naive":
            reason = (
                f"vectorised scan wins at n={n}, d={d}, σ={missing_rate:.2f} "
                "(bounds too loose or dataset too small to repay preparation)"
            )
        elif algorithm == "ubb":
            reason = (
                f"MaxScore pruning with blocked scoring at k={k}, σ={missing_rate:.2f} "
                "without paying an index build"
            )
        else:
            reason = (
                f"bitmap pruning repays its index at n={n}, k={k}, σ={missing_rate:.2f}"
                + (" (index already prepared)" if "big" in frozenset(prepared) else "")
            )
        span.set("algorithm", algorithm)
        span.set("estimated_seconds", costs[algorithm])
        return QueryPlan(
            algorithm=algorithm,
            options=options,
            reason=reason,
            estimated_seconds=costs[algorithm],
            candidate_seconds=dict(costs),
        )


#: A cold table rebuild costs roughly this many passes over the packed
#: table bytes (stable argsort + one-hot scatter + bitwise accumulate per
#: direction), versus ~1 splice copy per structural patch op. Fitted
#: loosely against the kernels on the Table 2 grid; like the query model,
#: only the ordering has to be right.
_REBUILD_PASS_FACTOR = 10.0
#: Tombstones beyond this dead fraction force a compacting rebuild even
#: when per-delta patch cost still looks cheaper — the debt ceiling.
_MAX_TOMBSTONE_DEBT = 0.5
#: Weight of the amortised tombstone debt in the patch-vs-rebuild margin:
#: each dead slot inflates every future query/patch a little, so patching
#: is charged ``debt_weight × dead_fraction`` of a rebuild per delta.
_DEBT_WEIGHT = 0.25


@dataclass(frozen=True)
class DeltaPlan:
    """Patch-vs-rebuild decision for applying one delta to prepared state."""

    #: ``"patch"`` (splice the existing tables) or ``"rebuild"`` (cold
    #: build over the child's live rows, shedding tombstone debt).
    action: str
    #: One-line human-readable justification.
    reason: str
    #: Modelled cost (seconds) of patching the parent's structures.
    patch_seconds: float = 0.0
    #: Modelled cost (seconds) of rebuilding from scratch.
    rebuild_seconds: float = 0.0
    #: Tombstone debt (dead storage fraction) the child would carry.
    tombstone_debt: float = 0.0

    def summary(self) -> str:
        return (
            f"delta plan: {self.action} ({self.reason}) | "
            f"patch={self.patch_seconds * 1e3:.2f}ms "
            f"rebuild={self.rebuild_seconds * 1e3:.2f}ms "
            f"debt={self.tombstone_debt:.0%}"
        )


def estimate_delta_costs(
    storage_n: int,
    d: int,
    *,
    inserts: int = 0,
    deletes: int = 0,
    updates: int = 0,
    changed_dims: int | None = None,
    tombstones: int = 0,
    tables_ready: bool = True,
) -> dict[str, float]:
    """Modelled seconds for patching vs rebuilding one version's tables.

    ``changed_dims`` is the number of dimensions an average update
    actually changes (updates re-rank only those); defaults to all ``d``.
    The patch estimate charges one table-splice copy per structural op
    per direction, plus the *amortised tombstone debt*: every dead slot
    keeps inflating table width for all later work, so each patched delta
    is charged a slice of the rebuild that would shed the debt.
    """
    if storage_n <= 0 or d <= 0:
        raise InvalidParameterError(f"need storage_n >= 1 and d >= 1, got {storage_n}, {d}")
    cal = calibration()
    new_storage = storage_n + max(int(inserts), 0)
    words = (new_storage + 63) >> 6
    table_bytes = 2.0 * d * (new_storage + 1) * words * 8.0
    splice_bytes = table_bytes / (2.0 * d)  # one direction of one dimension
    changed = d if changed_dims is None else max(min(int(changed_dims), d), 0)

    if not tables_ready:
        # No tables to preserve: "patching" is sentinel bookkeeping only.
        patch = cal.vec * (inserts + updates + deletes + 1) * d * 64
        rebuild = cal.vec * table_bytes * _REBUILD_PASS_FACTOR + cal.step * d
        return {"patch": patch, "rebuild": rebuild, "tombstone_debt": _debt(new_storage, tombstones)}

    rebuild = cal.vec * table_bytes * _REBUILD_PASS_FACTOR + cal.step * d
    structural = inserts * 2 * d + updates * 4 * changed  # splices per delta
    patch = cal.vec * structural * splice_bytes + cal.step * (inserts + updates + deletes)
    debt = _debt(new_storage, tombstones + deletes)
    patch += _DEBT_WEIGHT * debt * rebuild
    return {"patch": patch, "rebuild": rebuild, "tombstone_debt": debt}


def _debt(storage_n: int, tombstones: int) -> float:
    return min(max(tombstones, 0) / max(storage_n, 1), 1.0)


def plan_delta(
    storage_n: int,
    d: int,
    *,
    inserts: int = 0,
    deletes: int = 0,
    updates: int = 0,
    changed_dims: int | None = None,
    tombstones: int = 0,
    tables_ready: bool = True,
) -> DeltaPlan:
    """Decide whether to patch prepared tables in place or rebuild them.

    The session layer calls this on every
    :meth:`~repro.engine.session.QueryEngine.apply_delta`; ``"rebuild"``
    doubles as the lazy compaction trigger (a rebuild over the live rows
    sheds all tombstones). Small deltas patch; bulk rewrites and
    debt-saturated storage rebuild.
    """
    costs = estimate_delta_costs(
        storage_n,
        d,
        inserts=inserts,
        deletes=deletes,
        updates=updates,
        changed_dims=changed_dims,
        tombstones=tombstones,
        tables_ready=tables_ready,
    )
    debt = costs["tombstone_debt"]
    if not tables_ready:
        action, reason = "patch", "no tables built yet — sentinel bookkeeping only"
    elif debt >= _MAX_TOMBSTONE_DEBT:
        action = "rebuild"
        reason = f"tombstone debt {debt:.0%} ≥ {_MAX_TOMBSTONE_DEBT:.0%} — compacting"
    elif costs["rebuild"] < costs["patch"]:
        action = "rebuild"
        reason = (
            f"bulk delta (+{inserts}/-{deletes}/~{updates}) cheaper to rebuild "
            f"at n={storage_n}, d={d}"
        )
    else:
        action = "patch"
        reason = f"splice {inserts + updates + deletes} ops into cached tables"
    return DeltaPlan(
        action=action,
        reason=reason,
        patch_seconds=costs["patch"],
        rebuild_seconds=costs["rebuild"],
        tombstone_debt=debt,
    )


#: Charged once per pool worker a partitioned plan would spin up: process
#: spawn + payload pickling. Generous on purpose — partitioning should
#: only win when shards carry real work.
_POOL_SPAWN_SECONDS = 0.04
#: A shard's packed-table route costs roughly this many passes over the
#: table bytes (build + one gather sweep), mirroring _REBUILD_PASS_FACTOR.
_SHARD_TABLE_PASSES = 12.0


@dataclass(frozen=True)
class PartitionPlan:
    """Outcome of pricing partitioned vs. monolithic execution."""

    #: ``"partition"`` (run the two-phase protocol) or ``"monolithic"``.
    action: str
    #: Shard count the estimate priced (the best candidate).
    partitions: int
    #: Pool workers the estimate assumed (1 = in-process shards).
    workers: int
    #: Modelled seconds of the partitioned plan.
    estimated_seconds: float
    #: Modelled seconds of the best monolithic algorithm.
    monolithic_seconds: float
    #: Estimated phase-2 candidate-survival fraction.
    survival: float
    #: One-line human-readable justification.
    reason: str = ""
    #: True when the plan expects out-of-core execution: the shards'
    #: table footprint exceeds the memory budget, so tables spill to
    #: memory-mapped store files under a resident-set budget.
    spill: bool = False
    #: Estimated total prepared-table bytes across all shards.
    table_bytes: int = 0

    def summary(self) -> str:
        text = (
            f"partition plan: {self.action} (P={self.partitions}, W={self.workers}) — "
            f"partitioned {self.estimated_seconds * 1e3:.1f}ms vs "
            f"monolithic {self.monolithic_seconds * 1e3:.1f}ms, "
            f"est. survival {self.survival:.0%} ({self.reason})"
        )
        if self.spill:
            text += f" [out-of-core: ~{self.table_bytes / 1e6:.0f}MB of shard tables spill]"
        return text


def estimate_survival(n: int, k: int, missing_rate: float, partitions: int) -> float:
    """Expected fraction of objects surviving the phase-1 bound merge.

    Grows with ``k/n`` (a deeper answer lowers τ), with the partition
    count (each shard's summary bound is looser than a global bound, and
    the lower bound is only a ``1/P`` slice of the true score), and with
    the missing rate (missing cells widen every per-dimension count).
    Like the query model, only the ordering has to be right.
    """
    base = min(1.0, 8.0 * max(k, 1) / max(n, 1))
    spread = 0.015 * max(partitions - 1, 0)
    slack = missing_rate * missing_rate
    return float(min(1.0, base + 0.02 + spread + slack))


def estimate_partition_costs(
    n: int,
    d: int,
    missing_rate: float,
    k: int,
    *,
    partitions: int,
    workers: int = 1,
) -> dict[str, float]:
    """Modelled seconds of the two-phase protocol at one ``(P, W)`` point."""
    if partitions < 1:
        raise InvalidParameterError(f"partitions must be >= 1, got {partitions}")
    cal = calibration()
    partitions = min(int(partitions), n)
    workers = max(int(workers), 1)
    m = math.ceil(n / partitions)
    rounds = math.ceil(partitions / min(workers, partitions))

    table_bytes = _bitset_table_bytes(m, d)
    if table_bytes <= _BITSET_TABLE_BUDGET_BYTES:
        # Table build + one packed gather sweep over the shard's members.
        shard_seconds = cal.vec * table_bytes * _SHARD_TABLE_PASSES / 8.0
    else:
        shard_seconds = cal.vec * float(m) * m * d  # blocked broadcast scan
    merge_seconds = cal.vec * float(n) * d * partitions  # summary UB sweeps

    survival = estimate_survival(n, k, missing_rate, partitions)
    candidates = survival * n
    if table_bytes <= _BITSET_TABLE_BUDGET_BYTES:
        exchange_shard = cal.vec * candidates * d * (m / 8.0)  # packed gathers
    else:
        exchange_shard = cal.vec * candidates * m * d
    spawn = _POOL_SPAWN_SECONDS * (workers if workers > 1 else 0)
    # Fixed per-shard Python work the kernels can't amortise: subset
    # construction, fingerprinting, summary sorts, dispatch bookkeeping.
    per_shard_fixed = cal.step * 100 + cal.vec * m * d * 10
    total = (
        rounds * (shard_seconds + exchange_shard)
        + merge_seconds
        + spawn
        + per_shard_fixed * partitions
    )
    return {
        "total": total,
        "phase1": rounds * shard_seconds + merge_seconds,
        "phase2": rounds * exchange_shard,
        "survival": survival,
        "spawn": spawn,
    }


def plan_partitioned(
    n: int,
    d: int,
    missing_rate: float,
    k: int,
    *,
    partitions: int | None = None,
    workers: int | None = None,
    memory_budget: int | None = None,
) -> PartitionPlan:
    """Price partitioned vs. monolithic execution for one query.

    With *partitions* given, only that shard count is priced (the engine
    still executes a forced ``partitions=P`` request either way — the
    plan is what ``partitions="auto"`` consults). Otherwise a small
    ladder of worker-aligned candidates is searched.

    *memory_budget* adds the out-of-core dimension: when the monolithic
    tables alone would exceed it, partitioning is forced (the monolithic
    engine cannot run at all) and the shard count is doubled until one
    shard's tables fit in ``budget/8`` — so a resident set of at least
    ~8 shard tables cycles under the budget while the rest stay spilled
    on disk. ``plan.spill`` reports whether execution will go
    out-of-core at the chosen P.
    """
    if n <= 0 or d <= 0:
        raise InvalidParameterError(f"need n >= 1 and d >= 1, got n={n} d={d}")
    workers = max(int(workers), 1) if workers is not None else max(os.cpu_count() or 1, 1)
    monolithic = min(estimate_costs(n, d, missing_rate, k).values())

    budget = None if memory_budget is None else max(int(memory_budget), 1)
    # Non-None exactly when the budget *forces* partitioning (the
    # monolithic tables alone would not fit).
    forced_budget = (
        budget if budget is not None and _bitset_table_bytes(n, d) > budget else None
    )
    if partitions is not None:
        ladder = [max(int(partitions), 1)]
    elif forced_budget is not None:
        per_shard_target = max(forced_budget // 8, 1)
        p = max(workers, 2)
        while p < n and _bitset_table_bytes(math.ceil(n / p), d) > per_shard_target:
            p *= 2
        ladder = [min(p, n)]
    else:
        ladder = sorted({workers, 2 * workers, 4}) if workers > 1 else [4]
    best_p: int | None = None
    best: dict[str, float] | None = None
    for p in ladder:
        p = min(max(p, 1), n)
        costs = estimate_partition_costs(
            n, d, missing_rate, k, partitions=p, workers=workers
        )
        if best is None or costs["total"] < best["total"]:
            best_p, best = p, costs
    assert best_p is not None and best is not None  # ladder is never empty

    table_bytes = best_p * _bitset_table_bytes(math.ceil(n / best_p), d)
    spill = budget is not None and table_bytes > budget
    if forced_budget is not None:
        action = "partition"
        reason = (
            f"monolithic tables (~{_bitset_table_bytes(n, d) / 1e9:.1f}GB) exceed "
            f"the {forced_budget / 1e6:.0f}MB memory budget — out-of-core is the only route"
        )
    elif best["total"] < monolithic:
        action = "partition"
        reason = f"sharded bounds repay the exchange at n={n}, d={d}, k={k}"
    else:
        action = "monolithic"
        reason = (
            f"partition overhead exceeds the monolithic scan at n={n}, d={d}"
        )
    return PartitionPlan(
        action=action,
        partitions=best_p,
        workers=min(workers, best_p),
        estimated_seconds=best["total"],
        monolithic_seconds=monolithic,
        survival=best["survival"],
        reason=reason,
        spill=spill,
        table_bytes=int(table_bytes),
    )


#: A partitioned view whose max/mean shard-size ratio exceeds this is
#: worth rebalancing: skewed shards stretch phase-1 wall clock (the
#: largest shard gates every barrier) and loosen its summary bounds.
_REBALANCE_IMBALANCE = 1.5


@dataclass(frozen=True)
class RepartitionPlan:
    """Outcome of pricing a shard rebalance against observed imbalance."""

    #: ``"rebalance"`` (splice shards back to even sizes) or ``"keep"``.
    action: str
    #: Shard count the rebalance would produce.
    partitions: int
    #: Observed max/mean shard-size ratio.
    imbalance: float
    #: Trigger threshold the observation was compared against.
    threshold: float
    #: Modelled seconds of executing the rebalance splices.
    estimated_seconds: float
    #: One-line human-readable justification.
    reason: str = ""

    def summary(self) -> str:
        return (
            f"repartition plan: {self.action} (P={self.partitions}) — "
            f"imbalance {self.imbalance:.2f} vs threshold {self.threshold:.2f}, "
            f"est. {self.estimated_seconds * 1e3:.1f}ms ({self.reason})"
        )


def plan_repartition(
    sizes: Sequence[float],
    d: int,
    *,
    partitions: int | None = None,
    threshold: float = _REBALANCE_IMBALANCE,
) -> RepartitionPlan:
    """Decide whether a partitioned view's shards should be rebalanced.

    *sizes* are the live row counts per shard. The plan prices the
    moved-row volume (each row leaving its shard pays a delete splice
    there and an insert splice in its destination) and triggers when the
    observed ``max/mean`` ratio exceeds *threshold* — the signal
    ``QueryEngine.stats.partition_imbalance`` exposes. The rebalance
    itself is executed as delta splices by
    ``PartitionedDataset.rebalance`` and is bit-identical before/after.
    """
    sizes = [int(s) for s in sizes]
    if not sizes or min(sizes) < 0:
        raise InvalidParameterError(f"shard sizes must be non-negative, got {sizes}")
    cal = calibration()
    total = sum(sizes)
    count = len(sizes) if partitions is None else max(int(partitions), 1)
    mean = total / max(len(sizes), 1)
    imbalance = max(sizes) / mean if mean > 0 else 1.0
    target = total / max(count, 1)
    moved = sum(abs(s - target) for s in sizes) / 2.0
    # Each moved row pays two splices plus its share of the table work.
    estimated = cal.vec * moved * d * 40.0 + cal.step * 50.0 * count
    if len(sizes) < 2 or count < 2:
        action, reason = "keep", "a single shard cannot be rebalanced"
    elif imbalance <= threshold:
        action, reason = "keep", "shard sizes are within the skew threshold"
    else:
        action = "rebalance"
        reason = f"skew {imbalance:.2f} gates phase-1 on the largest shard"
    return RepartitionPlan(
        action=action,
        partitions=count,
        imbalance=float(imbalance),
        threshold=float(threshold),
        estimated_seconds=float(estimated),
        reason=reason,
    )


def explain_plan(
    dataset: "IncompleteDataset",
    k: int,
    *,
    prepared: Sequence[str] = (),
    repeats: int = 1,
) -> str:
    """One-line plan explanation (what ``repro query --explain`` prints)."""
    return plan_query(dataset, k, prepared=prepared, repeats=repeats).summary()


def merge_plan_options(plan: QueryPlan, overrides: Mapping) -> dict:
    """Plan options with caller overrides winning on conflicts."""
    merged = dict(plan.options)
    merged.update(overrides)
    return merged


def supported_options(algorithm_cls: type, options: Mapping) -> dict:
    """Drop options the chosen constructor cannot accept.

    ``algorithm="auto"`` callers may pass options meant for one algorithm
    family (``enable_h1=``, ``bins=``, …) while the planner picks another;
    forwarding those verbatim would crash data-dependently. Options the
    resolved class does not declare are discarded (the plan, not the
    option, decided the algorithm).
    """
    parameters = inspect.signature(algorithm_cls.__init__).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return dict(options)
    return {name: value for name, value in options.items() if name in parameters}


# One-shot import-time calibration: ~2 ms of microbenchmarks replace the
# hand-fitted constants with this machine's, before the first plan is made.
calibration()
