"""Cost-based query planning: ``algorithm="auto"`` (the engine's middle layer).

The paper's Figs. 12–17 show that no single algorithm wins everywhere:
BIG/IBIG dominate when their bounds bite (low missing rate, small ``k``),
UBB avoids their index build on one-shot queries, and the vectorised
Naive scan is unbeatable on small datasets or when heavy missingness
(MovieLens, σ ≈ 0.95) makes every bound loose. The seed API pushed that
choice onto the caller; :func:`plan_query` makes it from a cost model over
``(n, d, missing rate, k, index availability)`` instead.

The model prices two kinds of work, calibrated for the NumPy kernels in
:mod:`repro.engine.kernels`:

* vectorised element traffic (``_VEC`` seconds per boolean element), and
* per-object Python steps (``_STEP`` seconds each — queue pops, bitmap
  intersections, candidate-set updates).

Bound-based algorithms score only part of the MaxScore queue; the scanned
fraction is estimated from ``k/n`` and the missing rate (missing values
widen every ``T_i`` set, which is the paper's own explanation for the
MovieLens behaviour in Fig. 18a). Preparation cost is charged unless the
caller reports the structure as already prepared (the
:class:`~repro.engine.session.QueryEngine` does exactly that), spread
over ``repeats`` expected queries otherwise.

The chosen plan is *always exact* — every registered algorithm returns
the same score multiset for the same ``(S, k)``. As everywhere in the
library, tie-breaking at the k-th score boundary is arbitrary by design
(paper: "random selection"), so *which* of several boundary-tied objects
is returned may differ between planned algorithms; the score multiset is
the invariant.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.dataset import IncompleteDataset

__all__ = ["QueryPlan", "estimate_costs", "plan_query", "explain_plan", "merge_plan_options"]

#: Seconds per vectorised boolean element touched by a broadcast kernel.
_VEC = 2.0e-9
#: Seconds per per-object Python step (queue pop + bound check + offer).
_STEP = 4.0e-6
#: Extra per-object steps BIG pays for bitmap intersections and rim checks.
_BIG_STEP_FACTOR = 6.0

#: Algorithms the planner will choose between. Deliberately the paper's
#: core trio + Naive: the alternative-index algorithms (mosaic/brtree/
#: quantization) answer the same queries but are never the fastest route
#: in this implementation, and "ibig" only trades time for space.
_PLANNABLE = ("naive", "ubb", "big")


@dataclass(frozen=True)
class QueryPlan:
    """Outcome of cost-based planning for one ``(dataset, k)`` query."""

    #: Registry name of the chosen algorithm.
    algorithm: str
    #: Constructor options for :func:`repro.core.query.make_algorithm`.
    options: dict = field(default_factory=dict)
    #: One-line human-readable justification.
    reason: str = ""
    #: Modelled cost (seconds) of the chosen plan.
    estimated_seconds: float = 0.0
    #: Modelled cost of every candidate plan, for inspection/printing.
    candidate_seconds: dict = field(default_factory=dict)

    def summary(self) -> str:
        """Render the plan the way ``repro query --explain`` prints it."""
        ranking = ", ".join(
            f"{name}={seconds * 1e3:.2f}ms"
            for name, seconds in sorted(self.candidate_seconds.items(), key=lambda kv: kv[1])
        )
        return f"plan: {self.algorithm} ({self.reason}) | modelled: {ranking}"


def _scanned_fraction(n: int, k: int, missing_rate: float) -> float:
    """Expected fraction of the MaxScore queue a bound-based scan visits.

    Grows with ``k/n`` (deeper answers need more exact scores) and with
    the missing rate (every missing cell inflates ``|T_i|``, flattening
    the queue). The constants are fitted loosely to this implementation's
    behaviour on the Table 2 grid; the planner only needs ordering, not
    absolute accuracy.
    """
    base = min(1.0, 4.0 * max(k, 1) / max(n, 1))
    slack = missing_rate * 2.0
    return float(min(1.0, base + 0.02 + slack * slack))


def estimate_costs(
    n: int,
    d: int,
    missing_rate: float,
    k: int,
    *,
    prepared: Sequence[str] = (),
    repeats: int = 1,
) -> dict:
    """Modelled query cost (seconds) of each plannable algorithm."""
    if n <= 0 or d <= 0:
        raise InvalidParameterError(f"need n >= 1 and d >= 1, got n={n} d={d}")
    if not 0.0 <= missing_rate <= 1.0:
        raise InvalidParameterError(f"missing_rate must lie in [0, 1], got {missing_rate}")
    repeats = max(int(repeats), 1)
    prepared = frozenset(prepared)

    pair_elems = float(n) * n * d
    frac = _scanned_fraction(n, k, missing_rate)
    scanned = frac * n

    # Naive: one blocked kernel sweep over all n objects, no preparation.
    costs = {"naive": _VEC * pair_elems + _STEP * math.ceil(n / 256)}

    # UBB: MaxScore queue build (unless prepared), then per-object exact
    # scores down the queue until Heuristic 1 fires.
    ubb_prep = 0.0 if "ubb" in prepared else (_VEC * n * d * max(math.log2(n), 1.0)) / repeats
    costs["ubb"] = ubb_prep + scanned * (_STEP + _VEC * n * d)

    # BIG: bitmap index build is ~one pass per distinct value per dimension
    # (bounded by n but typically the Table 2 cardinality ~100); queries
    # replace the O(n·d) exact score with a handful of packed bitmap ops.
    effective_cardinality = min(n, 160)
    big_prep = (
        0.0
        if "big" in prepared
        else (_VEC * n * d * effective_cardinality * 0.5) / repeats
    )
    costs["big"] = big_prep + scanned * _STEP * _BIG_STEP_FACTOR + scanned * _VEC * n * 0.1

    return costs


def plan_query(
    dataset: "IncompleteDataset",
    k: int,
    *,
    prepared: Sequence[str] = (),
    repeats: int = 1,
) -> QueryPlan:
    """Choose the cheapest exact algorithm for one TKD query.

    Parameters
    ----------
    dataset: the query's dataset (only shape statistics are read).
    k: the answer size.
    prepared: algorithm names whose auxiliary structures already exist
        (their preparation cost is not charged) — the
        :class:`~repro.engine.session.QueryEngine` passes its cache state.
    repeats: expected number of queries that will reuse the preparation;
        amortises index builds for parametrised sweeps.
    """
    n, d = dataset.n, dataset.d
    missing_rate = dataset.missing_rate
    costs = estimate_costs(n, d, missing_rate, k, prepared=prepared, repeats=repeats)

    algorithm = min(costs, key=costs.get)
    options: dict = {}
    if algorithm == "ubb":
        # Blocked exact scoring amortises the per-object kernel dispatch.
        # A constant block keeps the options — and therefore a session's
        # prepared-structure cache key — identical across a k-ladder.
        options["block"] = 64

    if algorithm == "naive":
        reason = (
            f"vectorised scan wins at n={n}, d={d}, σ={missing_rate:.2f} "
            "(bounds too loose or dataset too small to repay preparation)"
        )
    elif algorithm == "ubb":
        reason = (
            f"MaxScore pruning with blocked scoring at k={k}, σ={missing_rate:.2f} "
            "without paying an index build"
        )
    else:
        reason = (
            f"bitmap pruning repays its index at n={n}, k={k}, σ={missing_rate:.2f}"
            + (" (index already prepared)" if "big" in frozenset(prepared) else "")
        )
    return QueryPlan(
        algorithm=algorithm,
        options=options,
        reason=reason,
        estimated_seconds=costs[algorithm],
        candidate_seconds=dict(costs),
    )


def explain_plan(
    dataset: "IncompleteDataset",
    k: int,
    *,
    prepared: Sequence[str] = (),
    repeats: int = 1,
) -> str:
    """One-line plan explanation (what ``repro query --explain`` prints)."""
    return plan_query(dataset, k, prepared=prepared, repeats=repeats).summary()


def merge_plan_options(plan: QueryPlan, overrides: Mapping) -> dict:
    """Plan options with caller overrides winning on conflicts."""
    merged = dict(plan.options)
    merged.update(overrides)
    return merged


def supported_options(algorithm_cls: type, options: Mapping) -> dict:
    """Drop options the chosen constructor cannot accept.

    ``algorithm="auto"`` callers may pass options meant for one algorithm
    family (``enable_h1=``, ``bins=``, …) while the planner picks another;
    forwarding those verbatim would crash data-dependently. Options the
    resolved class does not declare are discarded (the plan, not the
    option, decided the algorithm).
    """
    parameters = inspect.signature(algorithm_cls.__init__).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return dict(options)
    return {name: value for name, value in options.items() if name in parameters}
