"""Partitioned execution: one query's data sharded across workers.

Every algorithm in the reproduction — the paper's UBB/BIG/IBIG family
included — evaluates one monolithic dataset in one process, so single-query
latency and the maximum workable ``n`` are capped by one core's bitset
build. This module removes that cap by exploiting a decomposition the
paper's own upper-bound machinery (Lemma 2) composes with naturally:

    ``score(o) = Σ_i |{p ∈ partition_i : o ≻ p}|``

— a tuple's global dominance score is the **sum of its per-partition
scores**, so per-partition upper bounds let shards discard most objects
before any cross-partition exchange (the same structure emphasised for
dynamic TKD by Kosmatopoulos & Tsichlas).

:class:`PartitionedDataset` splits an
:class:`~repro.core.dataset.IncompleteDataset` into ``P`` contiguous
row shards, each a first-class dataset with its own fingerprint — and
therefore its own :class:`~repro.engine.kernels.PreparedDataset` cache
entry, persistent-store warm start, and delta patching. Deltas against
the full dataset route to the owning shard (:meth:`PartitionedDataset.apply_delta`),
so incremental maintenance stays ``O(|delta|)`` per *affected* partition.

:func:`execute_partitioned` runs the two-phase distributed top-k protocol:

**Phase 1 (local).** Each shard computes exact *local* scores for its own
members and publishes a :class:`ShardSummary` — per-dimension bucketed
rank samples of its ``hi`` sentinel column (``O(d·B)`` floats, exchanged
*instead of raw rows*). For any foreign object ``o`` the summary yields a
sound Lemma-2-style bound on the shard's contribution:

    ``UB_i(o) = min_t |{p ∈ shard_i : hi_p[t] ≥ lo_o[t]}|``

(each count upper-bounded from the bucket boundaries; dimensions ``o``
misses contribute the full shard size and drop out of the ``min``).

**Merge.** Every object's global *lower* bound is its own-shard exact
score; its *upper* bound adds the foreign summaries. With ``τ`` = the
k-th largest lower bound, any object whose upper bound falls below ``τ``
is provably outside the answer.

**τ refinement.** Summary bounds are loose when missingness is high, so
before the full exchange a small head of the survivors — the highest
upper bounds — is scored *exactly* first; the k-th largest of those
exact scores is a true lower bound on the global k-th best and replaces
``τ`` (the TPUT move, transplanted to dominance scores). This typically
collapses the candidate set by an order of magnitude.

**Phase 2 (exchange).** Only the surviving candidate set's sentinel rows
are shipped; each shard answers exact foreign counts for them
(:meth:`~repro.engine.kernels.PreparedDataset.foreign_dominated_counts`,
riding the packed tables), and the per-shard sums are the exact global
scores. Selection over the candidates is **bit-identical** to the
monolithic engine under deterministic tie-breaking: every true top-k
object has ``score ≥ τ`` (both τ's are sound lower bounds on the k-th
best score, so it survived), and every pruned object has
``score ≤ UB < τ`` strictly (so it can neither enter nor tie into the
answer).

With ``workers=N`` both phases fan out over one process pool; workers
keep their shard's prepared structures in a process-global cache between
phases and warm-start them from the persistent store under the shard's
own fingerprint key.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import InvalidParameterError
from .backend import SharedTables, unlink_shared
from .kernels import PreparedDataset, SentinelDelta, _bounds, dominated_counts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.dataset import IncompleteDataset
    from ..core.delta import DatasetDelta

__all__ = [
    "PartitionShard",
    "PartitionedDataset",
    "ShardSummary",
    "execute_partitioned",
]

#: Bucket-boundary count of one shard summary dimension. 128 samples keep
#: the per-shard exchange at O(d·128) floats while bounding the count
#: slack at shard_size/128 per dimension.
_SUMMARY_BINS = 128

#: Candidate batches shipped to the pool are chunked so one phase-2
#: payload never exceeds a few MB of sentinel rows.
_PROBE_CHUNK = 65536

#: Smallest τ-refinement head worth an extra exchange round: the head is
#: ``max(4k, this)`` of the highest upper bounds, scored exactly to pull
#: τ up to a true global bound before the main exchange.
_MIN_REFINE_HEAD = 64


class ShardSummary:
    """Per-dimension bucketed rank samples of one shard's sentinel columns.

    For each dimension the shard's ``hi`` column (value, or ``+inf`` for
    missing) *and* ``lo`` column (value, or ``-inf``) are sorted
    ascending and sampled at ``B`` positions; the retained
    ``(value, rank)`` pairs bound, for any probe value ``v``, the counts
    ``|{p : hi_p ≥ v}|`` and ``|{p : lo_p > v}|`` from above: the last
    sampled value on the safe side of ``v`` pins a bound on ``v``'s
    insertion rank. With every position sampled (``m ≤ B``) the bounds
    are exact.

    Two complementary bounds come out of one summary (see
    :meth:`upper_bound_counts`): the Lemma-2-style *necessity* bound
    ``min_t |{hi_p ≥ lo_o}|`` (tight at low missingness) and the
    *strict-witness union* bound ``Σ_t |{lo_p > hi_o}|`` (a dominated
    member must be strictly worse somewhere — tight at high missingness,
    where almost every per-dimension necessity count degenerates to the
    shard size).
    """

    __slots__ = ("count", "values", "lo_values", "ranks")

    def __init__(
        self,
        count: int,
        values: list[np.ndarray],
        lo_values: list[np.ndarray],
        ranks: np.ndarray,
    ) -> None:
        self.count = int(count)
        self.values = values
        self.lo_values = lo_values
        #: One sampled-position array shared by every dimension and both
        #: sentinel sides (all columns are sampled at the same ranks).
        self.ranks = ranks

    @classmethod
    def build(cls, dataset: "IncompleteDataset", *, bins: int = _SUMMARY_BINS) -> "ShardSummary":
        lo, hi = _bounds(dataset)
        m, d = hi.shape
        if m <= bins:
            idx = np.arange(m, dtype=np.intp)
        else:
            idx = np.unique(np.round(np.linspace(0, m - 1, bins)).astype(np.intp))
        values = [np.sort(hi[:, dim])[idx] for dim in range(d)]
        lo_values = [np.sort(lo[:, dim])[idx] for dim in range(d)]
        return cls(m, values, lo_values, idx)

    @property
    def nbytes(self) -> int:
        return self.ranks.nbytes + sum(
            v.nbytes + lv.nbytes for v, lv in zip(self.values, self.lo_values)
        )

    def upper_bound_counts(
        self, probe_lo: np.ndarray, probe_hi: np.ndarray | None = None
    ) -> np.ndarray:
        """Sound upper bounds on this shard's score contribution per probe.

        *probe_lo*/*probe_hi* are ``(b, d)`` sentinel matrices (missing →
        ``∓inf``). Returns ``(b,)`` int64 bounds — the minimum of the
        necessity bound ``min_t |{p : hi_p[t] ≥ lo_o[t]}|`` (every
        dominated member must pass the ≤ test on *all* dimensions) and,
        when *probe_hi* is given, the strict-witness union bound
        ``Σ_t |{p : lo_p[t] > hi_o[t]}|`` (every dominated member must be
        strictly worse on *some* dimension). Both are upper-bounded from
        the bucket samples, so the combined bound stays sound at any bin
        resolution.
        """
        b = probe_lo.shape[0]
        ranks = self.ranks
        out = np.full(b, self.count, dtype=np.int64)
        for dim, values in enumerate(self.values):
            j = np.searchsorted(values, probe_lo[:, dim], side="left")
            # Samples before j are < v, so rank_left(v) ≥ ranks[j-1] + 1
            # and |{hi ≥ v}| ≤ m − ranks[j-1] − 1; j == 0 bounds nothing.
            clamped = np.maximum(j - 1, 0)
            bound = np.where(j > 0, self.count - ranks[clamped] - 1, self.count)
            np.minimum(out, bound, out=out)
        if probe_hi is None:
            return out
        union = np.zeros(b, dtype=np.int64)
        for dim, values in enumerate(self.lo_values):
            j = np.searchsorted(values, probe_hi[:, dim], side="right")
            # Samples before j are ≤ v, so rank_right(v) ≥ ranks[j-1] + 1
            # and |{lo > v}| ≤ m − ranks[j-1] − 1; j == 0 bounds nothing.
            clamped = np.maximum(j - 1, 0)
            union += np.where(j > 0, self.count - ranks[clamped] - 1, self.count)
        return np.minimum(out, union)


class PartitionShard:
    """One shard: a contiguous row range materialised as its own dataset."""

    __slots__ = ("dataset", "start")

    def __init__(self, dataset: "IncompleteDataset", start: int) -> None:
        self.dataset = dataset
        #: Global row index of this shard's first row (concatenation offset).
        self.start = int(start)

    @property
    def n(self) -> int:
        return self.dataset.n

    @property
    def stop(self) -> int:
        return self.start + self.dataset.n

    def fingerprint(self) -> str:
        """The shard dataset's own identity — its cache and store key."""
        return self.dataset.fingerprint()


class PartitionedDataset:
    """A dataset split into ``P`` row shards, each independently prepared.

    The shards partition the row axis contiguously and in order, so the
    concatenation of the shard datasets *is* the full dataset — the
    invariant that makes per-partition score sums exact and lets deltas
    route to their owning shard. Inserts append at the global end
    (:func:`repro.core.delta.apply_delta`'s ordering contract), so they
    route to the last shard; a shard emptied by deletions is dropped.
    """

    def __init__(
        self,
        dataset: "IncompleteDataset",
        partitions: int,
        *,
        _shards: "list[PartitionShard] | None" = None,
    ) -> None:
        if not isinstance(partitions, (int, np.integer)) or isinstance(partitions, bool):
            raise InvalidParameterError(f"partitions must be a positive integer, got {partitions!r}")
        if partitions < 1:
            raise InvalidParameterError(f"partitions must be >= 1, got {partitions}")
        self.dataset = dataset
        if _shards is not None:
            self.shards = _shards
            return
        count = int(min(partitions, dataset.n))
        base, extra = divmod(dataset.n, count)
        self.shards: list[PartitionShard] = []
        start = 0
        for j in range(count):
            size = base + (1 if j < extra else 0)
            self.shards.append(
                PartitionShard(dataset.subset(range(start, start + size)), start)
            )
            start += size

    @property
    def partitions(self) -> int:
        """Current shard count (may differ from the requested ``P`` after deltas)."""
        return len(self.shards)

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(shard.n for shard in self.shards)

    @property
    def imbalance(self) -> float:
        """Largest-to-mean shard size ratio — the repartition signal."""
        sizes = self.sizes
        return max(sizes) / (sum(sizes) / len(sizes))

    def shard_of_row(self, row: int) -> int:
        """Index of the shard owning global dataset *row*."""
        for j, shard in enumerate(self.shards):
            if shard.start <= row < shard.stop:
                return j
        raise InvalidParameterError(f"row {row} outside [0, {self.dataset.n})")

    def apply_delta(self, delta: "DatasetDelta", *, child: "IncompleteDataset | None" = None):
        """Route one global delta to its owning shards.

        Returns ``(child_view, advanced)`` where *child_view* is the
        partitioned view of the child version and *advanced* lists one
        ``(parent_shard_dataset, sub_delta, child_shard_dataset)`` triple
        per shard the delta touched (*child* is ``None`` when the shard
        was emptied and dropped). Untouched shards keep their dataset
        object — and therefore their fingerprint and every cache entry
        keyed on it. Pass *child* when the caller already materialised
        ``dataset.apply_delta(delta)`` (the engine always has) so the
        full-dataset clone is not paid twice.
        """
        from ..core.delta import DatasetDelta  # deferred: core imports the engine

        if child is None:
            child = self.dataset.apply_delta(delta)
        if delta.is_empty:
            return self, []
        inserts = int(delta.inserted_values.shape[0])
        insert_ids = tuple(child.ids[child.n - inserts :]) if inserts else ()

        new_shards: list[PartitionShard] = []
        advanced = []
        start = 0
        last = len(self.shards) - 1
        for j, shard in enumerate(self.shards):
            local_del = [r - shard.start for r in delta.deleted_rows if shard.start <= r < shard.stop]
            upd_pos = [
                (i, r - shard.start)
                for i, r in enumerate(delta.updated_rows)
                if shard.start <= r < shard.stop
            ]
            shard_inserts = inserts if j == last else 0
            if not local_del and not upd_pos and not shard_inserts:
                new_shards.append(PartitionShard(shard.dataset, start))
                start += shard.n
                continue
            ids = shard.dataset.ids
            sub = DatasetDelta(
                delta.d,
                inserted_values=delta.inserted_values if shard_inserts else None,
                inserted_ids=insert_ids if shard_inserts else None,
                deleted_rows=local_del,
                deleted_ids=[ids[r] for r in local_del],
                updated_rows=[r for _, r in upd_pos],
                updated_ids=[ids[r] for _, r in upd_pos],
                updated_values=delta.updated_values[[i for i, _ in upd_pos]]
                if upd_pos
                else None,
            )
            if len(local_del) == shard.n and not shard_inserts:
                advanced.append((shard.dataset, sub, None))
                continue  # shard emptied: drop it
            shard_child = shard.dataset.apply_delta(sub)
            advanced.append((shard.dataset, sub, shard_child))
            new_shards.append(PartitionShard(shard_child, start))
            start += shard_child.n
        view = PartitionedDataset(child, max(len(new_shards), 1), _shards=new_shards)
        return view, advanced

    def validate(self) -> None:
        """Assert the concatenation invariant (tests and debugging)."""
        values = np.concatenate([shard.dataset.values for shard in self.shards], axis=0)
        same = (values == self.dataset.values) | (
            np.isnan(values) & np.isnan(self.dataset.values)
        )
        if values.shape != self.dataset.values.shape or not same.all():
            raise InvalidParameterError("shard concatenation no longer matches the dataset")
        ids = [i for shard in self.shards for i in shard.dataset.ids]
        if ids != self.dataset.ids:
            raise InvalidParameterError("shard id order no longer matches the dataset")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PartitionedDataset n={self.dataset.n} shards={self.sizes}>"


# ---------------------------------------------------------------------------
# Two-phase distributed protocol
# ---------------------------------------------------------------------------


def execute_partitioned(
    view: PartitionedDataset,
    k: int,
    *,
    engine=None,
    workers: int | None = None,
    tie_break: str = "index",
    rng=None,
    summary_bins: int = _SUMMARY_BINS,
):
    """Answer one TKD query through the two-phase partition protocol.

    Bit-identical to the monolithic engine under ``tie_break="index"``
    (see the module docstring for the exactness argument); under
    ``tie_break="random"`` the boundary tie is drawn among the surviving
    candidates — a different (equally arbitrary, paper-sanctioned) draw
    than the monolithic permutation.

    ``workers=N`` (N ≥ 2) fans both phases out over a process pool; the
    sequential path reuses *engine*'s shared prepared-dataset cache and
    store warm-start per shard.
    """
    from ..core.result import TKDResult, select_top_k, validate_k
    from ..core.stats import QueryStats

    dataset = view.dataset
    n = dataset.n
    kk = validate_k(k, n)
    shards = view.shards
    pool_workers = 0 if workers is None else int(workers)
    if pool_workers < 0:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")

    # -- phase 1: local scores + summaries ---------------------------------
    start_p1 = time.perf_counter()
    shm_metas: dict[str, dict] = {}
    if pool_workers > 1 and len(shards) > 1:
        locals_, summaries, pool, shm_metas = _phase1_parallel(
            view, engine, min(pool_workers, len(shards)), summary_bins
        )
    else:
        pool = None
        locals_, summaries, prepared_shards = [], [], []
        for shard in shards:
            prepared = _shard_prepared(engine, shard)
            prepared.warm()
            prepared_shards.append(prepared)
            locals_.append(
                dominated_counts(shard.dataset, prepared=prepared).astype(np.int64, copy=False)
            )
            summaries.append(ShardSummary.build(shard.dataset, bins=summary_bins))
    phase1_seconds = time.perf_counter() - start_p1

    try:
        # -- merge: bounds, tau, surviving candidates ----------------------
        lo, hi = _bounds(dataset)
        lower = np.concatenate(locals_)  # own-shard exact score == global lower bound
        upper = lower.copy()
        for shard, summary in zip(shards, summaries):
            ub = summary.upper_bound_counts(lo, hi)
            upper += ub
            upper[shard.start : shard.stop] -= ub[shard.start : shard.stop]
        tau = int(np.partition(lower, n - kk)[n - kk])
        candidates = np.flatnonzero(upper >= tau).astype(np.intp)

        # -- phase 2: exact cross-partition scores for the survivors -------
        start_p2 = time.perf_counter()
        total = lower.copy()
        refined = np.zeros(0, dtype=np.intp)
        if len(shards) > 1:
            exchange = _Exchanger(
                view,
                pool,
                None if pool is not None else prepared_shards,
                lo,
                hi,
                shm_metas,
            )
            # τ refinement: exactly score the highest-upper-bound head
            # first; the k-th best of those *actual* scores is a sound —
            # and usually far tighter — lower bound on the global k-th.
            # The head is small (O(k)), so it runs in-parent with one
            # broadcast per shard instead of burning a pool round.
            head = min(candidates.size, max(4 * kk, _MIN_REFINE_HEAD))
            if head >= kk and head < candidates.size:
                order = np.argsort(-upper[candidates], kind="stable")
                refined = candidates[order[:head]]
                _refine_in_parent(view, refined, lo, hi, total)
                refined_tau = int(np.partition(total[refined], head - kk)[head - kk])
                if refined_tau > tau:
                    tau = refined_tau
                    candidates = candidates[upper[candidates] >= tau]
            mask = np.ones(candidates.size, dtype=bool)
            mask[np.isin(candidates, refined)] = False
            exchange.add_exact(candidates[mask], total)
        phase2_seconds = time.perf_counter() - start_p2
    finally:
        # Segments the phase-1 workers exported on our behalf: the pool
        # outlives this query (it is the shared session pool), so the
        # names must go now, success or not.
        for meta in shm_metas.values():
            unlink_shared(meta["name"])

    eligible = np.zeros(n, dtype=bool)
    eligible[candidates] = True
    eligible[refined] = True  # exactly scored either way; keeps ties honest
    selection = select_top_k(total, kk, tie_break=tie_break, rng=rng, eligible=eligible)
    survivors = int(eligible.sum())

    stats = QueryStats(
        algorithm="partitioned", n=n, d=dataset.d, k=kk, scores_computed=n
    )
    stats.candidates = survivors
    stats.index_bytes = sum(summary.nbytes for summary in summaries)
    stats.query_seconds = phase1_seconds + phase2_seconds
    stats.extra.update(
        partitions=len(shards),
        shard_sizes=list(view.sizes),
        workers=pool_workers,
        tau=tau,
        refined=int(refined.size),
        survival=float(survivors) / max(n, 1),
        phase1_seconds=phase1_seconds,
        phase2_seconds=phase2_seconds,
    )
    return TKDResult.from_selection(
        dataset,
        selection,
        total[selection],
        k=kk,
        algorithm="partitioned",
        stats=stats,
    )


def _refine_in_parent(
    view: PartitionedDataset,
    rows: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    total: np.ndarray,
) -> None:
    """Exactly score the small refinement head against every shard.

    One ``(head, m, d)`` broadcast per shard — no tables, no pool round;
    the head is ``O(k)`` so this is cheaper than shipping it anywhere.
    """
    for shard in view.shards:
        foreign = rows[(rows < shard.start) | (rows >= shard.stop)]
        if not foreign.size:
            continue
        member_lo = lo[shard.start : shard.stop]
        member_hi = hi[shard.start : shard.stop]
        le_all = np.all(lo[foreign][:, None, :] <= member_hi[None, :, :], axis=2)
        lt_any = np.any(hi[foreign][:, None, :] < member_lo[None, :, :], axis=2)
        total[foreign] += (le_all & lt_any).sum(axis=1)


def _shard_prepared(engine, shard: PartitionShard) -> PreparedDataset:
    """The shard's PreparedDataset — through the engine's caches when given."""
    if engine is not None:
        return engine.prepare_dataset(shard.dataset)
    return PreparedDataset(shard.dataset)


# ---------------------------------------------------------------------------
# Process-pool workers
# ---------------------------------------------------------------------------

#: Per-worker-process cache: shard fingerprint → PreparedDataset, so the
#: phase-2 task for a shard reuses the structures phase 1 built whenever
#: the pool schedules it onto the same process (payloads carry a
#: shared-memory meta — and a sentinel-only rebuild fallback — for when
#: it does not). Size-capped because the pool is shared across queries.
_WORKER_SHARDS: dict[str, PreparedDataset] = {}
_WORKER_HANDLES: dict[str, SharedTables] = {}
_WORKER_SHARDS_CAP = 8

#: Names of transfer segments this worker exported for its parent. The
#: parent adopts cleanup by name; this atexit net only matters when the
#: parent dies before adopting (unlink_shared is double-unlink safe).
_EXPORTED_NAMES: list[str] = []


def _cache_worker_shard(
    fingerprint: str, prepared: PreparedDataset, handle: SharedTables | None = None
) -> None:
    while len(_WORKER_SHARDS) >= _WORKER_SHARDS_CAP:
        evicted = next(iter(_WORKER_SHARDS))
        _WORKER_SHARDS.pop(evicted, None)
        stale = _WORKER_HANDLES.pop(evicted, None)
        if stale is not None:
            stale.close()
    _WORKER_SHARDS[fingerprint] = prepared
    if handle is not None:
        _WORKER_HANDLES[fingerprint] = handle


def _cleanup_exported() -> None:  # pragma: no cover - crash net
    for name in _EXPORTED_NAMES:
        unlink_shared(name)
    _EXPORTED_NAMES.clear()


def _shard_payload(shard: PartitionShard, store_dir: str | None, bins: int) -> tuple:
    dataset = shard.dataset
    return (
        shard.fingerprint(),
        dataset.values,
        dataset.directions,
        store_dir,
        bins,
    )


def _phase1_worker(payload: tuple):
    """Pool worker: one shard's local scores, summary and shared tables.

    Besides the phase-1 answer, the worker exports its freshly prepared
    structures into a shared-memory segment (``owner=False``: the parent
    adopts cleanup by name) so phase-2 tasks landing on *other* workers
    attach zero-copy instead of re-preparing the shard.
    """
    import atexit

    from ..core.dataset import IncompleteDataset

    fingerprint, values, directions, store_dir, bins = payload
    dataset = IncompleteDataset(values, directions=directions)
    prepared = None
    if store_dir:
        from .store import PersistentStore

        prepared = PersistentStore(store_dir).get_prepared(fingerprint)
        if prepared is not None and prepared.n != dataset.n:
            prepared = None
    if prepared is None:
        prepared = PreparedDataset(dataset)
    prepared.warm()
    local = dominated_counts(dataset, prepared=prepared).astype(np.int64, copy=False)
    summary = ShardSummary.build(dataset, bins=bins)
    _cache_worker_shard(fingerprint, prepared)
    meta = None
    try:
        handle = SharedTables.create(prepared, owner=False)
    except (OSError, ValueError):
        handle = None  # /dev/shm full: phase 2 rebuilds from the pickle
    if handle is not None:
        if not _EXPORTED_NAMES:
            atexit.register(_cleanup_exported)
        _EXPORTED_NAMES.append(handle.meta["name"])
        meta = handle.meta
        handle.close()
    return local, summary, meta


def _phase2_worker(payload: tuple) -> np.ndarray:
    """Pool worker: exact foreign counts for one shard × candidate chunk."""
    from ..core.dataset import IncompleteDataset

    fingerprint, values, directions, probe_lo, probe_hi, shm_meta = payload
    prepared = _WORKER_SHARDS.get(fingerprint)
    if prepared is None and shm_meta is not None:
        try:
            handle = SharedTables.attach(shm_meta)
        except (OSError, ValueError):
            handle = None  # segment gone; rebuild locally below
        if handle is not None:
            prepared = handle.prepared()
            _cache_worker_shard(fingerprint, prepared, handle)
    if prepared is None:
        prepared = PreparedDataset(IncompleteDataset(values, directions=directions))
        _cache_worker_shard(fingerprint, prepared)
    return prepared.foreign_dominated_counts(probe_lo, probe_hi)


def _phase1_parallel(view: PartitionedDataset, engine, pool_size: int, bins: int):
    """Fan phase 1 out over the shared session pool.

    Returns ``(locals, summaries, pool, shm_metas)`` — the pool stays
    open for phase 2 (and for the next query: it is the process-global
    :func:`repro.engine.session._process_pool`), and ``shm_metas`` maps
    shard fingerprints to the shared-memory segments the workers
    exported, whose cleanup the caller now owns.
    """
    from .session import _process_pool

    store = getattr(engine, "store", None)
    store_dir = str(store.directory) if store is not None else None
    pool = _process_pool(pool_size)
    payloads = [_shard_payload(shard, store_dir, bins) for shard in view.shards]
    results = list(pool.map(_phase1_worker, payloads))
    shm_metas = {
        shard.fingerprint(): r[2]
        for shard, r in zip(view.shards, results)
        if r[2] is not None
    }
    return [r[0] for r in results], [r[1] for r in results], pool, shm_metas


class _Exchanger:
    """One phase-2 exchange surface serving both τ refinement and the
    final candidate exchange (in-process or over the phase-1 pool)."""

    def __init__(self, view, pool, prepared_shards, lo, hi, shm_metas=None) -> None:
        self._view = view
        self._pool = pool
        self._prepared = prepared_shards
        self._lo = lo
        self._hi = hi
        self._shm_metas = shm_metas or {}

    def add_exact(self, rows: np.ndarray, total: np.ndarray) -> None:
        """Fold every shard's exact foreign contribution into ``total[rows]``."""
        if rows.size == 0:
            return
        lo, hi = self._lo, self._hi
        if self._pool is None:
            for shard, prepared in zip(self._view.shards, self._prepared):
                foreign = rows[(rows < shard.start) | (rows >= shard.stop)]
                if foreign.size:
                    total[foreign] += prepared.foreign_dominated_counts(
                        lo[foreign], hi[foreign]
                    )
            return
        futures = []
        for shard in self._view.shards:
            foreign = rows[(rows < shard.start) | (rows >= shard.stop)]
            fingerprint = shard.fingerprint()
            for chunk_start in range(0, foreign.size, _PROBE_CHUNK):
                chunk = foreign[chunk_start : chunk_start + _PROBE_CHUNK]
                payload = (
                    fingerprint,
                    shard.dataset.values,
                    shard.dataset.directions,
                    lo[chunk],
                    hi[chunk],
                    self._shm_metas.get(fingerprint),
                )
                futures.append((chunk, self._pool.submit(_phase2_worker, payload)))
        for chunk, future in futures:
            total[chunk] += future.result()
