"""Partitioned execution: one query's data sharded across workers.

Every algorithm in the reproduction — the paper's UBB/BIG/IBIG family
included — evaluates one monolithic dataset in one process, so single-query
latency and the maximum workable ``n`` are capped by one core's bitset
build. This module removes that cap by exploiting a decomposition the
paper's own upper-bound machinery (Lemma 2) composes with naturally:

    ``score(o) = Σ_i |{p ∈ partition_i : o ≻ p}|``

— a tuple's global dominance score is the **sum of its per-partition
scores**, so per-partition upper bounds let shards discard most objects
before any cross-partition exchange (the same structure emphasised for
dynamic TKD by Kosmatopoulos & Tsichlas).

:class:`PartitionedDataset` splits an
:class:`~repro.core.dataset.IncompleteDataset` into ``P`` contiguous
row shards, each a first-class dataset with its own fingerprint — and
therefore its own :class:`~repro.engine.kernels.PreparedDataset` cache
entry, persistent-store warm start, and delta patching. Deltas against
the full dataset route to the owning shard (:meth:`PartitionedDataset.apply_delta`),
so incremental maintenance stays ``O(|delta|)`` per *affected* partition.

:func:`execute_partitioned` runs the two-phase distributed top-k protocol:

**Phase 1 (local).** Each shard computes exact *local* scores for its own
members and publishes a :class:`ShardSummary` — per-dimension bucketed
rank samples of its ``hi`` sentinel column (``O(d·B)`` floats, exchanged
*instead of raw rows*). For any foreign object ``o`` the summary yields a
sound Lemma-2-style bound on the shard's contribution:

    ``UB_i(o) = min_t |{p ∈ shard_i : hi_p[t] ≥ lo_o[t]}|``

(each count upper-bounded from the bucket boundaries; dimensions ``o``
misses contribute the full shard size and drop out of the ``min``).

**Merge.** Every object's global *lower* bound is its own-shard exact
score; its *upper* bound adds the foreign summaries. With ``τ`` = the
k-th largest lower bound, any object whose upper bound falls below ``τ``
is provably outside the answer.

**τ refinement.** Summary bounds are loose when missingness is high, so
before the full exchange a small head of the survivors — the highest
upper bounds — is scored *exactly* first; the k-th largest of those
exact scores is a true lower bound on the global k-th best and replaces
``τ`` (the TPUT move, transplanted to dominance scores). This typically
collapses the candidate set by an order of magnitude.

**Phase 2 (exchange).** Only the surviving candidate set's sentinel rows
are shipped; each shard answers exact foreign counts for them
(:meth:`~repro.engine.kernels.PreparedDataset.foreign_dominated_counts`,
riding the packed tables), and the per-shard sums are the exact global
scores. Selection over the candidates is **bit-identical** to the
monolithic engine under deterministic tie-breaking: every true top-k
object has ``score ≥ τ`` (both τ's are sound lower bounds on the k-th
best score, so it survived), and every pruned object has
``score ≤ UB < τ`` strictly (so it can neither enter nor tie into the
answer).

With ``workers=N`` both phases fan out over one process pool; workers
keep their shard's prepared structures in a process-global cache between
phases and warm-start them from the persistent store under the shard's
own fingerprint key.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import InvalidParameterError
from . import telemetry
from .backend import SharedTables, unlink_shared
from .kernels import PreparedDataset, _bounds, dominated_counts
from .telemetry import clock as _clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.dataset import IncompleteDataset
    from ..core.delta import DatasetDelta

__all__ = [
    "PartitionShard",
    "PartitionedDataset",
    "ShardSummary",
    "execute_partitioned",
]

#: Bucket-boundary count of one shard summary dimension. 128 samples keep
#: the per-shard exchange at O(d·128) floats while bounding the count
#: slack at shard_size/128 per dimension.
_SUMMARY_BINS = 128

#: Candidate batches shipped to the pool are chunked so one phase-2
#: payload never exceeds a few MB of sentinel rows.
_PROBE_CHUNK = 65536

#: Byte cap on one phase-2 exchange window's sentinel payload (lo + hi
#: rows of the survivors in flight at once). Survivor sets are streamed
#: window by window instead of broadcast whole — bit-identical, but the
#: exchange footprint stops scaling with the survivor count.
_EXCHANGE_WINDOW_BYTES = 8 << 20

#: Smallest τ-refinement head worth an extra exchange round: the head is
#: ``max(4k, this)`` of the highest upper bounds, scored exactly to pull
#: τ up to a true global bound before the main exchange.
_MIN_REFINE_HEAD = 64

#: Bucket edges per axis of a summary's 2-D grid sketches. 32 edges give
#: a (33×33) suffix-count grid per dimension pair — ~8KB — that prunes
#: the correlated-dimension slack the per-dimension ``min`` cannot see.
_GRID_BINS = 32

#: Above this shard count the flat P-way summary merge (``O(P·n)``
#: probes) gives way to the two-level tree merge: ~√P group envelopes
#: over everyone, per-shard descent only for pass-1 survivors.
_TREE_MERGE_MIN_SHARDS = 16


def _grid_edges(column: np.ndarray, bins: int = _GRID_BINS) -> np.ndarray:
    """Sorted finite bucket edges covering one sentinel column."""
    finite = np.unique(column[np.isfinite(column)])
    if finite.size > bins:
        sel = np.unique(np.round(np.linspace(0, finite.size - 1, bins)).astype(np.intp))
        finite = finite[sel]
    return finite


class ShardSummary:
    """Per-dimension bucketed rank samples of one shard's sentinel columns.

    For each dimension the shard's ``hi`` column (value, or ``+inf`` for
    missing) *and* ``lo`` column (value, or ``-inf``) are sorted
    ascending and sampled at ``B`` positions; the retained
    ``(value, rank)`` pairs bound, for any probe value ``v``, the counts
    ``|{p : hi_p ≥ v}|`` and ``|{p : lo_p > v}|`` from above: the last
    sampled value on the safe side of ``v`` pins a bound on ``v``'s
    insertion rank. With every position sampled (``m ≤ B``) the bounds
    are exact.

    Two complementary bounds come out of one summary (see
    :meth:`upper_bound_counts`): the Lemma-2-style *necessity* bound
    ``min_t |{hi_p ≥ lo_o}|`` (tight at low missingness) and the
    *strict-witness union* bound ``Σ_t |{lo_p > hi_o}|`` (a dominated
    member must be strictly worse somewhere — tight at high missingness,
    where almost every per-dimension necessity count degenerates to the
    shard size).

    A third family sharpens both: per disjoint dimension *pair*
    ``(2i, 2i+1)`` a small 2-D suffix-count grid over the two ``hi``
    columns bounds ``|{p : hi_p[a] ≥ lo_o[a] ∧ hi_p[b] ≥ lo_o[b]}|`` —
    a joint necessity count the per-dimension ``min`` overestimates
    whenever the dimensions are correlated. Grid cells count members
    whose hi-bucket is at least the probe's lo-bucket on *both* axes;
    bucketing rounds the probe down and the member up, so the cell sum
    only ever over-counts (sound at any resolution).
    """

    __slots__ = ("count", "values", "lo_values", "ranks", "grids")

    def __init__(
        self,
        count: int,
        values: list[np.ndarray],
        lo_values: list[np.ndarray],
        ranks: np.ndarray,
        grids: "list[tuple] | None" = None,
    ) -> None:
        self.count = int(count)
        self.values = values
        self.lo_values = lo_values
        #: One sampled-position array shared by every dimension and both
        #: sentinel sides (all columns are sampled at the same ranks).
        self.ranks = ranks
        #: ``(dim_a, dim_b, edges_a, edges_b, cells)`` suffix-count grids,
        #: one per disjoint dimension pair.
        self.grids = list(grids) if grids else []

    @classmethod
    def build(cls, dataset: "IncompleteDataset", *, bins: int = _SUMMARY_BINS) -> "ShardSummary":
        lo, hi = _bounds(dataset)
        return cls.from_bounds(lo, hi, bins=bins)

    @classmethod
    def from_bounds(
        cls, lo: np.ndarray, hi: np.ndarray, *, bins: int = _SUMMARY_BINS
    ) -> "ShardSummary":
        """Summarise a ``(m, d)`` sentinel block directly.

        Lets callers summarise *any* contiguous row run — a group of
        shards in the tree merge — without materialising a dataset.
        """
        m, d = hi.shape
        if m <= bins:
            idx = np.arange(m, dtype=np.intp)
        else:
            idx = np.unique(np.round(np.linspace(0, m - 1, bins)).astype(np.intp))
        values = [np.sort(hi[:, dim])[idx] for dim in range(d)]
        lo_values = [np.sort(lo[:, dim])[idx] for dim in range(d)]
        return cls(m, values, lo_values, idx, cls._build_grids(hi))

    @staticmethod
    def _build_grids(hi: np.ndarray) -> list[tuple]:
        """One 2-D suffix-count grid per disjoint ``hi`` dimension pair.

        ``cells[ia, ib]`` counts members whose hi-bucket (rank_right over
        the finite edges — ``+inf``/missing lands in the top bucket) is
        ``≥ ia`` on axis *a* and ``≥ ib`` on axis *b*.
        """
        _, d = hi.shape
        grids: list[tuple] = []
        for a in range(0, d - 1, 2):
            b = a + 1
            edges_a = _grid_edges(hi[:, a])
            edges_b = _grid_edges(hi[:, b])
            bucket_a = np.searchsorted(edges_a, hi[:, a], side="right")
            bucket_b = np.searchsorted(edges_b, hi[:, b], side="right")
            counts = np.zeros((edges_a.size + 1, edges_b.size + 1), dtype=np.int64)
            np.add.at(counts, (bucket_a, bucket_b), 1)
            cells = counts[::-1, ::-1].cumsum(axis=0).cumsum(axis=1)[::-1, ::-1]
            grids.append((a, b, edges_a, edges_b, np.ascontiguousarray(cells)))
        return grids

    @property
    def nbytes(self) -> int:
        return (
            self.ranks.nbytes
            + sum(v.nbytes + lv.nbytes for v, lv in zip(self.values, self.lo_values))
            + sum(ea.nbytes + eb.nbytes + cells.nbytes for _, _, ea, eb, cells in self.grids)
        )

    def upper_bound_counts(
        self, probe_lo: np.ndarray, probe_hi: np.ndarray | None = None
    ) -> np.ndarray:
        """Sound upper bounds on this shard's score contribution per probe.

        *probe_lo*/*probe_hi* are ``(b, d)`` sentinel matrices (missing →
        ``∓inf``). Returns ``(b,)`` int64 bounds — the minimum of the
        necessity bound ``min_t |{p : hi_p[t] ≥ lo_o[t]}|`` (every
        dominated member must pass the ≤ test on *all* dimensions) and,
        when *probe_hi* is given, the strict-witness union bound
        ``Σ_t |{p : lo_p[t] > hi_o[t]}|`` (every dominated member must be
        strictly worse on *some* dimension). Both are upper-bounded from
        the bucket samples, so the combined bound stays sound at any bin
        resolution.
        """
        b = probe_lo.shape[0]
        ranks = self.ranks
        out = np.full(b, self.count, dtype=np.int64)
        for dim, values in enumerate(self.values):
            j = np.searchsorted(values, probe_lo[:, dim], side="left")
            # Samples before j are < v, so rank_left(v) ≥ ranks[j-1] + 1
            # and |{hi ≥ v}| ≤ m − ranks[j-1] − 1; j == 0 bounds nothing.
            clamped = np.maximum(j - 1, 0)
            bound = np.where(j > 0, self.count - ranks[clamped] - 1, self.count)
            np.minimum(out, bound, out=out)
        for dim_a, dim_b, edges_a, edges_b, cells in self.grids:
            # lo_o ≤ hi_p ⟹ rank_left(lo_o) ≤ rank_right(hi_p): the
            # probe's bucket floor never exceeds a qualifying member's
            # bucket, so the suffix cell over-counts the joint test.
            ia = np.searchsorted(edges_a, probe_lo[:, dim_a], side="left")
            ib = np.searchsorted(edges_b, probe_lo[:, dim_b], side="left")
            np.minimum(out, cells[ia, ib], out=out)
        if probe_hi is None:
            return out
        union = np.zeros(b, dtype=np.int64)
        for dim, values in enumerate(self.lo_values):
            j = np.searchsorted(values, probe_hi[:, dim], side="right")
            # Samples before j are ≤ v, so rank_right(v) ≥ ranks[j-1] + 1
            # and |{lo > v}| ≤ m − ranks[j-1] − 1; j == 0 bounds nothing.
            clamped = np.maximum(j - 1, 0)
            union += np.where(j > 0, self.count - ranks[clamped] - 1, self.count)
        return np.minimum(out, union)


class PartitionShard:
    """One shard: a contiguous row range materialised as its own dataset."""

    __slots__ = ("dataset", "start")

    def __init__(self, dataset: "IncompleteDataset", start: int) -> None:
        self.dataset = dataset
        #: Global row index of this shard's first row (concatenation offset).
        self.start = int(start)

    @property
    def n(self) -> int:
        return self.dataset.n

    @property
    def stop(self) -> int:
        return self.start + self.dataset.n

    def fingerprint(self) -> str:
        """The shard dataset's own identity — its cache and store key."""
        return self.dataset.fingerprint()


class PartitionedDataset:
    """A dataset split into ``P`` row shards, each independently prepared.

    The shards partition the row axis, so the concatenation of the shard
    datasets holds exactly the full dataset's rows — the invariant that
    makes per-partition score sums exact and lets deltas route to their
    owning shard. The concatenation need not follow dataset row order:
    :attr:`order` maps *concatenation positions* to dataset rows
    (``None`` means identity), which is what lets unowned inserts route
    to the least-loaded shard and :meth:`rebalance` splice rows between
    shards while the underlying dataset version stays untouched. A shard
    emptied by deletions is dropped.
    """

    def __init__(
        self,
        dataset: "IncompleteDataset",
        partitions: int,
        *,
        _shards: "list[PartitionShard] | None" = None,
        _order: "np.ndarray | None" = None,
    ) -> None:
        if not isinstance(partitions, (int, np.integer)) or isinstance(partitions, bool):
            raise InvalidParameterError(f"partitions must be a positive integer, got {partitions!r}")
        if partitions < 1:
            raise InvalidParameterError(f"partitions must be >= 1, got {partitions}")
        self.dataset = dataset
        #: Concatenation position → dataset row (``None`` = identity).
        self.order = _order
        if _shards is not None:
            self.shards = _shards
            return
        count = int(min(partitions, dataset.n))
        base, extra = divmod(dataset.n, count)
        self.shards: list[PartitionShard] = []
        start = 0
        for j in range(count):
            size = base + (1 if j < extra else 0)
            self.shards.append(
                PartitionShard(dataset.subset(range(start, start + size)), start)
            )
            start += size

    @property
    def partitions(self) -> int:
        """Current shard count (may differ from the requested ``P`` after deltas)."""
        return len(self.shards)

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(shard.n for shard in self.shards)

    @property
    def imbalance(self) -> float:
        """Largest-to-mean shard size ratio — the repartition signal."""
        sizes = self.sizes
        return max(sizes) / (sum(sizes) / len(sizes))

    def shard_of_row(self, row: int) -> int:
        """Index of the shard owning global dataset *row*."""
        pos = row
        if self.order is not None:
            matches = np.flatnonzero(self.order == row)
            if matches.size == 0:
                raise InvalidParameterError(f"row {row} outside [0, {self.dataset.n})")
            pos = int(matches[0])
        for j, shard in enumerate(self.shards):
            if shard.start <= pos < shard.stop:
                return j
        raise InvalidParameterError(f"row {row} outside [0, {self.dataset.n})")

    def apply_delta(self, delta: "DatasetDelta", *, child: "IncompleteDataset | None" = None):
        """Route one global delta to its owning shards.

        Returns ``(child_view, advanced)`` where *child_view* is the
        partitioned view of the child version and *advanced* lists one
        ``(parent_shard_dataset, sub_delta, child_shard_dataset)`` triple
        per shard the delta touched (*child* is ``None`` when the shard
        was emptied and dropped). Untouched shards keep their dataset
        object — and therefore their fingerprint and every cache entry
        keyed on it. Pass *child* when the caller already materialised
        ``dataset.apply_delta(delta)`` (the engine always has) so the
        full-dataset clone is not paid twice.
        """
        from ..core.delta import DatasetDelta  # deferred: core imports the engine

        if child is None:
            child = self.dataset.apply_delta(delta)
        if delta.is_empty:
            return self, []
        inserts = int(delta.inserted_values.shape[0])
        insert_ids = tuple(child.ids[child.n - inserts :]) if inserts else ()

        n = self.dataset.n
        order = self.order
        inv = None
        if order is not None:
            inv = np.empty(n, dtype=np.intp)
            inv[order] = np.arange(n, dtype=np.intp)
        keep = np.ones(n, dtype=bool)
        if delta.deleted_rows:
            keep[list(delta.deleted_rows)] = False
        old2new = (np.cumsum(keep) - 1).astype(np.intp)

        # Unowned inserts go to the least-loaded live shard (ties break
        # toward the lowest shard index for determinism), keeping routed
        # insert streams from piling onto one shard.
        target = -1
        if inserts:
            target = min(range(len(self.shards)), key=lambda j: (self.shards[j].n, j))

        new_shards: list[PartitionShard] = []
        order_parts: list[np.ndarray] = []
        advanced = []
        start = 0
        for j, shard in enumerate(self.shards):
            span = (
                np.arange(shard.start, shard.stop, dtype=np.intp)
                if order is None
                else order[shard.start : shard.stop]
            )
            if inv is None:
                local_del = [r - shard.start for r in delta.deleted_rows if shard.start <= r < shard.stop]
                upd_pos = [
                    (i, r - shard.start)
                    for i, r in enumerate(delta.updated_rows)
                    if shard.start <= r < shard.stop
                ]
            else:
                local_del = [
                    int(inv[r]) - shard.start
                    for r in delta.deleted_rows
                    if shard.start <= inv[r] < shard.stop
                ]
                upd_pos = [
                    (i, int(inv[r]) - shard.start)
                    for i, r in enumerate(delta.updated_rows)
                    if shard.start <= inv[r] < shard.stop
                ]
            shard_inserts = inserts if j == target else 0
            surviving = old2new[span[keep[span]]]
            if not local_del and not upd_pos and not shard_inserts:
                new_shards.append(PartitionShard(shard.dataset, start))
                order_parts.append(surviving)
                start += shard.n
                continue
            ids = shard.dataset.ids
            sub = DatasetDelta(
                delta.d,
                inserted_values=delta.inserted_values if shard_inserts else None,
                inserted_ids=insert_ids if shard_inserts else None,
                deleted_rows=local_del,
                deleted_ids=[ids[r] for r in local_del],
                updated_rows=[r for _, r in upd_pos],
                updated_ids=[ids[r] for _, r in upd_pos],
                updated_values=delta.updated_values[[i for i, _ in upd_pos]]
                if upd_pos
                else None,
            )
            if len(local_del) == shard.n and not shard_inserts:
                advanced.append((shard.dataset, sub, None))
                continue  # shard emptied: drop it
            shard_child = shard.dataset.apply_delta(sub)
            advanced.append((shard.dataset, sub, shard_child))
            new_shards.append(PartitionShard(shard_child, start))
            if shard_inserts:
                surviving = np.concatenate(
                    [surviving, np.arange(child.n - inserts, child.n, dtype=np.intp)]
                )
            order_parts.append(surviving)
            start += shard_child.n
        child_order: "np.ndarray | None"
        if order_parts:
            child_order = np.concatenate(order_parts).astype(np.intp, copy=False)
        else:
            child_order = np.zeros(0, dtype=np.intp)
        if np.array_equal(child_order, np.arange(child.n, dtype=np.intp)):
            child_order = None
        view = PartitionedDataset(
            child, max(len(new_shards), 1), _shards=new_shards, _order=child_order
        )
        return view, advanced

    def rebalance(self, partitions: "int | None" = None):
        """Restore an even row split by splicing rows between shards.

        Rows move through ordinary per-shard deltas — trailing/leading
        runs deleted, displaced runs re-inserted — so the underlying
        dataset version, its fingerprint, and the query answer are all
        untouched; only the shard boundaries (and :attr:`order`) change.
        Returns ``(view, advanced)`` with the same
        ``(parent_shard_dataset, sub_delta, child_shard_dataset)``
        contract as :meth:`apply_delta`, letting the engine advance each
        touched shard's prepared structures incrementally.
        """
        from ..core.delta import DatasetDelta  # deferred: core imports the engine

        n = self.dataset.n
        count = len(self.shards) if partitions is None else int(partitions)
        count = max(1, min(count, n))
        base, extra = divmod(n, count)
        order = self.order
        values = self.dataset.values
        all_ids = self.dataset.ids

        def rows_at(s: int, e: int) -> np.ndarray:
            """Dataset rows sitting at concatenation positions [s, e)."""
            if order is None:
                return np.arange(s, e, dtype=np.intp)
            return order[s:e]

        new_shards: list[PartitionShard] = []
        advanced = []
        start = 0
        for j in range(count):
            size = base + (1 if j < extra else 0)
            s, e = start, start + size
            start = e
            # Derive the new shard from the old shard holding position s:
            # its overlap with [s, e) survives in place, the rest is
            # deleted, and positions past its end are inserted from the
            # dataset (they belonged to later shards).
            src = max(i for i, sh in enumerate(self.shards) if sh.start <= s)
            sh = self.shards[src]
            keep_stop = min(e, sh.stop)
            local_del = list(range(0, s - sh.start)) + list(
                range(keep_stop - sh.start, sh.n)
            )
            append = rows_at(sh.stop, e) if e > sh.stop else np.zeros(0, dtype=np.intp)
            if not local_del and not append.size:
                new_shards.append(PartitionShard(sh.dataset, s))
                continue
            ids = sh.dataset.ids
            sub = DatasetDelta(
                self.dataset.d,
                inserted_values=values[append] if append.size else None,
                inserted_ids=tuple(all_ids[r] for r in append) if append.size else None,
                deleted_rows=local_del,
                deleted_ids=[ids[r] for r in local_del],
            )
            shard_child = sh.dataset.apply_delta(sub)
            advanced.append((sh.dataset, sub, shard_child))
            new_shards.append(PartitionShard(shard_child, s))
        view = PartitionedDataset(
            self.dataset, count, _shards=new_shards, _order=order
        )
        return view, advanced

    def validate(self) -> None:
        """Assert the concatenation invariant (tests and debugging)."""
        order = self.order
        expected_values = self.dataset.values if order is None else self.dataset.values[order]
        expected_ids = (
            self.dataset.ids
            if order is None
            else [self.dataset.ids[r] for r in order]
        )
        values = np.concatenate([shard.dataset.values for shard in self.shards], axis=0)
        same = (values == expected_values) | (np.isnan(values) & np.isnan(expected_values))
        if values.shape != expected_values.shape or not same.all():
            raise InvalidParameterError("shard concatenation no longer matches the dataset")
        ids = [i for shard in self.shards for i in shard.dataset.ids]
        if ids != list(expected_ids):
            raise InvalidParameterError("shard id order no longer matches the dataset")
        if order is not None and (
            order.shape != (self.dataset.n,)
            or not np.array_equal(np.sort(order), np.arange(self.dataset.n))
        ):
            raise InvalidParameterError("order is not a permutation of the dataset rows")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PartitionedDataset n={self.dataset.n} shards={self.sizes}>"


# ---------------------------------------------------------------------------
# Two-phase distributed protocol
# ---------------------------------------------------------------------------


def execute_partitioned(
    view: PartitionedDataset,
    k: int,
    *,
    engine=None,
    workers: int | None = None,
    tie_break: str = "index",
    rng=None,
    summary_bins: int = _SUMMARY_BINS,
    memory_budget: "int | None" = None,
    spill_store=None,
):
    """Answer one TKD query through the two-phase partition protocol.

    Bit-identical to the monolithic engine under ``tie_break="index"``
    (see the module docstring for the exactness argument); under
    ``tie_break="random"`` the boundary tie is drawn among the surviving
    candidates — a different (equally arbitrary, paper-sanctioned) draw
    than the monolithic permutation.

    ``workers=N`` (N ≥ 2) fans both phases out over a process pool; the
    sequential path reuses *engine*'s shared prepared-dataset cache and
    store warm-start per shard.

    With *spill_store* and *memory_budget* set, shard tables live as
    memory-mapped spill files in the store and only a bounded resident
    set of attachments is kept hot (out-of-core mode): phase 1 builds
    each shard's structures, spills them, and drops the anonymous RAM
    copy; phase 2 re-attaches shards on demand through the engine
    cache's resident-set manager, so peak RSS tracks *memory_budget*
    instead of the sum of all shard tables.
    """
    from ..core.result import TKDResult, select_top_k, validate_k
    from ..core.stats import QueryStats

    dataset = view.dataset
    n = dataset.n
    kk = validate_k(k, n)
    shards = view.shards
    pool_workers = 0 if workers is None else int(workers)
    if pool_workers < 0:
        raise InvalidParameterError(f"workers must be >= 1, got {workers}")
    spill = spill_store is not None

    # -- phase 1: local scores + summaries ---------------------------------
    start_p1 = _clock()
    shm_metas: dict[str, dict] = {}
    provider = None
    with telemetry.trace("partition.phase1") as span:
        span.set("shards", len(shards)).set("workers", pool_workers).set("spill", spill)
        if pool_workers > 1 and len(shards) > 1:
            locals_, summaries, pool, shm_metas = _phase1_parallel(
                view,
                engine,
                min(pool_workers, len(shards)),
                summary_bins,
                spill_store if spill else None,
            )
        elif spill:
            # Out-of-core: build → spill → drop, never holding more than the
            # resident set of mmap attachments (plus the one shard in build).
            pool = None
            locals_, summaries = [], []
            budget = memory_budget if memory_budget is not None else 0
            provider = lambda shard: _attach_spilled(engine, spill_store, shard, budget)
            for shard in shards:
                prepared = provider(shard)
                locals_.append(
                    dominated_counts(shard.dataset, prepared=prepared).astype(np.int64, copy=False)
                )
                summaries.append(ShardSummary.build(shard.dataset, bins=summary_bins))
                del prepared  # resident-set manager decides what stays mapped
        else:
            pool = None
            prepared_shards = []
            provider = lambda shard: prepared_shards[shards.index(shard)]
            locals_, summaries = [], []
            for shard in shards:
                prepared = _shard_prepared(engine, shard)
                prepared.warm()
                prepared_shards.append(prepared)
                locals_.append(
                    dominated_counts(shard.dataset, prepared=prepared).astype(np.int64, copy=False)
                )
                summaries.append(ShardSummary.build(shard.dataset, bins=summary_bins))
    phase1_seconds = _clock() - start_p1

    try:
        # -- merge: bounds, tau, surviving candidates ----------------------
        # Everything from here to selection happens in *concatenation
        # space*: position p belongs to the shard whose [start, stop)
        # contains p, and maps to dataset row perm[p] (identity when the
        # view was never re-routed or rebalanced).
        with telemetry.trace("partition.merge") as span:
            perm = view.order
            lo_g, hi_g = _bounds(dataset)
            if perm is None:
                lo, hi = lo_g, hi_g
            else:
                lo, hi = lo_g[perm], hi_g[perm]
            lower = np.concatenate(locals_)  # own-shard exact score == global lower bound
            tau = int(np.partition(lower, n - kk)[n - kk])
            upper, merge_groups = _merged_upper_bounds(
                shards, summaries, lower, lo, hi, tau, bins=summary_bins
            )
            candidates = np.flatnonzero(upper >= tau).astype(np.intp)
            span.set("merge", "tree" if merge_groups else "flat")
            span.set("merge_groups", merge_groups)
            span.set("tau", tau).set("candidates", int(candidates.size))

        # -- phase 2: exact cross-partition scores for the survivors -------
        start_p2 = _clock()
        with telemetry.trace("partition.phase2") as p2:
            total = lower.copy()
            refined = np.zeros(0, dtype=np.intp)
            exchange_windows = 0
            if len(shards) > 1:
                exchange = _Exchanger(view, pool, provider, lo, hi, shm_metas)
                # τ refinement: exactly score the highest-upper-bound head
                # first; the k-th best of those *actual* scores is a sound —
                # and usually far tighter — lower bound on the global k-th.
                # The head is small (O(k)), so it runs in-parent with one
                # broadcast per shard instead of burning a pool round.
                head = min(candidates.size, max(4 * kk, _MIN_REFINE_HEAD))
                if head >= kk and head < candidates.size:
                    with telemetry.trace("partition.refine") as span:
                        by_upper = np.argsort(-upper[candidates], kind="stable")
                        refined = candidates[by_upper[:head]]
                        _refine_in_parent(view, refined, lo, hi, total)
                        refined_tau = int(np.partition(total[refined], head - kk)[head - kk])
                        if refined_tau > tau:
                            tau = refined_tau
                            candidates = candidates[upper[candidates] >= tau]
                        span.set("refined", int(refined.size)).set("tau", tau)
                        span.set("candidates", int(candidates.size))
                with telemetry.trace("partition.exchange") as span:
                    # Drop already-refined rows by scatter rather than
                    # np.isin: O(n) bytes beats isin's sort for index sets.
                    is_refined = np.zeros(n, dtype=bool)
                    is_refined[refined] = True
                    mask = ~is_refined[candidates]
                    exchange.add_exact(candidates[mask], total)
                    exchange_windows = exchange.windows
                    span.set("survivors", int(candidates.size))
                    span.set("windows", exchange_windows)
            p2.set("tau", tau).set("candidates", int(candidates.size))
        phase2_seconds = _clock() - start_p2
    finally:
        # Segments the phase-1 workers exported on our behalf: the pool
        # outlives this query (it is the shared session pool), so the
        # names must go now, success or not. Spill metas carry no "name";
        # their files belong to the store and persist across queries.
        for meta in shm_metas.values():
            if "name" in meta:
                unlink_shared(meta["name"])

    with telemetry.trace("partition.select") as span:
        eligible = np.zeros(n, dtype=bool)
        eligible[candidates] = True
        eligible[refined] = True  # exactly scored either way; keeps ties honest
        if perm is not None:
            # Scatter concat-space scores back to dataset rows so selection
            # tie-breaks on the *dataset* row index, same as the monolithic
            # engine (non-eligible rows carry lower bounds; the mask hides them).
            scattered = np.zeros_like(total)
            scattered[perm] = total
            total = scattered
            scattered_mask = np.zeros(n, dtype=bool)
            scattered_mask[perm[np.flatnonzero(eligible)]] = True
            eligible = scattered_mask
        selection = select_top_k(total, kk, tie_break=tie_break, rng=rng, eligible=eligible)
        survivors = int(eligible.sum())
        span.set("survivors", survivors).set("survival", float(survivors) / max(n, 1))

    stats = QueryStats(
        algorithm="partitioned", n=n, d=dataset.d, k=kk, scores_computed=n
    )
    stats.candidates = survivors
    stats.index_bytes = sum(summary.nbytes for summary in summaries)
    stats.query_seconds = phase1_seconds + phase2_seconds
    if telemetry.enabled():
        registry = telemetry.metrics()
        registry.count("partition.queries")
        registry.observe("partition.phase1_seconds", phase1_seconds)
        registry.observe("partition.phase2_seconds", phase2_seconds)
        registry.gauge("partition.survival", float(survivors) / max(n, 1))
    # Deprecated compatibility shim: the protocol counters below are now
    # recorded as span attributes on the partition.* spans (telemetry);
    # ``stats.extra`` keeps carrying them for existing readers.
    stats.extra.update(
        partitions=len(shards),
        shard_sizes=list(view.sizes),
        workers=pool_workers,
        tau=tau,
        refined=int(refined.size),
        survival=float(survivors) / max(n, 1),
        phase1_seconds=phase1_seconds,
        phase2_seconds=phase2_seconds,
        merge="tree" if merge_groups else "flat",
        merge_groups=merge_groups,
        spill=spill,
        exchange_windows=exchange_windows,
    )
    return TKDResult.from_selection(
        dataset,
        selection,
        total[selection],
        k=kk,
        algorithm="partitioned",
        stats=stats,
    )


def _merged_upper_bounds(
    shards: "list[PartitionShard]",
    summaries: "list[ShardSummary]",
    lower: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    tau: int,
    *,
    bins: int = _SUMMARY_BINS,
):
    """Global upper bounds from the shard summaries (flat or tree merge).

    Returns ``(upper, groups)`` in concatenation space. At ``P`` shards
    the flat merge probes every summary for every position — ``O(P·n)``
    summary lookups. Past :data:`_TREE_MERGE_MIN_SHARDS` a two-level
    tree takes over: pass 1 probes only ``G ≈ √P`` *group* summaries
    (built over contiguous shard runs straight from the sentinel block)
    for a sound envelope ``Σ_g UB_g ≥ score``; pass 2 descends into the
    per-shard summaries only for the envelope's τ-survivors — typically
    a few percent of ``n`` — so total work is ``O(√P·n + P·survivors)``.
    ``groups`` is 0 on the flat path.
    """
    n = lower.shape[0]
    if len(shards) <= _TREE_MERGE_MIN_SHARDS:
        upper = lower.copy()
        for shard, summary in zip(shards, summaries):
            ub = summary.upper_bound_counts(lo, hi)
            upper += ub
            upper[shard.start : shard.stop] -= ub[shard.start : shard.stop]
        return upper, 0

    group_count = max(2, int(round(len(shards) ** 0.5)))
    step = -(-len(shards) // group_count)
    envelope = np.zeros(n, dtype=np.int64)
    groups = 0
    for g0 in range(0, len(shards), step):
        run = shards[g0 : g0 + step]
        gs, ge = run[0].start, run[-1].stop
        group_summary = ShardSummary.from_bounds(lo[gs:ge], hi[gs:ge], bins=bins)
        envelope += group_summary.upper_bound_counts(lo, hi)
        groups += 1
    # The envelope bounds the *full* score (own-shard contribution
    # included), so it is directly comparable with τ.
    cand = np.flatnonzero(envelope >= tau).astype(np.intp)
    if cand.size:
        probe_lo, probe_hi = lo[cand], hi[cand]
        tight = lower[cand].astype(np.int64, copy=True)
        for shard, summary in zip(shards, summaries):
            ub = summary.upper_bound_counts(probe_lo, probe_hi)
            inside = (cand >= shard.start) & (cand < shard.stop)
            ub[inside] = 0  # own-shard part is already exact in `lower`
            tight += ub
        envelope[cand] = np.minimum(envelope[cand], tight)
    return envelope, groups


def _refine_in_parent(
    view: PartitionedDataset,
    rows: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    total: np.ndarray,
) -> None:
    """Exactly score the small refinement head against every shard.

    One ``(head, m, d)`` broadcast per shard — no tables, no pool round;
    the head is ``O(k)`` so this is cheaper than shipping it anywhere.
    """
    for shard in view.shards:
        foreign = rows[(rows < shard.start) | (rows >= shard.stop)]
        if not foreign.size:
            continue
        member_lo = lo[shard.start : shard.stop]
        member_hi = hi[shard.start : shard.stop]
        le_all = np.all(lo[foreign][:, None, :] <= member_hi[None, :, :], axis=2)
        lt_any = np.any(hi[foreign][:, None, :] < member_lo[None, :, :], axis=2)
        total[foreign] += (le_all & lt_any).sum(axis=1)


def _shard_prepared(engine, shard: PartitionShard) -> PreparedDataset:
    """The shard's PreparedDataset — through the engine's caches when given."""
    if engine is not None:
        return engine.prepare_dataset(shard.dataset)
    return PreparedDataset(shard.dataset)


def _spill_prepared(store, fingerprint: str, dataset) -> "tuple[PreparedDataset, int]":
    """Attach a shard's tables from its spill file, building it on a miss.

    Build → spill → reattach keeps the hot copy file-backed: dropping
    the attachment returns clean pages to the OS with no write-back.
    Falls back to the anonymous RAM build if the spill write fails
    (disk full), so out-of-core mode degrades rather than erroring.
    """
    spilled = store.get_shard_tables(fingerprint)
    if spilled is None:
        built = PreparedDataset(dataset)
        built.warm()
        try:
            spilled = store.put_shard_tables(fingerprint, built)
        except OSError:
            return built, built.nbytes
        del built
    return spilled.prepared(), spilled.nbytes


def _attach_spilled(engine, store, shard: PartitionShard, budget: int) -> PreparedDataset:
    """Resident-set entry point: the shard's mmap-backed PreparedDataset.

    Attachments are LRU-managed by the engine cache's resident-set
    manager under *budget* bytes; evicting one just drops the mapping
    (the spill file stays), so a re-attach is a page-cache hit, not a
    rebuild.
    """
    if engine is not None:
        cache = engine.dataset_cache
    else:
        from .session import _shared_dataset_cache

        cache = _shared_dataset_cache
    fingerprint = shard.fingerprint()
    dataset = shard.dataset
    return cache.attach_spilled(
        fingerprint,
        lambda: _spill_prepared(store, fingerprint, dataset),
        max_resident_bytes=budget,
    )


# ---------------------------------------------------------------------------
# Process-pool workers
# ---------------------------------------------------------------------------

#: Per-worker-process cache: shard fingerprint → PreparedDataset, so the
#: phase-2 task for a shard reuses the structures phase 1 built whenever
#: the pool schedules it onto the same process (payloads carry a
#: shared-memory meta — and a sentinel-only rebuild fallback — for when
#: it does not). Size-capped because the pool is shared across queries.
_WORKER_SHARDS: dict[str, PreparedDataset] = {}
_WORKER_HANDLES: dict[str, SharedTables] = {}
_WORKER_SHARDS_CAP = 8

#: Names of transfer segments this worker exported for its parent. The
#: parent adopts cleanup by name; this atexit net only matters when the
#: parent dies before adopting (unlink_shared is double-unlink safe).
_EXPORTED_NAMES: list[str] = []


def _cache_worker_shard(
    fingerprint: str, prepared: PreparedDataset, handle: SharedTables | None = None
) -> None:
    while len(_WORKER_SHARDS) >= _WORKER_SHARDS_CAP:
        evicted = next(iter(_WORKER_SHARDS))
        _WORKER_SHARDS.pop(evicted, None)
        stale = _WORKER_HANDLES.pop(evicted, None)
        if stale is not None:
            stale.close()
    _WORKER_SHARDS[fingerprint] = prepared
    if handle is not None:
        _WORKER_HANDLES[fingerprint] = handle


def _cleanup_exported() -> None:  # pragma: no cover - crash net
    for name in _EXPORTED_NAMES:
        unlink_shared(name)
    _EXPORTED_NAMES.clear()


def _shard_payload(
    shard: PartitionShard, store_dir: str | None, bins: int, spill: bool = False
) -> tuple:
    dataset = shard.dataset
    return (
        shard.fingerprint(),
        dataset.values,
        dataset.directions,
        store_dir,
        bins,
        spill,
        telemetry.propagation_context(),
    )


def _phase1_worker(payload: tuple):
    """Pool worker: one shard's local scores, summary and shared tables.

    Besides the phase-1 answer, the worker exports its freshly prepared
    structures into a shared-memory segment (``owner=False``: the parent
    adopts cleanup by name) so phase-2 tasks landing on *other* workers
    attach zero-copy instead of re-preparing the shard. In spill mode
    the store's spill file *is* the shared medium: the worker builds and
    spills the shard, then serves (and advertises, via a spill meta) the
    mmap attachment instead of an anonymous shm segment.

    The trailing payload element is the coordinator's trace context;
    spans recorded here come back as the trailing result element.
    """
    import atexit

    from ..core.dataset import IncompleteDataset

    fingerprint, values, directions, store_dir, bins, spill, trace_ctx = payload
    telemetry.begin_remote(trace_ctx)
    dataset = IncompleteDataset(values, directions=directions)
    if spill and store_dir:
        from .store import PersistentStore

        with telemetry.trace("partition.phase1.shard") as span:
            span.set("n", dataset.n).set("spill", True)
            store = PersistentStore(store_dir)
            prepared, _ = _spill_prepared(store, fingerprint, dataset)
            local = dominated_counts(dataset, prepared=prepared).astype(np.int64, copy=False)
            summary = ShardSummary.build(dataset, bins=bins)
            _cache_worker_shard(fingerprint, prepared)
            spilled = store.get_shard_tables(fingerprint)
        meta = spilled.meta() if spilled is not None else None
        return local, summary, meta, telemetry.end_remote()
    with telemetry.trace("partition.phase1.shard") as span:
        span.set("n", dataset.n)
        prepared = None
        if store_dir:
            from .store import PersistentStore

            prepared = PersistentStore(store_dir).get_prepared(fingerprint)
            if prepared is not None and prepared.n != dataset.n:
                prepared = None
        if prepared is None:
            prepared = PreparedDataset(dataset)
        prepared.warm()
        local = dominated_counts(dataset, prepared=prepared).astype(np.int64, copy=False)
        summary = ShardSummary.build(dataset, bins=bins)
        _cache_worker_shard(fingerprint, prepared)
        meta = None
        try:
            handle = SharedTables.create(prepared, owner=False)
        except (OSError, ValueError):
            handle = None  # /dev/shm full: phase 2 rebuilds from the pickle
        if handle is not None:
            if not _EXPORTED_NAMES:
                atexit.register(_cleanup_exported)
            _EXPORTED_NAMES.append(handle.meta["name"])
            meta = handle.meta
            handle.close()
    return local, summary, meta, telemetry.end_remote()


def _phase2_worker(payload: tuple) -> tuple:
    """Pool worker: exact foreign counts for one shard × candidate chunk.

    Returns ``(counts, spans)`` — the spans recorded under the trace
    context the payload carried (empty when the coordinator is not
    tracing).
    """
    from ..core.dataset import IncompleteDataset

    fingerprint, values, directions, probe_lo, probe_hi, shm_meta, trace_ctx = payload
    telemetry.begin_remote(trace_ctx)
    span = telemetry.trace("partition.phase2.probe")
    span.__enter__()
    span.set("rows", int(probe_lo.shape[0]))
    prepared = _WORKER_SHARDS.get(fingerprint)
    if prepared is None and shm_meta is not None:
        if shm_meta.get("kind") == "spill":
            from .store import SpilledTables

            try:
                prepared = SpilledTables.from_meta(shm_meta).prepared()
            except (OSError, ValueError, KeyError):
                prepared = None  # spill file gone; rebuild locally below
            if prepared is not None:
                _cache_worker_shard(fingerprint, prepared)
        else:
            try:
                handle = SharedTables.attach(shm_meta)
            except (OSError, ValueError):
                handle = None  # segment gone; rebuild locally below
            if handle is not None:
                prepared = handle.prepared()
                _cache_worker_shard(fingerprint, prepared, handle)
    if prepared is None:
        prepared = PreparedDataset(IncompleteDataset(values, directions=directions))
        _cache_worker_shard(fingerprint, prepared)
    counts = prepared.foreign_dominated_counts(probe_lo, probe_hi)
    span.__exit__(None, None, None)
    return counts, telemetry.end_remote()


def _phase1_parallel(
    view: PartitionedDataset, engine, pool_size: int, bins: int, spill_store=None
):
    """Fan phase 1 out over the shared session pool.

    Returns ``(locals, summaries, pool, shm_metas)`` — the pool stays
    open for phase 2 (and for the next query: it is the process-global
    :func:`repro.engine.session._process_pool`), and ``shm_metas`` maps
    shard fingerprints to the transfer handles the workers exported:
    shared-memory metas (whose cleanup the caller now owns) or, in
    spill mode, store-owned spill-file metas (nothing to clean up).
    """
    from .session import _process_pool

    spill = spill_store is not None
    store = spill_store if spill else getattr(engine, "store", None)
    store_dir = str(store.directory) if store is not None else None
    pool = _process_pool(pool_size)
    payloads = [_shard_payload(shard, store_dir, bins, spill) for shard in view.shards]
    results = list(pool.map(_phase1_worker, payloads))
    for r in results:
        telemetry.absorb_spans(r[3])
    shm_metas = {
        shard.fingerprint(): r[2]
        for shard, r in zip(view.shards, results)
        if r[2] is not None
    }
    return [r[0] for r in results], [r[1] for r in results], pool, shm_metas


class _Exchanger:
    """One phase-2 exchange surface serving both τ refinement and the
    final candidate exchange (in-process or over the phase-1 pool)."""

    def __init__(self, view, pool, provider, lo, hi, shm_metas=None) -> None:
        self._view = view
        self._pool = pool
        #: ``shard -> PreparedDataset`` callable — a list lookup on the
        #: resident path, the resident-set attach in spill mode. Holding
        #: a callable instead of the prepared list keeps this object
        #: from pinning every shard's tables in RAM at once.
        self._provider = provider
        self._lo = lo
        self._hi = hi
        self._shm_metas = shm_metas or {}
        #: Fixed-size windows the survivor sets were streamed in
        #: (reported as ``exchange_windows`` in partition stats).
        self.windows = 0

    def _window_rows(self) -> int:
        """Survivor rows per exchange window, sized so one window's
        sentinel payload (lo + hi rows) stays under the byte cap."""
        d = int(self._lo.shape[1]) if self._lo.ndim == 2 else 1
        per_row = 2 * self._lo.dtype.itemsize * max(d, 1)
        return max(1, _EXCHANGE_WINDOW_BYTES // per_row)

    def add_exact(self, rows: np.ndarray, total: np.ndarray) -> None:
        """Fold every shard's exact foreign contribution into ``total[rows]``.

        The survivor set is streamed in fixed-size windows rather than
        broadcast whole, so per-exchange bytes stay capped however many
        candidates survive phase 1. Contributions are integer adds into
        disjoint-per-shard positions, so the window order (and any
        window size) is bit-identical to the one-shot exchange.
        """
        if rows.size == 0:
            return
        lo, hi = self._lo, self._hi
        window = self._window_rows()
        self.windows += -(-rows.size // window)
        if self._pool is None:
            # Shard-major: table attaches dominate in spill mode, so each
            # shard is attached once; the inner windows bound the gathered
            # sentinel temporaries instead.
            for shard in self._view.shards:
                foreign = rows[(rows < shard.start) | (rows >= shard.stop)]
                if foreign.size:
                    prepared = self._provider(shard)
                    for start in range(0, foreign.size, window):
                        sel = foreign[start : start + window]
                        total[sel] += prepared.foreign_dominated_counts(
                            lo[sel], hi[sel]
                        )
            return
        # Window-major over the pool: one window's futures (all shards)
        # are submitted and drained before the next window starts, so the
        # pickled sentinel bytes in flight are capped too.
        for start in range(0, rows.size, window):
            wrows = rows[start : start + window]
            futures = []
            for shard in self._view.shards:
                foreign = wrows[(wrows < shard.start) | (wrows >= shard.stop)]
                fingerprint = shard.fingerprint()
                for chunk_start in range(0, foreign.size, _PROBE_CHUNK):
                    chunk = foreign[chunk_start : chunk_start + _PROBE_CHUNK]
                    payload = (
                        fingerprint,
                        shard.dataset.values,
                        shard.dataset.directions,
                        lo[chunk],
                        hi[chunk],
                        self._shm_metas.get(fingerprint),
                        telemetry.propagation_context(),
                    )
                    futures.append(
                        (chunk, self._pool.submit(_phase2_worker, payload))
                    )
            for chunk, future in futures:
                counts, spans = future.result()
                total[chunk] += counts
                telemetry.absorb_spans(spans)
