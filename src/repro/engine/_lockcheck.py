"""Opt-in runtime lock-order detector (``REPRO_LOCK_CHECK=1``).

The static pass (``tools/repro_lint`` REP002) proves lock-order
consistency for every call path it can resolve; this module is the
dynamic complement for the paths it cannot (callbacks, duck-typed
receivers, user code driving the engine directly).  When the environment
variable ``REPRO_LOCK_CHECK`` is truthy at lock-creation time, every
engine lock is a :class:`CheckedRLock` that

* keeps a per-thread stack of currently-held lock names with the
  acquisition call site of each,
* records every observed nesting ``A -> B`` in a process-wide order
  graph, and raises :class:`LockOrderError` the first time some thread
  nests ``B -> A`` after another nested ``A -> B`` (a latent deadlock —
  both witness stacks are in the message), and
* flags a fork while the *forking thread* holds a checked lock (the
  child would inherit a locked mutex with no owner thread to ever
  release it).  CPython runs ``os.register_at_fork`` before-hooks with
  exceptions ignored, so the fork itself cannot be aborted; instead the
  violation is recorded and :class:`LockForkError` is raised when the
  offending ``with`` block exits — attributing the failure to the exact
  lock scope that spanned the fork (``fork_violations()`` exposes the
  record for tooling).

Same-name nesting is reentrant and never recorded: instance locks share
their domain name (every ``PreparedDatasetCache`` lock is ``cache``), so
domain-internal reentrancy stays legal exactly as it is with RLocks.

Off by default: ``make_lock`` returns a plain ``threading.RLock`` /
``threading.Lock`` unless the flag is set, so production paths pay
nothing.  The tier-1 CI leg runs the whole suite with the flag on.
"""

from __future__ import annotations

import os
import threading
import traceback

__all__ = [
    "CheckedRLock",
    "LockOrderError",
    "LockForkError",
    "enabled",
    "make_lock",
    "reset_order_state",
    "held_locks",
    "fork_violations",
]


class LockOrderError(RuntimeError):
    """Two threads nested the same pair of locks in opposite orders."""


class LockForkError(RuntimeError):
    """The process forked while the forking thread held a checked lock."""


def enabled() -> bool:
    return os.environ.get("REPRO_LOCK_CHECK", "").strip().lower() in {"1", "true", "on", "yes"}


_tls = threading.local()

# (first, second) -> witness call-site string for the first observed nesting
_edges: dict[tuple[str, str], str] = {}
_edges_lock = threading.Lock()

# fork-while-holding records: {"lock": name, "site": acquisition stack}
_fork_violations: list[dict] = []


def _held_stack() -> list[dict]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def held_locks() -> list[str]:
    """Names of checked locks the calling thread currently holds."""
    return [entry["name"] for entry in _held_stack()]


def fork_violations() -> list[dict]:
    """Recorded locks-held-across-fork events (name + acquisition site)."""
    return list(_fork_violations)


def reset_order_state() -> None:
    """Forget all recorded nesting edges and fork violations (test isolation)."""
    with _edges_lock:
        _edges.clear()
    del _fork_violations[:]


def _call_site(skip: int = 3) -> str:
    # a short stack excluding this module's frames — enough to identify
    # the acquisition site in an error message without debug tooling
    frames = traceback.format_stack()[:-skip]
    return "".join(frames[-4:])


def _note_nesting(outer: str, inner: str, site: str) -> None:
    if outer == inner:
        return
    with _edges_lock:
        reverse = _edges.get((inner, outer))
        if reverse is not None:
            raise LockOrderError(
                f"lock-order inversion: acquiring '{inner}' while holding "
                f"'{outer}', but the opposite nesting '{inner}' -> '{outer}' "
                f"was already observed.\n--- this acquisition ---\n{site}"
                f"--- prior opposite nesting ---\n{reverse}"
            )
        _edges.setdefault((outer, inner), site)


class CheckedRLock:
    """Reentrant (or plain) lock that enforces a global acquisition order."""

    def __init__(self, name: str, *, reentrant: bool = True):
        self.name = name
        self._lock = threading.RLock() if reentrant else threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CheckedRLock {self.name!r} {self._lock!r}>"

    def acquire(self, blocking: bool = True, timeout: float = -1):
        held = _held_stack()
        if self.name not in (entry["name"] for entry in held):
            site = _call_site()
            for entry in list(held):
                _note_nesting(entry["name"], self.name, site)
        else:
            site = "<reentrant>"
        got = self._lock.acquire(blocking, timeout)
        if got:
            held.append({"name": self.name, "site": site, "forked": False})
        return got

    def release(self) -> None:
        held = _held_stack()
        entry = None
        for i in range(len(held) - 1, -1, -1):
            if held[i]["name"] == self.name:
                entry = held.pop(i)
                break
        self._lock.release()
        if entry is not None and entry["forked"]:
            # raised *after* the underlying release so nothing stays stuck
            raise LockForkError(
                f"process forked while this thread held checked lock "
                f"'{self.name}': the child inherited a mutex no thread can "
                f"release.\n--- acquisition site ---\n{entry['site']}"
            )

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def _before_fork() -> None:
    # Runs in the forking thread.  CPython ignores exceptions raised here
    # (fork proceeds regardless), so only record: release() of each marked
    # entry raises LockForkError in the parent's offending with-block.
    for entry in _held_stack():
        entry["forked"] = True
        _fork_violations.append({"lock": entry["name"], "site": entry["site"]})


def _after_fork_child() -> None:
    # The child's only thread is the forking one: give it fresh detector
    # state so an inherited mark or a peer thread's held _edges_lock
    # cannot wedge or mis-blame the child.
    global _edges_lock
    _edges_lock = threading.Lock()
    for entry in _held_stack():
        entry["forked"] = False


_fork_hook_installed = False


def _install_fork_hook() -> None:
    global _fork_hook_installed
    if _fork_hook_installed or not hasattr(os, "register_at_fork"):
        return
    os.register_at_fork(before=_before_fork, after_in_child=_after_fork_child)
    _fork_hook_installed = True


def make_lock(name: str, *, reentrant: bool = True):
    """A named engine lock: checked when REPRO_LOCK_CHECK is set, plain otherwise."""
    if enabled():
        _install_fork_hook()
        return CheckedRLock(name, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()
