"""A reusable query session: prepared-structure and result caching.

The paper charges preprocessing (Table 3) separately from query time
(Figs. 12–17) precisely because one preparation serves many queries — but
the seed API rebuilt indexes and MaxScore queues on every
:func:`~repro.core.query.top_k_dominating` call. :class:`QueryEngine` is
the session object that makes the amortisation real:

* **dataset fingerprinting** — a content hash of the value matrix,
  observed masks and directions, so caching works across distinct
  :class:`~repro.core.dataset.IncompleteDataset` instances holding the
  same data (and never serves stale answers for different data);
* **prepared-structure cache** — one prepared
  :class:`~repro.core.base.TKDAlgorithm` per (dataset, algorithm,
  options), LRU-bounded; the planner is told which structures exist so
  ``algorithm="auto"`` prefers an index that is already paid for;
* **result cache** — an LRU over (dataset, k, algorithm, options)
  answering repeated queries in O(1) (deterministic tie-breaking only;
  ``tie_break="random"`` always executes);
* **batch API** — :meth:`QueryEngine.query_many` runs a parametrised
  sweep (the Fig. 12–17 loops, a leaderboard's k-ladder) against shared
  preparations.

Usage::

    engine = QueryEngine()
    for k in (4, 8, 16, 32, 64):
        result = engine.query(dataset, k)          # one preparation total
    results = engine.query_many([(dataset, 2), (dataset, 8)])
    print(engine.stats.summary())
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import InvalidParameterError
from .planner import QueryPlan, merge_plan_options, plan_query, supported_options

__all__ = ["QueryEngine", "EngineStats", "dataset_fingerprint"]


def dataset_fingerprint(dataset) -> str:
    """Content hash identifying a dataset's query-relevant state.

    Two datasets with identical values, missing patterns and per-dimension
    directions produce identical TKD answers, so they share a fingerprint;
    ids/names are presentation-only and excluded deliberately.
    """
    digest = hashlib.sha256()
    digest.update(str(dataset.values.shape).encode())
    digest.update(dataset.values.tobytes())
    digest.update(dataset.observed.tobytes())
    digest.update(",".join(dataset.directions).encode())
    return digest.hexdigest()


def _freeze(value):
    """Make an options value hashable for cache keys."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        return tuple(_freeze(v) for v in value)
    if hasattr(value, "tolist"):  # numpy scalars/arrays
        return _freeze(value.tolist())
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def _options_key(options: dict) -> tuple:
    return tuple(sorted((name, _freeze(value)) for name, value in options.items()))


@dataclass
class EngineStats:
    """Cache-effectiveness counters of one :class:`QueryEngine`."""

    queries: int = 0
    result_hits: int = 0
    result_misses: int = 0
    prepared_hits: int = 0
    prepared_misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Result-cache hit rate over all answered queries (0 when idle)."""
        answered = self.result_hits + self.result_misses
        return self.result_hits / answered if answered else 0.0

    def summary(self) -> str:
        return (
            f"engine: {self.queries} queries, "
            f"results {self.result_hits}/{self.result_hits + self.result_misses} cached "
            f"({self.hit_rate:.0%}), "
            f"prepared reused {self.prepared_hits}x, evictions {self.evictions}"
        )


class _LRU:
    """Minimal ordered-dict LRU used for both engine caches."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise InvalidParameterError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> int:
        """Insert and return how many entries were evicted (0 or 1)."""
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            return 1
        return 0

    def keys(self):
        return list(self._data.keys())

    def clear(self) -> None:
        self._data.clear()


class QueryEngine:
    """A session that amortises preparation and caching across TKD queries.

    Parameters
    ----------
    max_prepared: LRU capacity for prepared algorithm instances (each may
        hold an index; bound this by available memory).
    max_results: LRU capacity for cached query results (small objects).
    """

    def __init__(self, *, max_prepared: int = 16, max_results: int = 256) -> None:
        self._prepared = _LRU(max_prepared)
        self._results = _LRU(max_results)
        self._fingerprints: dict[int, tuple[weakref.ref, str]] = {}
        self.stats = EngineStats()

    # -- identity -----------------------------------------------------------

    def fingerprint(self, dataset) -> str:
        """Fingerprint with per-instance memoisation (datasets are immutable).

        The memo is keyed by ``id()`` but guarded by a weak reference to
        the instance: CPython recycles ids of freed objects, so a bare id
        hit could otherwise serve a *different* dataset's fingerprint (and
        through it, another dataset's cached answers).
        """
        key = id(dataset)
        entry = self._fingerprints.get(key)
        if entry is not None and entry[0]() is dataset:
            return entry[1]
        fingerprint = dataset_fingerprint(dataset)
        # Bound the memo so long-lived engines can't grow unboundedly over
        # throwaway datasets.
        if len(self._fingerprints) >= 4 * self._prepared.capacity:
            self._fingerprints.clear()
        self._fingerprints[key] = (weakref.ref(dataset), fingerprint)
        return fingerprint

    # -- planning -----------------------------------------------------------

    def prepared_algorithms(self, dataset) -> tuple[str, ...]:
        """Names of algorithms already prepared for *dataset* in this session."""
        fingerprint = self.fingerprint(dataset)
        return tuple(
            sorted({key[1] for key in self._prepared.keys() if key[0] == fingerprint})
        )

    def plan(self, dataset, k: int, *, repeats: int = 1) -> QueryPlan:
        """Cost-based plan for one query, aware of this session's caches."""
        return plan_query(
            dataset, k, prepared=self.prepared_algorithms(dataset), repeats=repeats
        )

    # -- execution ----------------------------------------------------------

    def prepared(self, dataset, algorithm: str, **options):
        """Fetch (or build and cache) a prepared algorithm instance."""
        from ..core.query import make_algorithm  # deferred: core imports the engine

        fingerprint = self.fingerprint(dataset)
        key = (fingerprint, algorithm.lower(), _options_key(options))
        instance = self._prepared.get(key)
        if instance is not None:
            self.stats.prepared_hits += 1
            return instance
        self.stats.prepared_misses += 1
        instance = make_algorithm(dataset, algorithm, **options).prepare()
        self.stats.evictions += self._prepared.put(key, instance)
        return instance

    def query(
        self,
        dataset,
        k: int,
        *,
        algorithm: str = "auto",
        tie_break: str = "index",
        rng=None,
        repeats: int = 1,
        **options,
    ):
        """Answer one TKD query through the session caches.

        ``algorithm="auto"`` resolves through :meth:`plan` (crediting
        already-prepared structures); any explicit name behaves like
        :func:`~repro.core.query.top_k_dominating` but with reuse.
        """
        self.stats.queries += 1
        if algorithm.lower() == "auto":
            from ..core.query import ALGORITHMS  # deferred: core imports the engine

            plan = self.plan(dataset, k, repeats=repeats)
            algorithm = plan.algorithm
            # Keep only the options the planned algorithm understands (the
            # caller may have passed options meant for another family).
            options = supported_options(ALGORITHMS[algorithm], merge_plan_options(plan, options))

        cacheable = tie_break == "index"
        result_key = None
        if cacheable:
            result_key = (
                self.fingerprint(dataset),
                int(k),
                algorithm.lower(),
                _options_key(options),
            )
            cached = self._results.get(result_key)
            if cached is not None:
                self.stats.result_hits += 1
                return cached
            self.stats.result_misses += 1

        instance = self.prepared(dataset, algorithm, **options)
        result = instance.query(k, tie_break=tie_break, rng=rng)
        if cacheable:
            self.stats.evictions += self._results.put(result_key, result)
        return result

    def query_many(self, requests: Iterable, *, algorithm: str = "auto", **common_options):
        """Answer a batch of queries against shared preparations.

        Each request is ``(dataset, k)``, ``(dataset, k, algorithm)`` or a
        dict with ``dataset``/``k`` and optional ``algorithm``/``options``.
        The expected repeat count handed to the planner is the batch size,
        so index builds amortised across the sweep are priced as such.
        """
        materialised = [self._coerce_request(req, algorithm) for req in requests]
        repeats = max(len(materialised), 1)
        return [
            self.query(
                dataset,
                k,
                algorithm=request_algorithm,
                repeats=repeats,
                **{**common_options, **request_options},
            )
            for dataset, k, request_algorithm, request_options in materialised
        ]

    @staticmethod
    def _coerce_request(request, default_algorithm: str):
        if isinstance(request, dict):
            try:
                dataset, k = request["dataset"], request["k"]
            except KeyError as missing:
                raise InvalidParameterError(
                    f"query_many dict requests need 'dataset' and 'k'; missing {missing}"
                ) from None
            return (
                dataset,
                k,
                request.get("algorithm", default_algorithm),
                dict(request.get("options", {})),
            )
        if (
            isinstance(request, Sequence)
            and not isinstance(request, (str, bytes))
            and 2 <= len(request) <= 3
        ):
            dataset, k = request[0], request[1]
            request_algorithm = request[2] if len(request) == 3 else default_algorithm
            return dataset, k, request_algorithm, {}
        raise InvalidParameterError(
            "query_many requests must be (dataset, k[, algorithm]) tuples or dicts"
        )

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Drop all cached preparations, results and fingerprints."""
        self._prepared.clear()
        self._results.clear()
        self._fingerprints.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryEngine prepared={len(self._prepared)}/{self._prepared.capacity} "
            f"results={len(self._results)}/{self._results.capacity}>"
        )
