"""A reusable query session: prepared-structure and result caching.

The paper charges preprocessing (Table 3) separately from query time
(Figs. 12–17) precisely because one preparation serves many queries — but
the seed API rebuilt indexes and MaxScore queues on every
:func:`~repro.core.query.top_k_dominating` call. :class:`QueryEngine` is
the session object that makes the amortisation real:

* **dataset fingerprinting** — a content hash of the value matrix,
  observed masks and directions, so caching works across distinct
  :class:`~repro.core.dataset.IncompleteDataset` instances holding the
  same data (and never serves stale answers for different data);
* **prepared-structure cache** — one prepared
  :class:`~repro.core.base.TKDAlgorithm` per (dataset, algorithm,
  options), LRU-bounded; the planner is told which structures exist so
  ``algorithm="auto"`` prefers an index that is already paid for;
* **result cache** — an LRU over (dataset, k, algorithm, options)
  answering repeated queries in O(1) (deterministic tie-breaking only;
  ``tie_break="random"`` always executes);
* **prepared-dataset cache** — one :class:`~repro.engine.kernels.PreparedDataset`
  (lo/hi sentinel arrays, packed bitset tables, observed bitsets) per
  dataset fingerprint in a byte-budgeted LRU shared by every engine *and*
  by module-level kernel calls (``score_all``, ``dominance_matrix``, the
  MFD operator) through :func:`shared_prepared` — repeated full scans
  build their ``O(d·n²/8)`` tables once;
* **batch API** — :meth:`QueryEngine.query_many` runs a parametrised
  sweep (the Fig. 12–17 loops, a leaderboard's k-ladder) against shared
  preparations, optionally sharded across a process pool
  (``workers=N``) with results merged back into the result LRU;
* **persistent store** — an optional
  :class:`~repro.engine.store.PersistentStore` (``store=`` or the
  ``REPRO_CACHE_DIR`` environment variable) behind the result LRU, so
  warm answers, learned planner biases, prepared tables, and version
  lineage survive the process and are shared across concurrent
  processes (see :mod:`repro.engine.store`);
* **versioned updates** — :meth:`QueryEngine.apply_delta` (and the
  ``insert``/``delete``/``update`` wrappers) advance a dataset by a
  :class:`~repro.core.delta.DatasetDelta`: the cached
  :class:`~repro.engine.kernels.PreparedDataset` is patched (or
  compacted, per :func:`~repro.engine.planner.plan_delta`), the full
  score vector is maintained by adjusting affected objects only, and
  :meth:`query` answers maintained versions straight from it
  (``algorithm="incremental"``). :class:`ContinuousQuery`
  (:meth:`QueryEngine.continuous`) is the owned in-place fast path for
  streams.

Sessions and the shared caches are thread-safe; see the class docs for
the exact locking discipline.

Usage::

    engine = QueryEngine()
    for k in (4, 8, 16, 32, 64):
        result = engine.query(dataset, k)          # one preparation total
    results = engine.query_many([(dataset, 2), (dataset, 8)])
    results = engine.query_many(sweep, workers=4)  # process-pool sharding
    print(engine.stats.summary())
"""

from __future__ import annotations

import atexit
import os
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import InvalidParameterError
from ._lockcheck import make_lock
from .backend import SharedTables, select_backend, set_native_threads
from .kernels import (
    PreparedDataset,
    SentinelDelta,
    _bitset_table_bytes,
    dominated_counts,
    dominator_masks,
)
from .planner import (
    QueryPlan,
    apply_calibration_state,
    calibration_state,
    merge_plan_options,
    plan_delta,
    plan_query,
    record_observation,
    supported_options,
)
from .store import PersistentStore
from . import telemetry
from .telemetry import clock as _clock

__all__ = [
    "QueryEngine",
    "ContinuousQuery",
    "EngineStats",
    "PreparedDatasetCache",
    "dataset_fingerprint",
    "default_engine",
    "parse_memory_budget",
    "shared_prepared",
    "shutdown_pool",
]

#: Byte budget of the process-wide shared :class:`PreparedDatasetCache`.
_SHARED_CACHE_BUDGET_BYTES = 256 * 1024 * 1024

#: Cache-miss sentinel: ``None`` (or any falsy value) must be storable.
_MISSING = object()

#: Change-event window a :class:`ContinuousQuery` keeps for its cached
#: selections; entries older than the window fall back to an exact
#: re-rank (bounding memory on streams that are written but never read).
_MAX_PENDING_EVENTS = 64


def dataset_fingerprint(dataset) -> str:
    """Content hash identifying a dataset's query-relevant state.

    Two datasets with identical values, missing patterns and per-dimension
    directions produce identical TKD answers, so they share a fingerprint;
    ids/names are presentation-only and excluded deliberately.

    Values are canonicalised before hashing so bit-level float artefacts
    cannot split equal-answer datasets: ``-0.0`` compares equal to ``0.0``
    in every dominance test (adding ``0.0`` maps it to ``+0.0``), and
    missing cells are re-stamped with one canonical NaN (their stored
    payload bits are meaningless — only the observed mask matters).

    :class:`~repro.core.dataset.IncompleteDataset` instances answer
    through their own :meth:`~repro.core.dataset.IncompleteDataset.fingerprint`
    — memoised, and *lineage-derived* for versions produced by
    ``apply_delta`` (``H(parent, delta)`` instead of a full rehash), which
    is what keys the whole cache hierarchy per version. Duck-typed
    stand-ins fall back to the full content hash.
    """
    method = getattr(dataset, "fingerprint", None)
    if callable(method):
        return method()
    from ..core.dataset import content_fingerprint  # deferred: core imports the engine

    return content_fingerprint(dataset)


def parse_memory_budget(value) -> int | None:
    """Parse a memory budget: bytes, or a string with a K/M/G/T suffix.

    Accepts ``None`` (no budget), a number of bytes, or strings such as
    ``"512M"``, ``"2G"``, ``"1048576"``. This is the one parser behind
    ``QueryEngine(memory_budget=...)``, the ``REPRO_MEMORY_BUDGET``
    environment variable and the CLI ``--memory-budget`` flag.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise InvalidParameterError(f"memory budget must be bytes or a size string, got {value!r}")
    if isinstance(value, (int, float)):
        budget = int(value)
    else:
        text = str(value).strip()
        scale = 1
        suffixes = {"K": 1024, "M": 1024**2, "G": 1024**3, "T": 1024**4}
        if text and text[-1].upper() in suffixes:
            scale = suffixes[text[-1].upper()]
            text = text[:-1].strip()
        try:
            budget = int(float(text) * scale)
        except ValueError:
            raise InvalidParameterError(
                f"memory budget must be bytes or a size string like '512M', got {value!r}"
            ) from None
    if budget <= 0:
        raise InvalidParameterError(f"memory budget must be >= 1 byte, got {value!r}")
    return budget


def _freeze(value):
    """Make an options value hashable for cache keys."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        return tuple(_freeze(v) for v in value)
    if hasattr(value, "tolist"):  # numpy scalars/arrays
        return _freeze(value.tolist())
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def _options_key(options: dict) -> tuple:
    return tuple(sorted((name, _freeze(value)) for name, value in options.items()))


@dataclass
class EngineStats:
    """Cache-effectiveness counters of one :class:`QueryEngine`."""

    queries: int = 0
    result_hits: int = 0
    result_misses: int = 0
    prepared_hits: int = 0
    prepared_misses: int = 0
    evictions: int = 0
    #: Warm answers served from / written to the persistent store.
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0
    #: Versioned-update counters: deltas applied through this session,
    #: split by how the prepared tables advanced (spliced vs rebuilt).
    deltas_applied: int = 0
    tables_patched: int = 0
    tables_rebuilt: int = 0
    #: Queries answered straight from incrementally maintained scores.
    incremental_hits: int = 0
    #: Prepared structures warm-started from the persistent store.
    prepared_loaded: int = 0
    #: Prepared structures reconstructed by patching a stored *ancestor*
    #: forward through lineage delta payloads (no exact version on disk).
    prepared_patched_forward: int = 0
    #: Queries answered through the two-phase partitioned protocol.
    partitioned_queries: int = 0
    #: Partitioned queries that ran out-of-core (spilled shard tables).
    spilled_queries: int = 0
    #: Planner-triggered shard rebalances (adaptive repartitioner).
    repartitions: int = 0
    #: Gauge: max(shard sizes)/mean(shard sizes) of the most recently
    #: touched partitioned view — the repartitioner's trigger signal.
    partition_imbalance: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Result-cache hit rate over all answered queries (0 when idle)."""
        answered = self.result_hits + self.result_misses
        return self.result_hits / answered if answered else 0.0

    def merge(self, other: "EngineStats") -> None:
        """Fold another engine's counters in (used by parallel query_many)."""
        self.queries += other.queries
        self.result_hits += other.result_hits
        self.result_misses += other.result_misses
        self.prepared_hits += other.prepared_hits
        self.prepared_misses += other.prepared_misses
        self.evictions += other.evictions
        self.store_hits += other.store_hits
        self.store_misses += other.store_misses
        self.store_writes += other.store_writes
        self.deltas_applied += other.deltas_applied
        self.tables_patched += other.tables_patched
        self.tables_rebuilt += other.tables_rebuilt
        self.incremental_hits += other.incremental_hits
        self.prepared_loaded += other.prepared_loaded
        self.prepared_patched_forward += other.prepared_patched_forward
        self.partitioned_queries += other.partitioned_queries
        self.spilled_queries += other.spilled_queries
        self.repartitions += other.repartitions
        # A gauge, not a counter: keep the worst skew either side saw.
        self.partition_imbalance = max(self.partition_imbalance, other.partition_imbalance)

    def summary(self) -> str:
        text = (
            f"engine: {self.queries} queries, "
            f"results {self.result_hits}/{self.result_hits + self.result_misses} cached "
            f"({self.hit_rate:.0%}), "
            f"prepared reused {self.prepared_hits}x, evictions {self.evictions}"
        )
        if self.store_hits or self.store_misses or self.store_writes:
            text += (
                f", store {self.store_hits}/{self.store_hits + self.store_misses} warm"
                f" ({self.store_writes} written)"
            )
        if self.deltas_applied:
            text += (
                f", deltas {self.deltas_applied}"
                f" ({self.tables_patched} patched / {self.tables_rebuilt} rebuilt"
                f", {self.incremental_hits} incremental answers)"
            )
        if self.prepared_loaded:
            text += f", prepared warm-started {self.prepared_loaded}x"
        if self.prepared_patched_forward:
            text += f", patched forward {self.prepared_patched_forward}x"
        if self.partitioned_queries:
            text += f", partitioned {self.partitioned_queries}"
            if self.spilled_queries:
                text += f" ({self.spilled_queries} out-of-core)"
            text += f", imbalance {self.partition_imbalance:.2f}"
        if self.repartitions:
            text += f", repartitions {self.repartitions}"
        return text


class _LRU:
    """Minimal ordered-dict LRU used for both engine caches.

    Lookups distinguish "absent" from "stored a falsy value" through a
    private sentinel, so ``None``/``0``/``[]`` are first-class cache
    values and still refresh recency on access.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise InvalidParameterError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key, default=None):
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> int:
        """Insert and return how many entries were evicted (0 or 1)."""
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            return 1
        return 0

    def keys(self):
        return list(self._data.keys())

    def clear(self) -> None:
        self._data.clear()


class PreparedDatasetCache:
    """Fingerprint-keyed, byte-budgeted LRU of :class:`PreparedDataset`.

    Entries are content-addressed (the dataset fingerprint), so the cache
    is safe to share across engines and with module-level kernel calls —
    equal-content datasets reuse one entry, different content can never
    collide. The budget is enforced against the entries' *current*,
    identity-deduplicated footprint on every access (arrays shared by
    copy-on-write delta chains are charged once — see
    :attr:`total_bytes`): a `PreparedDataset` grows when its lazy
    bitset tables are built, and the next access sheds entries until the
    total fits again. Eviction is *cost-aware*: among every entry but the
    most recently used, the lowest measured rebuild-seconds-per-byte goes
    first (ties fall back to least-recently-used order), so cheap
    sentinel-only entries yield before an expensive ``O(d·n²/64)`` table
    build. A single entry larger than the whole budget is kept (evicting
    it would only thrash rebuilds).

    All methods are thread-safe: the process-wide shared instance is hit
    by every engine *and* by module-level kernel calls, possibly from
    many server threads at once.
    """

    def __init__(self, max_bytes: int = _SHARED_CACHE_BUDGET_BYTES) -> None:
        if max_bytes <= 0:
            raise InvalidParameterError(f"cache budget must be >= 1 byte, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._data: OrderedDict[str, PreparedDataset] = OrderedDict()
        #: Resident set of *memory-mapped* spilled-shard entries, budgeted
        #: separately from :attr:`max_bytes` — their pages are file-backed
        #: and clean, so "evict" means "drop the mapping", never
        #: "recompute the tables" (see :meth:`attach_spilled`).
        self._resident: OrderedDict[str, tuple[PreparedDataset, int]] = OrderedDict()
        self._lock = make_lock("cache")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.resident_hits = 0
        self.resident_misses = 0
        self.resident_evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._data

    @property
    def total_bytes(self) -> int:
        """Current footprint of all entries (lazy tables included).

        Identity-deduplicated: copy-on-write delta chains share every
        untouched table array between parent and child entries, and a
        budget that summed per-entry ``nbytes`` double-counted them —
        evicting long version histories the process could easily afford.
        An array (or the base of a view) held by several entries is
        charged once.
        """
        with self._lock:
            return self._total_bytes()

    def _total_bytes(self) -> int:
        seen: set[int] = set()
        total = 0
        for entry in self._data.values():
            for array in entry.storage_arrays():
                base = array.base if array.base is not None else array
                key = id(base)
                if key not in seen:
                    seen.add(key)
                    total += base.nbytes
        return total

    def get_or_create(self, dataset, fingerprint: str) -> PreparedDataset:
        """Fetch the entry for *fingerprint*, building it on first sight.

        The (cheap, sentinel-only) build happens under the cache lock so
        racing threads can never install two entries for one fingerprint;
        the expensive lazy tables build later, under the entry's own lock.
        """
        with self._lock:
            entry = self._data.get(fingerprint)
            if entry is not None:
                self._data.move_to_end(fingerprint)
                self.hits += 1
            else:
                entry = PreparedDataset(dataset)
                self._data[fingerprint] = entry
                self.misses += 1
            self._enforce()
            return entry

    def peek(self, fingerprint: str) -> PreparedDataset | None:
        """The entry for *fingerprint* if present — no build, no counters.

        Refreshes recency (a peeked parent is an active delta chain's
        base and must not be the next eviction victim) but leaves the
        hit/miss counters alone.
        """
        with self._lock:
            entry = self._data.get(fingerprint)
            if entry is not None:
                self._data.move_to_end(fingerprint)
            return entry

    def put(self, fingerprint: str, prepared: PreparedDataset) -> None:
        """Install an externally built entry (patched child, store load)."""
        with self._lock:
            self._data[fingerprint] = prepared
            self._data.move_to_end(fingerprint)
            self._enforce()

    # -- resident set of memory-mapped spilled shards -----------------------

    def attach_spilled(
        self, fingerprint: str, loader, *, max_resident_bytes: int
    ) -> PreparedDataset:
        """The resident-set manager of out-of-core partitioned execution.

        Returns the mmap-attached :class:`PreparedDataset` for a spilled
        shard, attaching through *loader* — a zero-argument callable
        returning ``(prepared, nbytes)`` — on first touch. Entries are
        LRU-ordered under ``max_resident_bytes`` (the caller's memory
        budget): overflow drops the least recently used *mapping*, which
        releases its clean file-backed pages to the OS without losing any
        computed state — reattaching later is another lazy ``mmap``, not
        a table rebuild. The ``resident_hits`` / ``resident_misses`` /
        ``resident_evictions`` counters are what the out-of-core
        benchmark reports as the hit rate.
        """
        with self._lock:
            entry = self._resident.get(fingerprint)
            if entry is not None:
                self._resident.move_to_end(fingerprint)
                self.resident_hits += 1
                if telemetry.enabled():
                    telemetry.metrics().count("spill.attach.hit")
                return entry[0]
            self.resident_misses += 1
        # Load outside the lock: a miss may build + spill O(d·n²/64)
        # tables, which must not serialize every other cache user.
        with telemetry.trace("spill.attach") as span:
            prepared, nbytes = loader()
            span.set("bytes", int(nbytes))
        evicted = 0
        with self._lock:
            self._resident[fingerprint] = (prepared, int(nbytes))
            self._resident.move_to_end(fingerprint)
            while (
                len(self._resident) > 1
                and sum(entry[1] for entry in self._resident.values()) > max_resident_bytes
            ):
                self._resident.popitem(last=False)
                self.resident_evictions += 1
                evicted += 1
        if telemetry.enabled():
            registry = telemetry.metrics()
            registry.count("spill.attach.miss")
            if evicted:
                registry.count("spill.evict", evicted)
        return prepared

    @property
    def resident_bytes(self) -> int:
        """Mapped footprint of the spilled-shard resident set."""
        with self._lock:
            return sum(entry[1] for entry in self._resident.values())

    @property
    def resident_hit_rate(self) -> float:
        with self._lock:
            touches = self.resident_hits + self.resident_misses
            return self.resident_hits / touches if touches else 0.0

    def drop_spilled(self) -> None:
        """Release every mapped spilled-shard entry (counters kept)."""
        with self._lock:
            self._resident.clear()

    def _enforce(self) -> None:
        while len(self._data) > 1 and self._total_bytes() > self.max_bytes:
            # Spare the most recently used entry (the caller is about to
            # use it); evict the cheapest rebuild-per-byte among the rest.
            # min() keeps the first — least recently used — entry on ties.
            victims = list(self._data.items())[:-1]
            victim = min(victims, key=lambda kv: kv[1].rebuild_cost_per_byte)[0]
            del self._data[victim]
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/eviction counters.

        Counters describe the current entry population; carrying them
        across a clear made post-clear hit rates unreadable.
        """
        with self._lock:
            self._data.clear()
            self._resident.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.resident_hits = 0
            self.resident_misses = 0
            self.resident_evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"<PreparedDatasetCache entries={len(self._data)} "
                f"bytes={self.total_bytes}/{self.max_bytes}>"
            )


#: Cap on the shared process pool: pool workers are heavyweight (numpy
#: import, their own prepared caches), so larger batches queue instead.
_POOL_MAX_WORKERS = 8

_pool: ProcessPoolExecutor | None = None
_pool_size = 0
_pool_lock = make_lock("pool", reentrant=False)


def _process_pool(workers: int) -> ProcessPoolExecutor:
    """The lazily built process pool shared by every parallel route.

    One pool serves repeated :meth:`QueryEngine.query_many` sweeps *and*
    partitioned phase-1 fan-outs across calls, so worker spawn + import
    cost is paid once per process instead of once per batch — and worker
    affinity makes the workers' own prepared/shard caches effective
    across queries. Size-capped; a request larger than the current pool
    grows it (recreate), a broken pool is replaced transparently.
    """
    global _pool, _pool_size
    wanted = max(1, min(int(workers), _POOL_MAX_WORKERS))
    with _pool_lock:
        broken = _pool is not None and getattr(_pool, "_broken", False)
        if _pool is None or broken or _pool_size < wanted:
            if _pool is not None:
                _pool.shutdown(wait=False, cancel_futures=True)
            _pool = ProcessPoolExecutor(max_workers=wanted)
            _pool_size = wanted
        return _pool


def shutdown_pool(*, wait: bool = True) -> None:
    """Shut the shared process pool down (explicit; also runs atexit)."""
    global _pool, _pool_size
    with _pool_lock:
        pool, _pool = _pool, None
        _pool_size = 0
    if pool is not None:
        pool.shutdown(wait=wait, cancel_futures=True)


atexit.register(shutdown_pool)


#: The process-wide prepared-dataset cache every engine defaults to.
_shared_dataset_cache = PreparedDatasetCache()

#: Lazily created engine behind the module-level kernel shim.
_default_engine: "QueryEngine | None" = None


def default_engine() -> "QueryEngine":
    """The session serving module-level calls (one per process, lazy)."""
    global _default_engine
    if _default_engine is None:
        _default_engine = QueryEngine()
    return _default_engine


def shared_prepared(dataset) -> PreparedDataset:
    """Module-level shim: prepared kernel inputs from the default session.

    :func:`repro.engine.kernels._shared_prepared` calls this so that
    one-shot APIs (``score_all``, ``dominance_matrix``, ``mfd_scores``)
    hit the same fingerprint-keyed cache a :class:`QueryEngine` fills.
    """
    return default_engine().prepare_dataset(dataset)


class QueryEngine:
    """A session that amortises preparation and caching across TKD queries.

    Parameters
    ----------
    max_prepared: LRU capacity for prepared algorithm instances (each may
        hold an index; bound this by available memory).
    max_results: LRU capacity for cached query results (small objects).
    dataset_cache: the :class:`PreparedDatasetCache` serving kernel-level
        structures; defaults to the process-wide shared cache so engines
        and module-level calls reuse one set of bitset tables. Pass a
        private instance to isolate (or differently budget) a session.
    store: a :class:`~repro.engine.store.PersistentStore` (or a directory
        path for one) that makes result caching and planner calibration
        survive the process. Defaults to the ``REPRO_CACHE_DIR``
        environment variable when set, else no persistence. Opening a
        store loads its persisted planner biases into this process.
    backend: kernel backend to select — ``"numpy"``, ``"native"`` or
        ``"auto"`` (:mod:`repro.engine.backend`). Selection is
        **process-wide** (the kernels layer and the shared prepared cache
        are process-global); backends are bit-identical, so this only
        affects speed. ``None`` (default) leaves the current selection
        (itself resolved from ``REPRO_BACKEND``, default ``auto``) alone.
    native_threads: in-process pthread count the native kernels may
        split one accumulator/foreign-count pass over — an int,
        ``"auto"`` (CPU count, capped at 16) or ``None`` (default: leave
        the current setting, itself seeded from
        ``REPRO_NATIVE_THREADS``). Process-wide like ``backend``; row
        blocks write disjoint output ranges, so any thread count is
        bit-identical. A no-op when the native backend is unavailable.
    memory_budget: resident-set byte budget for partitioned queries —
        bytes, or a size string (``"512M"``, ``"2G"``; see
        :func:`parse_memory_budget`). When a partitioned query's total
        shard-table footprint exceeds it, execution goes out-of-core:
        shard tables are spilled to memory-mapped store files and only a
        budget-bounded resident set stays attached at once (answers stay
        bit-identical). Defaults to the ``REPRO_MEMORY_BUDGET``
        environment variable when set, else unlimited. Spills land in
        :attr:`store` when one is configured, else in a private
        temporary directory cleaned up with the engine.
    trace: turn hierarchical span tracing on (``True``) or off
        (``False``) — see :mod:`repro.engine.telemetry`. Process-wide
        like ``backend`` (and shared with the ``REPRO_TRACE``
        environment variable and the CLI ``--trace`` flag); ``None``
        (default) leaves the current setting alone. Tracing never
        changes answers, only records where the time went.

    Sessions are thread-safe: one internal lock guards the caches, the
    fingerprint memo and the stats counters, and is *released* while an
    algorithm executes so concurrent queries still run in parallel.
    """

    def __init__(
        self,
        *,
        max_prepared: int = 16,
        max_results: int = 256,
        dataset_cache: PreparedDatasetCache | None = None,
        store: "PersistentStore | str | Path | None" = None,
        backend: str | None = None,
        native_threads: "int | str | None" = None,
        memory_budget: "int | str | None" = None,
        trace: "bool | None" = None,
    ) -> None:
        if trace is not None:
            # Process-wide like ``backend``: one query flows through
            # module-level kernels and pool workers, so a session-scoped
            # flag could only ever trace fragments of it.
            telemetry.set_enabled(trace)
        self._backend = select_backend(backend) if backend is not None else None
        if native_threads is not None:
            set_native_threads(native_threads)
        self._prepared = _LRU(max_prepared)
        self._results = _LRU(max_results)
        #: Incrementally maintained full score vectors, per fingerprint —
        #: what the "incremental" query route answers from. Bounded: one
        #: int64 vector per live version.
        self._scores = _LRU(max(4 * max_prepared, 32))
        self._dataset_cache = _shared_dataset_cache if dataset_cache is None else dataset_cache
        #: Partitioned views per dataset fingerprint, advanced by deltas.
        self._partitioned = _LRU(8)
        self._fingerprints: dict[int, tuple[weakref.ref, str]] = {}
        self._lock = make_lock("engine")
        #: Store writes buffered while a batch is in flight (query_many
        #: flushes them in one lock + atomic rewrite instead of N).
        self._store_pending: list[dict] = []
        self._defer_store_writes = False
        self.stats = EngineStats()
        if store is None:
            env_dir = os.environ.get("REPRO_CACHE_DIR")
            store = env_dir if env_dir else None
        if isinstance(store, (str, Path)):
            store = PersistentStore(store)
        self._store = store
        if memory_budget is None:
            memory_budget = os.environ.get("REPRO_MEMORY_BUDGET") or None
        self.memory_budget = parse_memory_budget(memory_budget)
        #: Lazily created private spill store for engines without a
        #: persistent one; its directory dies with the engine.
        self._ephemeral_spill: "PersistentStore | None" = None
        self._ephemeral_spill_cleanup = None
        if self._store is not None:
            state = self._store.load_planner()
            if state:
                apply_calibration_state(state)

    @property
    def dataset_cache(self) -> PreparedDatasetCache:
        """The prepared-dataset cache this session reads and fills."""
        return self._dataset_cache

    @property
    def store(self) -> "PersistentStore | None":
        """The persistent store this session reads and fills (if any)."""
        return self._store

    def _spill_store(self) -> PersistentStore:
        """Where out-of-core shard tables spill.

        The configured :attr:`store` when present (spills then persist
        and warm-start future processes); otherwise a private temporary
        directory, removed when the engine is garbage-collected (and by
        an atexit net — a crashed process must not strand gigabytes).
        """
        if self._store is not None:
            return self._store
        if self._ephemeral_spill is None:
            import shutil
            import tempfile

            spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
            self._ephemeral_spill = PersistentStore(spill_dir)
            self._ephemeral_spill_cleanup = weakref.finalize(
                self, shutil.rmtree, spill_dir, ignore_errors=True
            )
        return self._ephemeral_spill

    # -- identity -----------------------------------------------------------

    def fingerprint(self, dataset) -> str:
        """Fingerprint with per-instance memoisation (datasets are immutable).

        The memo is keyed by ``id()`` but guarded by a weak reference to
        the instance: CPython recycles ids of freed objects, so a bare id
        hit could otherwise serve a *different* dataset's fingerprint (and
        through it, another dataset's cached answers).
        """
        key = id(dataset)
        with self._lock:
            entry = self._fingerprints.get(key)
            if entry is not None and entry[0]() is dataset:
                return entry[1]
        # Hash outside the lock: O(n·d) work must not serialize sessions.
        with telemetry.trace("engine.fingerprint") as span:
            span.set("n", dataset.n).set("d", dataset.d)
            fingerprint = dataset_fingerprint(dataset)
        with self._lock:
            # Bound the memo so long-lived engines can't grow unboundedly
            # over throwaway datasets.
            if len(self._fingerprints) >= 4 * self._prepared.capacity:
                self._fingerprints.clear()
            self._fingerprints[key] = (weakref.ref(dataset), fingerprint)
        return fingerprint

    # -- planning -----------------------------------------------------------

    def prepared_algorithms(self, dataset) -> tuple[str, ...]:
        """Names of algorithms already prepared for *dataset* in this session."""
        fingerprint = self.fingerprint(dataset)
        with self._lock:
            return tuple(
                sorted({key[1] for key in self._prepared.keys() if key[0] == fingerprint})
            )

    def plan(self, dataset, k: int, *, repeats: int = 1) -> QueryPlan:
        """Cost-based plan for one query, aware of this session's caches."""
        return plan_query(
            dataset, k, prepared=self.prepared_algorithms(dataset), repeats=repeats
        )

    # -- execution ----------------------------------------------------------

    def prepare_dataset(self, dataset) -> PreparedDataset:
        """Kernel-level prepared structures for *dataset*, cache-backed.

        Returns the fingerprint-keyed :class:`PreparedDataset` (lo/hi
        sentinels eagerly, bitset tables lazily) every kernel call on this
        dataset's content will reuse — including module-level calls, since
        the default cache is process-wide. With a :attr:`store`, a cache
        miss first tries the persisted tables
        (:meth:`persist_prepared` / ``PersistentStore.put_prepared``), so
        a fresh process warm-starts the ``O(d·n²/64)`` build from disk —
        and when only an *ancestor* version is stored, the lineage
        records' embedded delta payloads patch it forward to this version
        (``stats.prepared_patched_forward``).
        """
        fingerprint = self.fingerprint(dataset)
        if self._store is not None and self._dataset_cache.peek(fingerprint) is None:
            loaded = self._store.get_prepared(fingerprint)
            counter = "prepared_loaded"
            if loaded is None:
                loaded = self._patch_forward_from_store(dataset, fingerprint)
                counter = "prepared_patched_forward"
            if loaded is not None:
                self._dataset_cache.put(fingerprint, loaded)
                with self._lock:
                    setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        return self._dataset_cache.get_or_create(dataset, fingerprint)

    #: Longest stored-ancestor delta chain worth replaying; beyond this a
    #: cold rebuild is usually cheaper than the accumulated splices.
    _MAX_PATCH_FORWARD = 16

    def _patch_forward_from_store(self, dataset, fingerprint: str):
        """Rebuild *fingerprint*'s prepared state from a stored ancestor.

        Walks the store's lineage records child-first; the first ancestor
        with persisted tables — reachable through records that all embed
        their delta payload — is loaded and patched forward, one
        :meth:`PreparedDataset.patched` splice per recorded delta.
        Returns ``None`` when no such ancestor exists (or the chain is
        broken, too deep, or inconsistent).
        """
        from ..core.delta import DatasetDelta  # deferred: core imports the engine

        chain = self._store.resolve_lineage(fingerprint)
        payloads: list[dict] = []
        base = None
        for record in chain[: self._MAX_PATCH_FORWARD]:
            payload = record.get("payload")
            if not isinstance(payload, dict):
                return None  # a payload-free link: cannot patch through it
            payloads.append(payload)
            base = self._store.get_prepared(record.get("parent", ""))
            if base is not None:
                break
        if base is None:
            return None
        prepared = base
        try:
            for payload in reversed(payloads):
                delta = DatasetDelta.from_payload(payload)
                prepared = prepared.patched(
                    SentinelDelta.from_delta(delta, dataset.directions)
                )
        except (KeyError, ValueError, TypeError, InvalidParameterError):
            return None  # hand-edited or stale records must never break queries
        if prepared.n != dataset.n or prepared.d != dataset.d:
            return None
        return prepared

    def persist_prepared(self, dataset, *, warm: bool = True) -> PreparedDataset:
        """Write *dataset*'s prepared structures to the persistent store.

        With ``warm=True`` (default) the packed bitset tables are built
        first, so the stored entry saves a fresh process the whole table
        build, not just the sentinels. Requires a :attr:`store`.
        """
        if self._store is None:
            raise InvalidParameterError(
                "persist_prepared needs a store; pass QueryEngine(store=...) "
                "or set REPRO_CACHE_DIR"
            )
        prepared = self.prepare_dataset(dataset)
        if warm:
            prepared.tables(build=True)
        self._store.put_prepared(self.fingerprint(dataset), prepared)
        return prepared

    # -- versioned updates --------------------------------------------------

    def apply_delta(self, dataset, delta):
        """Advance *dataset* by one insert/delete/update batch, incrementally.

        Returns the child :class:`~repro.core.dataset.IncompleteDataset`
        version. Everything this session knows about the parent advances
        with it instead of being invalidated:

        * a cached :class:`PreparedDataset` is **patched** (tables
          spliced, deletions tombstoned) or — when
          :func:`~repro.engine.planner.plan_delta` says the tombstone
          debt or delta size warrants it — compacted by one rebuild;
        * a maintained score vector is advanced by adjusting the
          dominated counts of affected objects only (see
          :meth:`scores`), which is what lets :meth:`query` answer the
          child version without running any algorithm;
        * with a :attr:`store`, the child's fingerprint lineage is
          recorded so delta chains resolve to stored results across
          processes.
        """
        if delta.is_empty:
            return dataset
        child = dataset.apply_delta(delta)
        parent_fp = self.fingerprint(dataset)
        child_fp = self.fingerprint(child)
        with self._lock:
            self.stats.deltas_applied += 1
            parent_scores = self._scores.get(parent_fp, _MISSING)
        if parent_scores is _MISSING or len(parent_scores) != dataset.n:
            parent_scores = None

        parent_prepared = self._dataset_cache.peek(parent_fp)
        child_prepared = None
        rebates = None
        if parent_scores is not None and parent_prepared is None:
            # The parent's structures were evicted: maintaining the score
            # vector would silently rebuild full prepared state through
            # the module-level shim — in the *global* cache, not this
            # session's. Drop maintenance; the next query recomputes
            # exactly (and re-seeds) through scores().
            parent_scores = None
        if parent_scores is not None:
            # Parent-space mask work must read the parent's structures
            # before any (even copy-on-write) patching bookkeeping.
            rebates = _score_rebates(dataset, parent_prepared, delta)
        if parent_prepared is not None:
            ops = delta.ops
            plan = plan_delta(
                parent_prepared.storage_n,
                parent_prepared.d,
                inserts=ops["inserts"],
                deletes=ops["deletes"],
                updates=ops["updates"],
                tombstones=parent_prepared.tombstones,
                tables_ready=parent_prepared.tables_ready,
            )
            if plan.action == "patch":
                child_prepared = parent_prepared.patched(
                    SentinelDelta.from_delta(delta, dataset.directions)
                )
                with self._lock:
                    self.stats.tables_patched += 1
            else:
                child_prepared = PreparedDataset(child)
                if parent_prepared.tables_ready:
                    child_prepared.tables(build=True)
                with self._lock:
                    self.stats.tables_rebuilt += 1
            self._dataset_cache.put(child_fp, child_prepared)

        if parent_scores is not None:
            child_scores, _changed = _advance_scores(
                rebates, parent_scores, child, child_prepared, delta
            )
            with self._lock:
                self._scores.put(child_fp, child_scores)

        if self._store is not None:
            from .store import MAX_LINEAGE_PAYLOAD_CELLS

            payload = delta.payload() if delta.cells <= MAX_LINEAGE_PAYLOAD_CELLS else None
            self._store.record_lineage(
                child_fp, parent_fp, delta.digest(), delta.ops, payload=payload
            )

        # A maintained partitioned view advances with the version: the
        # delta routes to its owning shard(s) only, and each touched
        # shard's PreparedDataset is patched (or rebuilt) under the shard
        # child's own fingerprint — O(|delta|) per affected partition.
        with self._lock:
            view = self._partitioned.get(parent_fp, _MISSING)
        if view is not _MISSING:
            child_view, advanced = view.apply_delta(delta, child=child)
            for parent_shard, sub_delta, child_shard in advanced:
                self._advance_shard_prepared(parent_shard, sub_delta, child_shard)
            with self._lock:
                self._partitioned.put(child_fp, child_view)
                self.stats.partition_imbalance = float(child_view.imbalance)
        return child

    def _advance_shard_prepared(self, parent_shard, sub_delta, child_shard) -> None:
        """Patch one shard's cached PreparedDataset to its child version."""
        if child_shard is None:
            return  # shard emptied and dropped; its entries age out
        parent_prepared = self._dataset_cache.peek(self.fingerprint(parent_shard))
        if parent_prepared is None:
            return  # nothing cached to advance; next query rebuilds cold
        ops = sub_delta.ops
        plan = plan_delta(
            parent_prepared.storage_n,
            parent_prepared.d,
            inserts=ops["inserts"],
            deletes=ops["deletes"],
            updates=ops["updates"],
            tombstones=parent_prepared.tombstones,
            tables_ready=parent_prepared.tables_ready,
        )
        if plan.action == "patch":
            child_prepared = parent_prepared.patched(
                SentinelDelta.from_delta(sub_delta, parent_shard.directions)
            )
            with self._lock:
                self.stats.tables_patched += 1
        else:
            child_prepared = PreparedDataset(child_shard)
            if parent_prepared.tables_ready:
                child_prepared.tables(build=True)
            with self._lock:
                self.stats.tables_rebuilt += 1
        self._dataset_cache.put(self.fingerprint(child_shard), child_prepared)

    def insert(self, dataset, rows, *, ids: Sequence[str] | None = None):
        """New version with *rows* appended; see :meth:`apply_delta`."""
        from ..core.delta import DatasetDelta  # deferred: core imports the engine

        return self.apply_delta(dataset, DatasetDelta.inserting(dataset, rows, ids=ids))

    def delete(self, dataset, ids: Sequence[str]):
        """New version with the given objects removed; see :meth:`apply_delta`."""
        from ..core.delta import DatasetDelta

        return self.apply_delta(dataset, DatasetDelta.deleting(dataset, ids))

    def update(self, dataset, updates: Mapping[str, Sequence]):
        """New version with per-object replacements; see :meth:`apply_delta`."""
        from ..core.delta import DatasetDelta

        return self.apply_delta(dataset, DatasetDelta.updating(dataset, updates))

    def scores(self, dataset) -> np.ndarray:
        """The full dominated-count vector of *dataset*, maintained.

        Served from the incremental cache when :meth:`apply_delta` (or a
        :class:`ContinuousQuery`) has maintained it; computed exactly once
        otherwise — after which every delta keeps it current. Treat the
        returned array as read-only.
        """
        fingerprint = self.fingerprint(dataset)
        with self._lock:
            cached = self._scores.get(fingerprint, _MISSING)
        if cached is not _MISSING and len(cached) == dataset.n:
            return cached
        prepared = self.prepare_dataset(dataset)
        prepared.warm()
        computed = dominated_counts(dataset, prepared=prepared).astype(np.int64, copy=False)
        with self._lock:
            self._scores.put(fingerprint, computed)
        return computed

    def _adopt_scores(self, fingerprint: str, scores: np.ndarray) -> None:
        """Register a maintained score vector (ContinuousQuery hand-off)."""
        with self._lock:
            self._scores.put(fingerprint, scores)

    def continuous(self, dataset, *, k: int | None = None) -> "ContinuousQuery":
        """A continuously maintained top-k handle over a mutating dataset.

        The owned fast path for streaming workloads: one privately held
        prepared structure patched in place per delta, scores adjusted
        for affected objects only, and the cached top-``k`` selection
        refreshed without a full re-rank whenever the k-th boundary is
        provably unaffected. :class:`repro.core.streaming.StreamingTKD`
        is a thin facade over this.
        """
        return ContinuousQuery(self, dataset, k=k)

    def result_key(self, dataset, k: int, algorithm: str, **options) -> tuple:
        """The result-cache/store key of one deterministic query.

        Exposed so out-of-band writers (the experiment harness) can
        address the same persistent entries :meth:`query` reads.
        """
        return (
            self.fingerprint(dataset),
            int(k),
            algorithm.lower(),
            _options_key(options),
        )

    def prepared(self, dataset, algorithm: str, **options):
        """Fetch (or build and cache) a prepared algorithm instance."""
        from ..core.query import make_algorithm  # deferred: core imports the engine

        fingerprint = self.fingerprint(dataset)
        key = (fingerprint, algorithm.lower(), _options_key(options))
        with self._lock:
            instance = self._prepared.get(key, _MISSING)
            if instance is not _MISSING:
                self.stats.prepared_hits += 1
                return instance
            self.stats.prepared_misses += 1
        # Build outside the lock: preparation may cost seconds and must
        # not block other sessions' threads. A racing thread may build the
        # same instance twice; both are valid and the last put wins.
        instance = make_algorithm(dataset, algorithm, **options).prepare()
        with self._lock:
            self.stats.evictions += self._prepared.put(key, instance)
        return instance

    def query(
        self,
        dataset,
        k: int,
        *,
        algorithm: str = "auto",
        tie_break: str = "index",
        rng=None,
        repeats: int = 1,
        partitions: "int | str | None" = None,
        workers: int | None = None,
        **options,
    ):
        """Answer one TKD query through the session caches.

        ``algorithm="auto"`` resolves through :meth:`plan` (crediting
        already-prepared structures); any explicit name behaves like
        :func:`~repro.core.query.top_k_dominating` but with reuse.

        ``partitions=P`` (P ≥ 2) answers through the two-phase
        partitioned protocol (:mod:`repro.engine.partition`): the data is
        sharded, each shard prepared under its own cache/store key, and
        only phase-1 survivors are exchanged — bit-identical to the
        monolithic answer under deterministic tie-breaking.
        ``partitions="auto"`` lets :func:`~repro.engine.planner.plan_partitioned`
        price the protocol against the best monolithic algorithm first.
        ``workers=N`` fans the shards out over a process pool (requires
        ``partitions``; in-process otherwise).

        With a :attr:`store`, cacheable misses fall through to the
        persistent layer before executing anything, and computed answers
        are written back with their measured cost (feeding the store's
        cost-aware eviction).

        When this session has incrementally maintained scores for the
        dataset's version (:meth:`apply_delta`, :meth:`scores`,
        :class:`ContinuousQuery`), ``algorithm="auto"`` short-circuits to
        the **incremental** route: the answer is selected straight from
        the maintained vector, no algorithm executed. ``"incremental"``
        may also be requested explicitly; without maintained scores it
        computes them once (exact fallback) and maintains them from then
        on.
        """
        if partitions is not None:
            return self._query_partitioned(
                dataset, k, partitions=partitions, workers=workers, tie_break=tie_break, rng=rng
            )
        if workers is not None:
            raise InvalidParameterError(
                "query(workers=N) needs partitions=; use query_many for batch sharding"
            )
        with telemetry.trace("engine.query") as root:
            root.set("n", dataset.n).set("d", dataset.d).set("k", int(k))
            return self._query_monolithic(
                dataset,
                k,
                root,
                algorithm=algorithm,
                tie_break=tie_break,
                rng=rng,
                repeats=repeats,
                options=options,
            )

    def _query_monolithic(
        self, dataset, k: int, root, *, algorithm, tie_break, rng, repeats, options
    ):
        """The single-process :meth:`query` body, inside the *root* span."""
        with self._lock:
            self.stats.queries += 1
        plan = None
        if algorithm.lower() == "auto":
            with self._lock:
                maintained = self._scores.get(self.fingerprint(dataset), _MISSING)
            if maintained is not _MISSING and len(maintained) == dataset.n:
                algorithm = "incremental"
            else:
                plan = self.plan(dataset, k, repeats=repeats)
                algorithm, options = self._apply_plan(plan, options)

        cacheable = tie_break == "index"
        result_key = None
        if cacheable:
            result_key = (
                self.fingerprint(dataset),
                int(k),
                algorithm.lower(),
                _options_key(options),
            )
            with self._lock:
                cached = self._results.get(result_key, _MISSING)
                if cached is not _MISSING:
                    self.stats.result_hits += 1
                    root.set("cache", "memory")
                    return cached
                self.stats.result_misses += 1
            if self._store is not None:
                with telemetry.trace("store.read"):
                    stored = self._store.get_result(*result_key)
                with self._lock:
                    if stored is not None:
                        self.stats.store_hits += 1
                        self.stats.evictions += self._results.put(result_key, stored)
                    else:
                        self.stats.store_misses += 1
                if stored is not None:
                    root.set("cache", "store")
                    return stored

        # Time preparation + query together: the plan's estimate charges
        # preparation exactly when this session has not prepared the
        # algorithm yet, so the observation must cover the same work.
        start = _clock()
        if algorithm.lower() == "incremental":
            with telemetry.trace("engine.execute") as span:
                span.set("algorithm", "incremental")
                result = self._incremental_result(dataset, k, tie_break=tie_break, rng=rng)
            with self._lock:
                self.stats.incremental_hits += 1
        else:
            with telemetry.trace("engine.prepare") as span:
                span.set("algorithm", algorithm.lower())
                instance = self.prepared(dataset, algorithm, **options)
            with telemetry.trace("engine.execute") as span:
                span.set("algorithm", algorithm.lower())
                result = instance.query(k, tie_break=tie_break, rng=rng)
        elapsed = _clock() - start
        root.set("algorithm", algorithm.lower())
        if telemetry.enabled():
            registry = telemetry.metrics()
            registry.count("engine.queries")
            registry.observe("engine.query_seconds", elapsed)
        if plan is not None:
            # Close the planner's loop: observed runtime vs modelled cost
            # nudges the per-algorithm bias for the rest of the process.
            record_observation(plan.algorithm, plan.estimated_seconds, elapsed)
            root.set("estimated_seconds", plan.estimated_seconds)
            root.set("measured_seconds", elapsed)
        if cacheable:
            with self._lock:
                self.stats.evictions += self._results.put(result_key, result)
            if self._store is not None:
                item = {
                    "fingerprint": result_key[0],
                    "k": result_key[1],
                    "algorithm": result_key[2],
                    "options_key": result_key[3],
                    "result": result,
                    "rebuild_seconds": elapsed,
                }
                with self._lock:
                    self.stats.store_writes += 1
                    deferred = self._defer_store_writes
                    if deferred:
                        self._store_pending.append(item)
                if not deferred:
                    with telemetry.trace("store.write"):
                        self._store.put_result(**item)
        return result

    def _query_partitioned(
        self, dataset, k: int, *, partitions, workers, tie_break: str, rng
    ):
        """The ``query(partitions=...)`` route: shard, bound, exchange.

        The partitioned view is cached per dataset fingerprint (and
        advanced by :meth:`apply_delta`), each shard's
        :class:`PreparedDataset` lives in the ordinary fingerprint-keyed
        caches, and results flow through the same result LRU / persistent
        store as every other deterministic query — a partitioned answer
        is bit-identical to the monolithic one, so they share entries.
        """
        from .planner import plan_partitioned

        if workers is not None and int(workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")

        if isinstance(partitions, str):
            if partitions.lower() != "auto":
                raise InvalidParameterError(
                    f"partitions must be an integer or 'auto', got {partitions!r}"
                )
            plan = plan_partitioned(
                dataset.n,
                dataset.d,
                dataset.missing_rate,
                k,
                workers=workers,
                memory_budget=self.memory_budget,
            )
            if plan.action != "partition":
                return self.query(dataset, k, tie_break=tie_break, rng=rng)
            partitions = plan.partitions
            # The plan may have priced a pool, but a pool is never
            # spawned unless the caller asked for one: "in-process
            # otherwise" holds for "auto" too (and keeps this safe to
            # call from daemonic workers that cannot fork children).

        with telemetry.trace("engine.query") as root:
            root.set("route", "partitioned").set("n", dataset.n).set("d", dataset.d)
            root.set("k", int(k))
            if workers is not None:
                root.set("workers", int(workers))
            return self._execute_partitioned(
                dataset,
                k,
                root,
                partitions=partitions,
                workers=workers,
                tie_break=tie_break,
                rng=rng,
            )

    def _execute_partitioned(
        self, dataset, k: int, root, *, partitions, workers, tie_break, rng
    ):
        """The partitioned :meth:`query` body, inside the *root* span."""
        from .partition import PartitionedDataset, execute_partitioned

        with self._lock:
            self.stats.queries += 1
            self.stats.partitioned_queries += 1
        fingerprint = self.fingerprint(dataset)
        cacheable = tie_break == "index"
        # The cache label is distinct from the *registry* algorithm
        # "partitioned" (core.partitioned.PartitionedTKD): that one
        # resolves boundary ties by candidate-set eviction order, this
        # route by index-deterministic selection — same multiset, not
        # always the same ids, so they must never share cached answers.
        result_key = (fingerprint, int(k), "partitioned:engine", _options_key({}))
        if cacheable:
            with self._lock:
                cached = self._results.get(result_key, _MISSING)
                if cached is not _MISSING:
                    self.stats.result_hits += 1
                    root.set("cache", "memory")
                    return cached
                self.stats.result_misses += 1
            if self._store is not None:
                with telemetry.trace("store.read"):
                    stored = self._store.get_result(*result_key)
                with self._lock:
                    if stored is not None:
                        self.stats.store_hits += 1
                        self.stats.evictions += self._results.put(result_key, stored)
                    else:
                        self.stats.store_misses += 1
                if stored is not None:
                    root.set("cache", "store")
                    return stored

        requested = int(partitions)
        if requested < 1:
            raise InvalidParameterError(f"partitions must be >= 1, got {partitions}")
        clamped = min(requested, dataset.n)
        root.set("partitions", clamped)
        with self._lock:
            view = self._partitioned.get(fingerprint, _MISSING)
        if view is _MISSING or view.partitions != clamped:
            with telemetry.trace("partition.build_view") as span:
                span.set("partitions", clamped)
                view = PartitionedDataset(dataset, clamped)
            with self._lock:
                self._partitioned.put(fingerprint, view)

        # Adaptive repartitioner: a view skewed by routed insert streams
        # is rebalanced (delta splices, bit-identical) before it executes.
        if view.partitions > 1:
            from .planner import plan_repartition

            replan = plan_repartition(view.sizes, dataset.d)
            if replan.action == "rebalance":
                with telemetry.trace("partition.rebalance"):
                    view, advanced = view.rebalance()
                    for parent_shard, sub_delta, child_shard in advanced:
                        self._advance_shard_prepared(parent_shard, sub_delta, child_shard)
                with self._lock:
                    self.stats.repartitions += 1
                    self._partitioned.put(fingerprint, view)
        with self._lock:
            self.stats.partition_imbalance = float(view.imbalance)

        # Out-of-core route: when the shards' table footprint exceeds the
        # memory budget, spill tables to mapped store files and keep only
        # a budget-bounded resident set attached.
        spill_store = None
        if self.memory_budget is not None:
            table_bytes = sum(
                _bitset_table_bytes(shard.n, dataset.d) for shard in view.shards
            )
            if table_bytes > self.memory_budget:
                spill_store = self._spill_store()
                root.set("spill", True)
                with self._lock:
                    self.stats.spilled_queries += 1

        start = _clock()
        result = execute_partitioned(
            view,
            k,
            engine=self,
            workers=workers,
            tie_break=tie_break,
            rng=rng,
            memory_budget=self.memory_budget if spill_store is not None else None,
            spill_store=spill_store,
        )
        elapsed = _clock() - start
        root.set("measured_seconds", elapsed)
        if telemetry.enabled():
            registry = telemetry.metrics()
            registry.count("engine.partitioned_queries")
            registry.observe("engine.query_seconds", elapsed)
        if cacheable:
            with self._lock:
                self.stats.evictions += self._results.put(result_key, result)
            if self._store is not None:
                with self._lock:
                    self.stats.store_writes += 1
                with telemetry.trace("store.write"):
                    self._store.put_result(
                        *result_key, result, rebuild_seconds=elapsed
                    )
        return result

    def _incremental_result(self, dataset, k: int, *, tie_break: str, rng):
        """Answer one query from the maintained score vector (exact)."""
        from ..core.result import TKDResult, select_top_k, validate_k
        from ..core.stats import QueryStats

        scores = self.scores(dataset)
        validated = validate_k(k, dataset.n)
        selection = select_top_k(scores, validated, tie_break=tie_break, rng=rng)
        stats = QueryStats(
            algorithm="incremental", n=dataset.n, d=dataset.d, k=validated
        )
        return TKDResult.from_selection(
            dataset,
            selection,
            scores[selection],
            k=validated,
            algorithm="incremental",
            stats=stats,
        )

    @staticmethod
    def _apply_plan(plan: QueryPlan, options: dict) -> tuple[str, dict]:
        """Resolve a plan into an explicit (algorithm, options) pair.

        Keeps only the options the planned algorithm understands (the
        caller may have passed options meant for another family).
        """
        from ..core.query import ALGORITHMS  # deferred: core imports the engine

        algorithm = plan.algorithm
        return algorithm, supported_options(
            ALGORITHMS[algorithm], merge_plan_options(plan, options)
        )

    def query_many(
        self,
        requests: Iterable,
        *,
        algorithm: str = "auto",
        workers: int | None = None,
        **common_options,
    ):
        """Answer a batch of queries against shared preparations.

        Each request is ``(dataset, k)``, ``(dataset, k, algorithm)`` or a
        dict with ``dataset``/``k`` and optional ``algorithm``/``options``.
        The expected repeat count handed to the planner is the batch size,
        so index builds amortised across the sweep are priced as such.
        ``algorithm="auto"`` requests are resolved against this session's
        cache state *before* execution begins, so the chosen algorithms —
        and therefore the answers — do not depend on *workers*.

        ``workers=N`` (opt-in, N >= 2) shards the batch across a process
        pool: each worker rebuilds its preparations fork-safely in its own
        session, and the parent merges results (and worker cache counters)
        back into this engine's LRU result cache. Requests the parent can
        already answer from cache are never shipped. Answers are
        bit-identical to the sequential path under deterministic
        tie-breaking.
        """
        materialised = [self._coerce_request(req, algorithm) for req in requests]
        repeats = max(len(materialised), 1)
        resolved = []
        for dataset, k, request_algorithm, request_options in materialised:
            options = {**common_options, **request_options}
            if request_algorithm.lower() == "auto":
                request_algorithm, options = self._apply_plan(
                    self.plan(dataset, k, repeats=repeats), options
                )
            resolved.append((dataset, k, request_algorithm, options))

        if workers is not None and int(workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if workers is None or int(workers) <= 1 or len(resolved) <= 1:
            # Buffer store writes so the whole batch lands in one
            # lock + atomic rewrite instead of one per computed answer.
            with self._batched_store_writes():
                results = [
                    self.query(dataset, k, algorithm=request_algorithm, **options)
                    for dataset, k, request_algorithm, options in resolved
                ]
        else:
            results = self._query_many_parallel(resolved, int(workers))
        # A batch is a natural persistence point: the planner biases the
        # sweep just refined should survive into the next process.
        self.flush()
        return results

    @contextmanager
    def _batched_store_writes(self):
        """Defer per-query store writes, flushing them as one batch."""
        if self._store is None:
            yield
            return
        with self._lock:
            already_deferring = self._defer_store_writes
            self._defer_store_writes = True
        try:
            yield
        finally:
            if not already_deferring:
                with self._lock:
                    self._defer_store_writes = False
                    pending, self._store_pending = self._store_pending, []
                if pending:
                    self._store.put_results(pending)

    def _query_many_parallel(self, resolved: list, workers: int) -> list:
        """Shard resolved requests across a process pool; merge caches.

        With a :attr:`store`, each shard warm-starts from it twice over:
        the parent serves every request the store already holds without
        shipping it, and the workers (which open the same store) write
        their fresh answers back, so the next run — in *any* process —
        starts warm. Datasets whose bitset tables this session already
        prepared are additionally exported once into shared memory
        (:class:`~repro.engine.backend.SharedTables`) so workers attach
        zero-copy instead of re-preparing them.
        """
        results: list = [None] * len(resolved)
        pending: list[int] = []
        keys: list[tuple | None] = [None] * len(resolved)
        for position, (dataset, k, request_algorithm, options) in enumerate(resolved):
            with self._lock:
                self.stats.queries += 1
            tie_break = options.get("tie_break", "index")
            if tie_break == "index":
                # Mirror query(): tie_break/rng/repeats bind to named
                # parameters there and never reach the cache key.
                constructor_options = {
                    name: value
                    for name, value in options.items()
                    if name not in ("tie_break", "rng", "repeats")
                }
                keys[position] = (
                    self.fingerprint(dataset),
                    int(k),
                    request_algorithm.lower(),
                    _options_key(constructor_options),
                )
                with self._lock:
                    cached = self._results.get(keys[position], _MISSING)
                    if cached is not _MISSING:
                        self.stats.result_hits += 1
                        results[position] = cached
                        continue
                    # Mirror query(): only cacheable queries count hits/misses.
                    self.stats.result_misses += 1
                if self._store is not None:
                    stored = self._store.get_result(*keys[position])
                    with self._lock:
                        if stored is not None:
                            self.stats.store_hits += 1
                            self.stats.evictions += self._results.put(keys[position], stored)
                        else:
                            self.stats.store_misses += 1
                    if stored is not None:
                        results[position] = stored
                        continue
            pending.append(position)

        if pending:
            shard_count = min(workers, len(pending))
            # Contiguous shards keep a sweep's repeated datasets on one
            # worker, so each dataset is pickled and prepared once there.
            base, extra = divmod(len(pending), shard_count)
            shards, start = [], 0
            for j in range(shard_count):
                size = base + (1 if j < extra else 0)
                if size:
                    shards.append(pending[start : start + size])
                start += size
            store_dir = str(self._store.directory) if self._store is not None else None
            handles: dict[str, SharedTables] = {}
            for position in pending:
                fingerprint = self.fingerprint(resolved[position][0])
                if fingerprint in handles:
                    continue
                prepared = self._dataset_cache.peek(fingerprint)
                if prepared is None or not prepared.tables_ready:
                    continue
                try:
                    handles[fingerprint] = SharedTables.create(prepared)
                except (OSError, ValueError):
                    # Out of /dev/shm space (or an unshareable layout):
                    # workers fall back to rebuilding from the pickle.
                    break
            shm_metas = {fp: handle.meta for fp, handle in handles.items()}
            with telemetry.trace("engine.query_many") as span:
                span.set("requests", len(pending)).set("shards", len(shards))
                payloads = [
                    (
                        [resolved[position] for position in shard],
                        store_dir,
                        shm_metas or None,
                        telemetry.propagation_context(),
                    )
                    for shard in shards
                ]
                pool = _process_pool(len(shards))
                try:
                    for shard, (answers, worker_stats, worker_spans) in zip(
                        shards, pool.map(_answer_shard, payloads)
                    ):
                        telemetry.absorb_spans(worker_spans)
                        # The parent already counted these queries/misses (and
                        # probed the store itself); keep only the work counters
                        # the workers actually added, e.g. their store writes.
                        worker_stats.queries = 0
                        worker_stats.result_hits = 0
                        worker_stats.result_misses = 0
                        worker_stats.store_hits = 0
                        worker_stats.store_misses = 0
                        with self._lock:
                            self.stats.merge(worker_stats)
                            for position, answer in zip(shard, answers):
                                results[position] = answer
                                if keys[position] is not None:
                                    self.stats.evictions += self._results.put(
                                        keys[position], answer
                                    )
                finally:
                    for handle in handles.values():
                        handle.close()
                        handle.unlink()
        return results

    @staticmethod
    def _coerce_request(request, default_algorithm: str):
        if isinstance(request, dict):
            try:
                dataset, k = request["dataset"], request["k"]
            except KeyError as missing:
                raise InvalidParameterError(
                    f"query_many dict requests need 'dataset' and 'k'; missing {missing}"
                ) from None
            return (
                dataset,
                k,
                request.get("algorithm", default_algorithm),
                dict(request.get("options", {})),
            )
        if (
            isinstance(request, Sequence)
            and not isinstance(request, (str, bytes))
            and 2 <= len(request) <= 3
        ):
            dataset, k = request[0], request[1]
            request_algorithm = request[2] if len(request) == 3 else default_algorithm
            return dataset, k, request_algorithm, {}
        raise InvalidParameterError(
            "query_many requests must be (dataset, k[, algorithm]) tuples or dicts"
        )

    # -- maintenance --------------------------------------------------------

    def clear(self, *, shared: bool = False) -> None:
        """Drop this session's cached preparations, results and fingerprints.

        Session-owned state only by default: the *process-wide shared*
        prepared-dataset cache is left alone — other sessions (and
        module-level kernel calls) may be serving from it — unless
        ``shared=True`` requests the old scorched-earth behaviour. A
        private ``dataset_cache`` passed at construction is session-owned
        and always cleared. The persistent store is never touched here;
        use :meth:`PersistentStore.clear` (or ``repro cache clear``).
        """
        with self._lock:
            self._prepared.clear()
            self._results.clear()
            self._partitioned.clear()
            self._fingerprints.clear()
        if shared or self._dataset_cache is not _shared_dataset_cache:
            self._dataset_cache.clear()

    def flush(self) -> None:
        """Persist the planner calibration to the store (no-op without one).

        Result entries are written as they are computed; the calibration
        snapshot is flushed here (and automatically at the end of every
        :meth:`query_many` batch) to keep store writes off the per-query
        path.
        """
        if self._store is not None:
            self._store.save_planner(calibration_state())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"<QueryEngine prepared={len(self._prepared)}/{self._prepared.capacity} "
                f"results={len(self._results)}/{self._results.capacity}>"
            )


def _score_rebates(parent, parent_prepared, delta) -> np.ndarray:
    """Parent-space score decrements one delta causes (phase 1 of 2).

    Every object that dominated a deleted victim loses that count, and
    every object that dominated an updated object's *old* value loses it
    too (the new value's contribution is re-added in child space). One
    packed dominator-mask batch over the affected rows only — this is the
    "adjust dominated counts for affected objects only" half of
    incremental maintenance. Must run *before* the parent's prepared
    structures are patched (in-place patching rewrites them).
    """
    rebates = np.zeros(parent.n, dtype=np.int64)
    del_rows = np.asarray(delta.deleted_rows, dtype=np.intp)
    upd_rows = np.asarray(delta.updated_rows, dtype=np.intp)
    if del_rows.size:
        rebates -= dominator_masks(parent, del_rows, prepared=parent_prepared).sum(axis=0)
    if upd_rows.size:
        rebates -= dominator_masks(parent, upd_rows, prepared=parent_prepared).sum(axis=0)
    return rebates


def _advance_scores(
    rebates: np.ndarray, parent_scores: np.ndarray, child, child_prepared, delta
) -> tuple[np.ndarray, np.ndarray]:
    """Child-version score vector from the parent's (phase 2 of 2).

    Surviving rows inherit ``parent_score + rebate``; dominators of
    updated and inserted rows (child values) are credited back; the
    updated and inserted rows themselves get one exact recompute each.
    Returns ``(child_scores, changed_child_rows)`` — the changed-row set
    is what lets a maintained top-k decide whether the k-th boundary
    could have moved.
    """
    n_parent = rebates.shape[0]
    del_rows = np.asarray(delta.deleted_rows, dtype=np.intp)
    upd_rows = np.asarray(delta.updated_rows, dtype=np.intp)
    inserts = int(delta.inserted_values.shape[0])

    keep = np.ones(n_parent, dtype=bool)
    if del_rows.size:
        keep[del_rows] = False
    kept = int(keep.sum())

    child_scores = np.empty(child.n, dtype=np.int64)
    child_scores[:kept] = parent_scores[keep] + rebates[keep]

    fresh: list[np.ndarray] = []
    if upd_rows.size:
        # A surviving parent row's child index is its rank among kept rows.
        child_upd = (np.cumsum(keep) - 1)[upd_rows].astype(np.intp)
        child_scores += dominator_masks(child, child_upd, prepared=child_prepared).sum(axis=0)
        fresh.append(child_upd)
    if inserts:
        child_new = np.arange(kept, child.n, dtype=np.intp)
        child_scores += dominator_masks(child, child_new, prepared=child_prepared).sum(axis=0)
        fresh.append(child_new)
    if fresh:
        fresh_rows = np.concatenate(fresh)
        child_scores[fresh_rows] = dominated_counts(child, fresh_rows, prepared=child_prepared)

    changed_kept = np.flatnonzero(child_scores[:kept] != parent_scores[keep])
    changed = np.concatenate([changed_kept, np.arange(kept, child.n)]).astype(np.intp)
    return child_scores, changed


class ContinuousQuery:
    """A continuously maintained TKD view over one mutating dataset.

    The owned fast path behind :meth:`QueryEngine.continuous` and the
    :class:`repro.core.streaming.StreamingTKD` facade. Where
    :meth:`QueryEngine.apply_delta` versions *shared* cache entries
    (copy-on-write, every version stays queryable), this handle owns its
    :class:`~repro.engine.kernels.PreparedDataset` privately and patches
    it **in place** — sentinel buffers grow by amortised doubling,
    deletions tombstone, and the planner's
    :func:`~repro.engine.planner.plan_delta` triggers a compacting
    rebuild when the tombstone debt saturates.

    Top-k maintenance: the full score vector is adjusted per delta
    (affected objects only); the cached top-``k`` selection is kept when
    the delta provably cannot move the k-th boundary — every changed
    non-member stayed strictly below it and no member lost score — and
    recomputed exactly from the maintained vector otherwise.

    Many answer sizes can watch one stream: :meth:`subscribe` registers
    additional k values, all sharing the per-delta dominator-mask work,
    and :meth:`results` serves every subscription with at most one
    full-order sort.
    """

    def __init__(self, engine: QueryEngine, dataset, *, k: int | None = None) -> None:
        if dataset is None or dataset.n == 0:
            raise InvalidParameterError("continuous queries need a non-empty dataset")
        self._engine = engine
        self._dataset = dataset
        self._k = None if k is None else int(k)
        prepared = engine.prepare_dataset(dataset)
        prepared.warm()
        self._prepared = prepared
        #: The first patch must copy-on-write away from the shared cache
        #: entry; after that the structure is exclusively ours.
        self._owned = False
        self._scores = engine.scores(dataset)
        #: The multi-k subscription set: every subscribed k's selection is
        #: kept warm across deltas against the *one* maintained score
        #: vector — the per-delta dominator-mask work is shared, and a
        #: fallback re-rank sorts the vector once for all of them.
        self._subscribed: set[int] = set() if k is None else {int(k)}
        #: Per-k cached selections: ``k → (rows, boundary, seen_events)``.
        self._selections: dict[int, tuple[np.ndarray, int, int]] = {}
        #: Change events since the oldest cached selection: arrays of
        #: changed child rows, or ``None`` when a delete shifted row
        #: indices (exact fallback required). ``_events_base`` counts
        #: events trimmed off the front of the window.
        self._events: list[np.ndarray | None] = []
        self._events_base = 0

    # -- state --------------------------------------------------------------

    @property
    def dataset(self):
        """The current :class:`~repro.core.dataset.IncompleteDataset` version."""
        return self._dataset

    @property
    def prepared(self) -> PreparedDataset:
        """The privately owned prepared structures (storage layer included)."""
        return self._prepared

    @property
    def scores(self) -> np.ndarray:
        """Maintained dominated counts, index-aligned with :attr:`dataset`."""
        return self._scores

    @property
    def n(self) -> int:
        return self._dataset.n

    @property
    def d(self) -> int:
        return self._dataset.d

    @property
    def ids(self) -> list[str]:
        return self._dataset.ids

    def __len__(self) -> int:
        return self._dataset.n

    def __contains__(self, object_id: str) -> bool:
        try:
            self._dataset.index_of(object_id)
            return True
        except InvalidParameterError:
            return False

    def score_of(self, object_id: str) -> int:
        """Maintained ``score`` of one live object."""
        return int(self._scores[self._dataset.index_of(object_id)])

    # -- mutations -----------------------------------------------------------

    def insert(self, rows, *, ids: Sequence[str] | None = None) -> list[str]:
        """Insert a batch of rows; returns their ids."""
        from ..core.delta import DatasetDelta

        delta = DatasetDelta.inserting(self._dataset, rows, ids=ids)
        before = self._dataset.n
        self.apply(delta)
        return self._dataset.ids[before:]

    def delete(self, ids: Sequence[str]) -> None:
        """Delete a batch of objects by id."""
        from ..core.delta import DatasetDelta

        self.apply(DatasetDelta.deleting(self._dataset, ids))

    def update(self, updates: Mapping[str, Sequence]) -> None:
        """Update a batch of objects (full rows or partial dim mappings)."""
        from ..core.delta import DatasetDelta

        self.apply(DatasetDelta.updating(self._dataset, updates))

    def apply(self, delta) -> None:
        """Advance this view by one delta (the engine counts it)."""
        if delta.is_empty:
            return
        child = self._dataset.apply_delta(delta)
        engine = self._engine
        with engine._lock:
            engine.stats.deltas_applied += 1

        rebates = _score_rebates(self._dataset, self._prepared, delta)
        ops = delta.ops
        plan = plan_delta(
            self._prepared.storage_n,
            self._prepared.d,
            inserts=ops["inserts"],
            deletes=ops["deletes"],
            updates=ops["updates"],
            tombstones=self._prepared.tombstones,
            tables_ready=self._prepared.tables_ready,
        )
        if plan.action == "patch":
            new_prepared = self._prepared.patched(
                SentinelDelta.from_delta(delta, self._dataset.directions),
                inplace=self._owned,
            )
            with engine._lock:
                engine.stats.tables_patched += 1
        else:
            new_prepared = PreparedDataset(child)
            if self._prepared.tables_ready:
                new_prepared.tables(build=True)
            with engine._lock:
                engine.stats.tables_rebuilt += 1
        self._owned = True

        new_scores, changed = _advance_scores(
            rebates, self._scores, child, new_prepared, delta
        )
        self._events.append(None if ops["deletes"] else changed)
        if len(self._events) > _MAX_PENDING_EVENTS:
            dropped = len(self._events) - _MAX_PENDING_EVENTS
            del self._events[:dropped]
            self._events_base += dropped  # entries behind the window go stale
        self._dataset = child
        self._prepared = new_prepared
        self._scores = new_scores
        engine._adopt_scores(engine.fingerprint(child), new_scores)

    # -- queries -------------------------------------------------------------

    def subscribe(self, k: int) -> int:
        """Register *k* in this view's multi-k subscription set.

        Many dashboards over one stream ask for different answer sizes;
        subscribed k values share everything below the selection — one
        maintained score vector (the per-delta dominator-mask work is
        paid once regardless of how many k's are live), one boundary
        check per k per delta, and one full-order sort whenever any of
        them needs an exact re-rank (:meth:`results`).
        """
        if isinstance(k, bool) or not isinstance(k, (int, np.integer)) or k <= 0:
            raise InvalidParameterError(f"subscription k must be a positive integer, got {k!r}")
        k = int(k)
        self._subscribed.add(k)
        return k

    def unsubscribe(self, k: int) -> None:
        """Drop *k* from the subscription set (its cached selection too)."""
        self._subscribed.discard(int(k))
        self._selections.pop(int(k), None)

    @property
    def subscriptions(self) -> tuple[int, ...]:
        """The subscribed k values, ascending."""
        return tuple(sorted(self._subscribed))

    def top_k(self, k: int | None = None, *, tie_break: str = "index", rng=None):
        """Current answer as ``(id, score)`` pairs, best first.

        Deterministic (``tie_break="index"``) calls maintain a cached
        selection per k across deltas: when every change since the last
        call stayed strictly below the k-th boundary (and no member lost
        score, no row indices shifted), the membership provably cannot
        have changed and only the ordering is refreshed; anything
        uncertain falls back to one exact selection over the maintained
        vector.
        """
        from ..core.result import select_top_k, validate_k

        if k is None:
            k = self._k if self._k is not None else 10
        k = validate_k(k, self._dataset.n)
        scores = self._scores
        if tie_break != "index":
            selection = select_top_k(scores, k, tie_break=tie_break, rng=rng)
            return [(self._dataset.ids[i], int(scores[i])) for i in selection]
        rows, _order = self._select_rows(k, None)
        return [(self._dataset.ids[i], int(scores[i])) for i in rows]

    def results(self, *, tie_break: str = "index", rng=None) -> dict[int, list]:
        """Current answers for every subscribed k, as ``{k: pairs}``.

        The multi-k batch read: subscribed k values whose cached
        selections survived the boundary checks are served in ``O(k)``,
        and the ones that did not share a *single* full-order sort of the
        maintained vector — k answers for one re-rank.
        """
        from ..core.result import validate_k

        ks = self.subscriptions or ((self._k if self._k is not None else 10),)
        if tie_break != "index":
            return {int(k): self.top_k(int(k), tie_break=tie_break, rng=rng) for k in ks}
        out: dict[int, list] = {}
        order = None
        ids, scores = self._dataset.ids, self._scores
        for k in ks:
            rows, order = self._select_rows(validate_k(int(k), self._dataset.n), order)
            out[int(k)] = [(ids[i], int(scores[i])) for i in rows]
        return out

    def _select_rows(self, k: int, order: np.ndarray | None):
        """The (validated) top-``k`` rows, via cache or shared full sort.

        Returns ``(rows, order)`` where *order* is the full lexsort when
        this call had to compute (or was handed) one — so a batch over
        several k values pays for at most one sort.
        """
        scores = self._scores
        entry = self._selections.get(k)
        if entry is not None and self._entry_safe(entry):
            rows = entry[0]
        else:
            if order is None:
                # Exact fallback: lexsort replicates select_top_k's
                # (-score, index) ordering at C speed over the whole vector.
                order = np.lexsort((np.arange(scores.size), -scores))
            rows = order[:k].astype(np.intp)
        rows = rows[np.lexsort((rows, -scores[rows]))]  # refresh in-set order
        boundary = int(scores[rows].min()) if rows.size else 0
        self._selections[k] = (rows, boundary, self._events_base + len(self._events))
        self._prune_selections()
        self._trim_events()
        return rows, order

    def _entry_safe(self, entry: tuple) -> bool:
        """True iff no delta since *entry* was cached could move its top-k."""
        rows, boundary, seen = entry
        start = seen - self._events_base
        if start < 0:
            return False  # the event window rolled past this entry
        recent = self._events[start:]
        if not recent:
            return True
        if any(event is None for event in recent):
            return False  # a delete shifted row indices
        scores = self._scores
        if rows.size == 0 or rows.max() >= scores.size:
            return False
        changed = np.unique(np.concatenate(recent))
        members = np.zeros(scores.size, dtype=bool)
        members[rows] = True
        changed_members = changed[members[changed]]
        changed_others = changed[~members[changed]]
        if changed_others.size and int(scores[changed_others].max()) >= boundary:
            return False
        # A member that *dropped to* the boundary could lose an index
        # tie-break against an excluded row already sitting there, so only
        # strictly-above changes are provably safe.
        if changed_members.size and int(scores[changed_members].min()) <= boundary:
            return False
        return True

    def _prune_selections(self) -> None:
        """Bound the cache: unsubscribed one-off k's yield first."""
        limit = max(8, len(self._subscribed) + 1)
        while len(self._selections) > limit:
            for key in list(self._selections):
                if key not in self._subscribed:
                    del self._selections[key]
                    break
            else:
                break  # everything left is subscribed; keep it all

    def _trim_events(self) -> None:
        """Drop events every cached selection has already absorbed."""
        if not self._selections:
            return
        min_seen = min(seen for _, _, seen in self._selections.values())
        drop = min_seen - self._events_base
        if drop > 0:
            del self._events[:drop]
            self._events_base = min_seen

    def result(self, k: int | None = None):
        """The current answer as a :class:`~repro.core.result.TKDResult`."""
        from ..core.result import TKDResult
        from ..core.stats import QueryStats

        pairs = self.top_k(k)
        validated = max(len(pairs), 1)
        indices = [self._dataset.index_of(object_id) for object_id, _ in pairs]
        return TKDResult(
            indices=indices,
            scores=[score for _, score in pairs],
            ids=[object_id for object_id, _ in pairs],
            k=validated,
            algorithm="incremental",
            stats=QueryStats(
                algorithm="incremental", n=self._dataset.n, d=self._dataset.d, k=validated
            ),
        )


def _answer_shard(payload: tuple) -> tuple[list, EngineStats, list]:
    """Process-pool worker: answer one shard in a fresh session.

    Runs in a separate process, so every preparation (indexes, queues,
    bitset tables) is rebuilt locally — fork-safe by construction, since
    nothing mutable is shared with the parent. Algorithms arrive already
    resolved (never ``"auto"``), so the answers cannot depend on this
    worker's planner state. When the parent has a store, the worker opens
    the same directory (advisory locking makes the concurrent writers
    safe) and persists its answers as one batch at shard end. When the
    parent exported prepared tables into shared memory, this worker
    attaches the segments its shard references and seeds its dataset
    cache with zero-copy views instead of re-preparing from scratch.
    The payload carries the coordinator's trace context; spans recorded
    here ship back as the third element of the result and re-parent into
    the coordinator's tree.
    """
    shard, store_dir, shm_metas, trace_ctx = payload
    telemetry.begin_remote(trace_ctx)
    engine = QueryEngine(dataset_cache=PreparedDatasetCache(), store=store_dir)
    attached: list[SharedTables] = []
    try:
        if shm_metas:
            for dataset, _k, _algorithm, _options in shard:
                fingerprint = engine.fingerprint(dataset)
                meta = shm_metas.get(fingerprint)
                if meta is None or engine._dataset_cache.peek(fingerprint) is not None:
                    continue
                try:
                    handle = SharedTables.attach(meta)
                except (OSError, ValueError):
                    continue  # segment gone; rebuild locally instead
                attached.append(handle)
                engine._dataset_cache.put(fingerprint, handle.prepared())
        with engine._batched_store_writes():
            answers = [
                engine.query(dataset, k, algorithm=algorithm, **options)
                for dataset, k, algorithm, options in shard
            ]
    finally:
        # The zero-copy views die with the cache; drop our segment refs so
        # the parent's unlink can actually release the memory.
        engine._dataset_cache.clear()
        for handle in attached:
            handle.close()
    return answers, engine.stats, telemetry.end_remote()
