"""A reusable query session: prepared-structure and result caching.

The paper charges preprocessing (Table 3) separately from query time
(Figs. 12–17) precisely because one preparation serves many queries — but
the seed API rebuilt indexes and MaxScore queues on every
:func:`~repro.core.query.top_k_dominating` call. :class:`QueryEngine` is
the session object that makes the amortisation real:

* **dataset fingerprinting** — a content hash of the value matrix,
  observed masks and directions, so caching works across distinct
  :class:`~repro.core.dataset.IncompleteDataset` instances holding the
  same data (and never serves stale answers for different data);
* **prepared-structure cache** — one prepared
  :class:`~repro.core.base.TKDAlgorithm` per (dataset, algorithm,
  options), LRU-bounded; the planner is told which structures exist so
  ``algorithm="auto"`` prefers an index that is already paid for;
* **result cache** — an LRU over (dataset, k, algorithm, options)
  answering repeated queries in O(1) (deterministic tie-breaking only;
  ``tie_break="random"`` always executes);
* **prepared-dataset cache** — one :class:`~repro.engine.kernels.PreparedDataset`
  (lo/hi sentinel arrays, packed bitset tables, observed bitsets) per
  dataset fingerprint in a byte-budgeted LRU shared by every engine *and*
  by module-level kernel calls (``score_all``, ``dominance_matrix``, the
  MFD operator) through :func:`shared_prepared` — repeated full scans
  build their ``O(d·n²/8)`` tables once;
* **batch API** — :meth:`QueryEngine.query_many` runs a parametrised
  sweep (the Fig. 12–17 loops, a leaderboard's k-ladder) against shared
  preparations, optionally sharded across a process pool
  (``workers=N``) with results merged back into the result LRU;
* **persistent store** — an optional
  :class:`~repro.engine.store.PersistentStore` (``store=`` or the
  ``REPRO_CACHE_DIR`` environment variable) behind the result LRU, so
  warm answers and learned planner biases survive the process and are
  shared across concurrent processes (see :mod:`repro.engine.store`).

Sessions and the shared caches are thread-safe; see the class docs for
the exact locking discipline.

Usage::

    engine = QueryEngine()
    for k in (4, 8, 16, 32, 64):
        result = engine.query(dataset, k)          # one preparation total
    results = engine.query_many([(dataset, 2), (dataset, 8)])
    results = engine.query_many(sweep, workers=4)  # process-pool sharding
    print(engine.stats.summary())
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..errors import InvalidParameterError
from .kernels import PreparedDataset
from .planner import (
    QueryPlan,
    apply_calibration_state,
    calibration_state,
    merge_plan_options,
    plan_query,
    record_observation,
    supported_options,
)
from .store import PersistentStore

__all__ = [
    "QueryEngine",
    "EngineStats",
    "PreparedDatasetCache",
    "dataset_fingerprint",
    "default_engine",
    "shared_prepared",
]

#: Byte budget of the process-wide shared :class:`PreparedDatasetCache`.
_SHARED_CACHE_BUDGET_BYTES = 256 * 1024 * 1024

#: Cache-miss sentinel: ``None`` (or any falsy value) must be storable.
_MISSING = object()


def dataset_fingerprint(dataset) -> str:
    """Content hash identifying a dataset's query-relevant state.

    Two datasets with identical values, missing patterns and per-dimension
    directions produce identical TKD answers, so they share a fingerprint;
    ids/names are presentation-only and excluded deliberately.

    Values are canonicalised before hashing so bit-level float artefacts
    cannot split equal-answer datasets: ``-0.0`` compares equal to ``0.0``
    in every dominance test (adding ``0.0`` maps it to ``+0.0``), and
    missing cells are re-stamped with one canonical NaN (their stored
    payload bits are meaningless — only the observed mask matters).
    """
    values = dataset.values
    observed = dataset.observed
    canonical = np.where(observed, values + 0.0, np.nan)
    digest = hashlib.sha256()
    digest.update(str(values.shape).encode())
    digest.update(canonical.tobytes())
    digest.update(observed.tobytes())
    digest.update(",".join(dataset.directions).encode())
    return digest.hexdigest()


def _freeze(value):
    """Make an options value hashable for cache keys."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        return tuple(_freeze(v) for v in value)
    if hasattr(value, "tolist"):  # numpy scalars/arrays
        return _freeze(value.tolist())
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def _options_key(options: dict) -> tuple:
    return tuple(sorted((name, _freeze(value)) for name, value in options.items()))


@dataclass
class EngineStats:
    """Cache-effectiveness counters of one :class:`QueryEngine`."""

    queries: int = 0
    result_hits: int = 0
    result_misses: int = 0
    prepared_hits: int = 0
    prepared_misses: int = 0
    evictions: int = 0
    #: Warm answers served from / written to the persistent store.
    store_hits: int = 0
    store_misses: int = 0
    store_writes: int = 0

    @property
    def hit_rate(self) -> float:
        """Result-cache hit rate over all answered queries (0 when idle)."""
        answered = self.result_hits + self.result_misses
        return self.result_hits / answered if answered else 0.0

    def merge(self, other: "EngineStats") -> None:
        """Fold another engine's counters in (used by parallel query_many)."""
        self.queries += other.queries
        self.result_hits += other.result_hits
        self.result_misses += other.result_misses
        self.prepared_hits += other.prepared_hits
        self.prepared_misses += other.prepared_misses
        self.evictions += other.evictions
        self.store_hits += other.store_hits
        self.store_misses += other.store_misses
        self.store_writes += other.store_writes

    def summary(self) -> str:
        text = (
            f"engine: {self.queries} queries, "
            f"results {self.result_hits}/{self.result_hits + self.result_misses} cached "
            f"({self.hit_rate:.0%}), "
            f"prepared reused {self.prepared_hits}x, evictions {self.evictions}"
        )
        if self.store_hits or self.store_misses or self.store_writes:
            text += (
                f", store {self.store_hits}/{self.store_hits + self.store_misses} warm"
                f" ({self.store_writes} written)"
            )
        return text


class _LRU:
    """Minimal ordered-dict LRU used for both engine caches.

    Lookups distinguish "absent" from "stored a falsy value" through a
    private sentinel, so ``None``/``0``/``[]`` are first-class cache
    values and still refresh recency on access.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise InvalidParameterError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key, default=None):
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> int:
        """Insert and return how many entries were evicted (0 or 1)."""
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            return 1
        return 0

    def keys(self):
        return list(self._data.keys())

    def clear(self) -> None:
        self._data.clear()


class PreparedDatasetCache:
    """Fingerprint-keyed, byte-budgeted LRU of :class:`PreparedDataset`.

    Entries are content-addressed (the dataset fingerprint), so the cache
    is safe to share across engines and with module-level kernel calls —
    equal-content datasets reuse one entry, different content can never
    collide. The budget is enforced against the entries' *current*
    ``nbytes`` on every access: a `PreparedDataset` grows when its lazy
    bitset tables are built, and the next access sheds entries until the
    total fits again. Eviction is *cost-aware*: among every entry but the
    most recently used, the lowest measured rebuild-seconds-per-byte goes
    first (ties fall back to least-recently-used order), so cheap
    sentinel-only entries yield before an expensive ``O(d·n²/64)`` table
    build. A single entry larger than the whole budget is kept (evicting
    it would only thrash rebuilds).

    All methods are thread-safe: the process-wide shared instance is hit
    by every engine *and* by module-level kernel calls, possibly from
    many server threads at once.
    """

    def __init__(self, max_bytes: int = _SHARED_CACHE_BUDGET_BYTES) -> None:
        if max_bytes <= 0:
            raise InvalidParameterError(f"cache budget must be >= 1 byte, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._data: OrderedDict[str, PreparedDataset] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._data

    @property
    def total_bytes(self) -> int:
        """Current footprint of all entries (lazy tables included)."""
        with self._lock:
            return self._total_bytes()

    def _total_bytes(self) -> int:
        return sum(entry.nbytes for entry in self._data.values())

    def get_or_create(self, dataset, fingerprint: str) -> PreparedDataset:
        """Fetch the entry for *fingerprint*, building it on first sight.

        The (cheap, sentinel-only) build happens under the cache lock so
        racing threads can never install two entries for one fingerprint;
        the expensive lazy tables build later, under the entry's own lock.
        """
        with self._lock:
            entry = self._data.get(fingerprint)
            if entry is not None:
                self._data.move_to_end(fingerprint)
                self.hits += 1
            else:
                entry = PreparedDataset(dataset)
                self._data[fingerprint] = entry
                self.misses += 1
            self._enforce()
            return entry

    def _enforce(self) -> None:
        while len(self._data) > 1 and self._total_bytes() > self.max_bytes:
            # Spare the most recently used entry (the caller is about to
            # use it); evict the cheapest rebuild-per-byte among the rest.
            # min() keeps the first — least recently used — entry on ties.
            victims = list(self._data.items())[:-1]
            victim = min(victims, key=lambda kv: kv[1].rebuild_cost_per_byte)[0]
            del self._data[victim]
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/eviction counters.

        Counters describe the current entry population; carrying them
        across a clear made post-clear hit rates unreadable.
        """
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PreparedDatasetCache entries={len(self._data)} "
            f"bytes={self.total_bytes}/{self.max_bytes}>"
        )


#: The process-wide prepared-dataset cache every engine defaults to.
_shared_dataset_cache = PreparedDatasetCache()

#: Lazily created engine behind the module-level kernel shim.
_default_engine: "QueryEngine | None" = None


def default_engine() -> "QueryEngine":
    """The session serving module-level calls (one per process, lazy)."""
    global _default_engine
    if _default_engine is None:
        _default_engine = QueryEngine()
    return _default_engine


def shared_prepared(dataset) -> PreparedDataset:
    """Module-level shim: prepared kernel inputs from the default session.

    :func:`repro.engine.kernels._shared_prepared` calls this so that
    one-shot APIs (``score_all``, ``dominance_matrix``, ``mfd_scores``)
    hit the same fingerprint-keyed cache a :class:`QueryEngine` fills.
    """
    return default_engine().prepare_dataset(dataset)


class QueryEngine:
    """A session that amortises preparation and caching across TKD queries.

    Parameters
    ----------
    max_prepared: LRU capacity for prepared algorithm instances (each may
        hold an index; bound this by available memory).
    max_results: LRU capacity for cached query results (small objects).
    dataset_cache: the :class:`PreparedDatasetCache` serving kernel-level
        structures; defaults to the process-wide shared cache so engines
        and module-level calls reuse one set of bitset tables. Pass a
        private instance to isolate (or differently budget) a session.
    store: a :class:`~repro.engine.store.PersistentStore` (or a directory
        path for one) that makes result caching and planner calibration
        survive the process. Defaults to the ``REPRO_CACHE_DIR``
        environment variable when set, else no persistence. Opening a
        store loads its persisted planner biases into this process.

    Sessions are thread-safe: one internal lock guards the caches, the
    fingerprint memo and the stats counters, and is *released* while an
    algorithm executes so concurrent queries still run in parallel.
    """

    def __init__(
        self,
        *,
        max_prepared: int = 16,
        max_results: int = 256,
        dataset_cache: PreparedDatasetCache | None = None,
        store: "PersistentStore | str | Path | None" = None,
    ) -> None:
        self._prepared = _LRU(max_prepared)
        self._results = _LRU(max_results)
        self._dataset_cache = _shared_dataset_cache if dataset_cache is None else dataset_cache
        self._fingerprints: dict[int, tuple[weakref.ref, str]] = {}
        self._lock = threading.RLock()
        #: Store writes buffered while a batch is in flight (query_many
        #: flushes them in one lock + atomic rewrite instead of N).
        self._store_pending: list[dict] = []
        self._defer_store_writes = False
        self.stats = EngineStats()
        if store is None:
            env_dir = os.environ.get("REPRO_CACHE_DIR")
            store = env_dir if env_dir else None
        if isinstance(store, (str, Path)):
            store = PersistentStore(store)
        self._store = store
        if self._store is not None:
            state = self._store.load_planner()
            if state:
                apply_calibration_state(state)

    @property
    def dataset_cache(self) -> PreparedDatasetCache:
        """The prepared-dataset cache this session reads and fills."""
        return self._dataset_cache

    @property
    def store(self) -> "PersistentStore | None":
        """The persistent store this session reads and fills (if any)."""
        return self._store

    # -- identity -----------------------------------------------------------

    def fingerprint(self, dataset) -> str:
        """Fingerprint with per-instance memoisation (datasets are immutable).

        The memo is keyed by ``id()`` but guarded by a weak reference to
        the instance: CPython recycles ids of freed objects, so a bare id
        hit could otherwise serve a *different* dataset's fingerprint (and
        through it, another dataset's cached answers).
        """
        key = id(dataset)
        with self._lock:
            entry = self._fingerprints.get(key)
            if entry is not None and entry[0]() is dataset:
                return entry[1]
        # Hash outside the lock: O(n·d) work must not serialize sessions.
        fingerprint = dataset_fingerprint(dataset)
        with self._lock:
            # Bound the memo so long-lived engines can't grow unboundedly
            # over throwaway datasets.
            if len(self._fingerprints) >= 4 * self._prepared.capacity:
                self._fingerprints.clear()
            self._fingerprints[key] = (weakref.ref(dataset), fingerprint)
        return fingerprint

    # -- planning -----------------------------------------------------------

    def prepared_algorithms(self, dataset) -> tuple[str, ...]:
        """Names of algorithms already prepared for *dataset* in this session."""
        fingerprint = self.fingerprint(dataset)
        with self._lock:
            return tuple(
                sorted({key[1] for key in self._prepared.keys() if key[0] == fingerprint})
            )

    def plan(self, dataset, k: int, *, repeats: int = 1) -> QueryPlan:
        """Cost-based plan for one query, aware of this session's caches."""
        return plan_query(
            dataset, k, prepared=self.prepared_algorithms(dataset), repeats=repeats
        )

    # -- execution ----------------------------------------------------------

    def prepare_dataset(self, dataset) -> PreparedDataset:
        """Kernel-level prepared structures for *dataset*, cache-backed.

        Returns the fingerprint-keyed :class:`PreparedDataset` (lo/hi
        sentinels eagerly, bitset tables lazily) every kernel call on this
        dataset's content will reuse — including module-level calls, since
        the default cache is process-wide.
        """
        return self._dataset_cache.get_or_create(dataset, self.fingerprint(dataset))

    def result_key(self, dataset, k: int, algorithm: str, **options) -> tuple:
        """The result-cache/store key of one deterministic query.

        Exposed so out-of-band writers (the experiment harness) can
        address the same persistent entries :meth:`query` reads.
        """
        return (
            self.fingerprint(dataset),
            int(k),
            algorithm.lower(),
            _options_key(options),
        )

    def prepared(self, dataset, algorithm: str, **options):
        """Fetch (or build and cache) a prepared algorithm instance."""
        from ..core.query import make_algorithm  # deferred: core imports the engine

        fingerprint = self.fingerprint(dataset)
        key = (fingerprint, algorithm.lower(), _options_key(options))
        with self._lock:
            instance = self._prepared.get(key, _MISSING)
            if instance is not _MISSING:
                self.stats.prepared_hits += 1
                return instance
            self.stats.prepared_misses += 1
        # Build outside the lock: preparation may cost seconds and must
        # not block other sessions' threads. A racing thread may build the
        # same instance twice; both are valid and the last put wins.
        instance = make_algorithm(dataset, algorithm, **options).prepare()
        with self._lock:
            self.stats.evictions += self._prepared.put(key, instance)
        return instance

    def query(
        self,
        dataset,
        k: int,
        *,
        algorithm: str = "auto",
        tie_break: str = "index",
        rng=None,
        repeats: int = 1,
        **options,
    ):
        """Answer one TKD query through the session caches.

        ``algorithm="auto"`` resolves through :meth:`plan` (crediting
        already-prepared structures); any explicit name behaves like
        :func:`~repro.core.query.top_k_dominating` but with reuse.

        With a :attr:`store`, cacheable misses fall through to the
        persistent layer before executing anything, and computed answers
        are written back with their measured cost (feeding the store's
        cost-aware eviction).
        """
        with self._lock:
            self.stats.queries += 1
        plan = None
        if algorithm.lower() == "auto":
            plan = self.plan(dataset, k, repeats=repeats)
            algorithm, options = self._apply_plan(plan, options)

        cacheable = tie_break == "index"
        result_key = None
        if cacheable:
            result_key = (
                self.fingerprint(dataset),
                int(k),
                algorithm.lower(),
                _options_key(options),
            )
            with self._lock:
                cached = self._results.get(result_key, _MISSING)
                if cached is not _MISSING:
                    self.stats.result_hits += 1
                    return cached
                self.stats.result_misses += 1
            if self._store is not None:
                stored = self._store.get_result(*result_key)
                with self._lock:
                    if stored is not None:
                        self.stats.store_hits += 1
                        self.stats.evictions += self._results.put(result_key, stored)
                    else:
                        self.stats.store_misses += 1
                if stored is not None:
                    return stored

        # Time preparation + query together: the plan's estimate charges
        # preparation exactly when this session has not prepared the
        # algorithm yet, so the observation must cover the same work.
        start = time.perf_counter()
        instance = self.prepared(dataset, algorithm, **options)
        result = instance.query(k, tie_break=tie_break, rng=rng)
        elapsed = time.perf_counter() - start
        if plan is not None:
            # Close the planner's loop: observed runtime vs modelled cost
            # nudges the per-algorithm bias for the rest of the process.
            record_observation(plan.algorithm, plan.estimated_seconds, elapsed)
        if cacheable:
            with self._lock:
                self.stats.evictions += self._results.put(result_key, result)
            if self._store is not None:
                item = {
                    "fingerprint": result_key[0],
                    "k": result_key[1],
                    "algorithm": result_key[2],
                    "options_key": result_key[3],
                    "result": result,
                    "rebuild_seconds": elapsed,
                }
                with self._lock:
                    self.stats.store_writes += 1
                    deferred = self._defer_store_writes
                    if deferred:
                        self._store_pending.append(item)
                if not deferred:
                    self._store.put_result(**item)
        return result

    @staticmethod
    def _apply_plan(plan: QueryPlan, options: dict) -> tuple[str, dict]:
        """Resolve a plan into an explicit (algorithm, options) pair.

        Keeps only the options the planned algorithm understands (the
        caller may have passed options meant for another family).
        """
        from ..core.query import ALGORITHMS  # deferred: core imports the engine

        algorithm = plan.algorithm
        return algorithm, supported_options(
            ALGORITHMS[algorithm], merge_plan_options(plan, options)
        )

    def query_many(
        self,
        requests: Iterable,
        *,
        algorithm: str = "auto",
        workers: int | None = None,
        **common_options,
    ):
        """Answer a batch of queries against shared preparations.

        Each request is ``(dataset, k)``, ``(dataset, k, algorithm)`` or a
        dict with ``dataset``/``k`` and optional ``algorithm``/``options``.
        The expected repeat count handed to the planner is the batch size,
        so index builds amortised across the sweep are priced as such.
        ``algorithm="auto"`` requests are resolved against this session's
        cache state *before* execution begins, so the chosen algorithms —
        and therefore the answers — do not depend on *workers*.

        ``workers=N`` (opt-in, N >= 2) shards the batch across a process
        pool: each worker rebuilds its preparations fork-safely in its own
        session, and the parent merges results (and worker cache counters)
        back into this engine's LRU result cache. Requests the parent can
        already answer from cache are never shipped. Answers are
        bit-identical to the sequential path under deterministic
        tie-breaking.
        """
        materialised = [self._coerce_request(req, algorithm) for req in requests]
        repeats = max(len(materialised), 1)
        resolved = []
        for dataset, k, request_algorithm, request_options in materialised:
            options = {**common_options, **request_options}
            if request_algorithm.lower() == "auto":
                request_algorithm, options = self._apply_plan(
                    self.plan(dataset, k, repeats=repeats), options
                )
            resolved.append((dataset, k, request_algorithm, options))

        if workers is not None and int(workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if workers is None or int(workers) <= 1 or len(resolved) <= 1:
            # Buffer store writes so the whole batch lands in one
            # lock + atomic rewrite instead of one per computed answer.
            with self._batched_store_writes():
                results = [
                    self.query(dataset, k, algorithm=request_algorithm, **options)
                    for dataset, k, request_algorithm, options in resolved
                ]
        else:
            results = self._query_many_parallel(resolved, int(workers))
        # A batch is a natural persistence point: the planner biases the
        # sweep just refined should survive into the next process.
        self.flush()
        return results

    @contextmanager
    def _batched_store_writes(self):
        """Defer per-query store writes, flushing them as one batch."""
        if self._store is None:
            yield
            return
        with self._lock:
            already_deferring = self._defer_store_writes
            self._defer_store_writes = True
        try:
            yield
        finally:
            if not already_deferring:
                with self._lock:
                    self._defer_store_writes = False
                    pending, self._store_pending = self._store_pending, []
                if pending:
                    self._store.put_results(pending)

    def _query_many_parallel(self, resolved: list, workers: int) -> list:
        """Shard resolved requests across a process pool; merge caches.

        With a :attr:`store`, each shard warm-starts from it twice over:
        the parent serves every request the store already holds without
        shipping it, and the workers (which open the same store) write
        their fresh answers back, so the next run — in *any* process —
        starts warm.
        """
        from concurrent.futures import ProcessPoolExecutor

        results: list = [None] * len(resolved)
        pending: list[int] = []
        keys: list[tuple | None] = [None] * len(resolved)
        for position, (dataset, k, request_algorithm, options) in enumerate(resolved):
            with self._lock:
                self.stats.queries += 1
            tie_break = options.get("tie_break", "index")
            if tie_break == "index":
                # Mirror query(): tie_break/rng/repeats bind to named
                # parameters there and never reach the cache key.
                constructor_options = {
                    name: value
                    for name, value in options.items()
                    if name not in ("tie_break", "rng", "repeats")
                }
                keys[position] = (
                    self.fingerprint(dataset),
                    int(k),
                    request_algorithm.lower(),
                    _options_key(constructor_options),
                )
                with self._lock:
                    cached = self._results.get(keys[position], _MISSING)
                    if cached is not _MISSING:
                        self.stats.result_hits += 1
                        results[position] = cached
                        continue
                    # Mirror query(): only cacheable queries count hits/misses.
                    self.stats.result_misses += 1
                if self._store is not None:
                    stored = self._store.get_result(*keys[position])
                    with self._lock:
                        if stored is not None:
                            self.stats.store_hits += 1
                            self.stats.evictions += self._results.put(keys[position], stored)
                        else:
                            self.stats.store_misses += 1
                    if stored is not None:
                        results[position] = stored
                        continue
            pending.append(position)

        if pending:
            shard_count = min(workers, len(pending))
            # Contiguous shards keep a sweep's repeated datasets on one
            # worker, so each dataset is pickled and prepared once there.
            base, extra = divmod(len(pending), shard_count)
            shards, start = [], 0
            for j in range(shard_count):
                size = base + (1 if j < extra else 0)
                if size:
                    shards.append(pending[start : start + size])
                start += size
            store_dir = str(self._store.directory) if self._store is not None else None
            payloads = [
                ([resolved[position] for position in shard], store_dir) for shard in shards
            ]
            with ProcessPoolExecutor(max_workers=len(shards)) as pool:
                for shard, (answers, worker_stats) in zip(
                    shards, pool.map(_answer_shard, payloads)
                ):
                    # The parent already counted these queries/misses (and
                    # probed the store itself); keep only the work counters
                    # the workers actually added, e.g. their store writes.
                    worker_stats.queries = 0
                    worker_stats.result_hits = 0
                    worker_stats.result_misses = 0
                    worker_stats.store_hits = 0
                    worker_stats.store_misses = 0
                    with self._lock:
                        self.stats.merge(worker_stats)
                        for position, answer in zip(shard, answers):
                            results[position] = answer
                            if keys[position] is not None:
                                self.stats.evictions += self._results.put(
                                    keys[position], answer
                                )
        return results

    @staticmethod
    def _coerce_request(request, default_algorithm: str):
        if isinstance(request, dict):
            try:
                dataset, k = request["dataset"], request["k"]
            except KeyError as missing:
                raise InvalidParameterError(
                    f"query_many dict requests need 'dataset' and 'k'; missing {missing}"
                ) from None
            return (
                dataset,
                k,
                request.get("algorithm", default_algorithm),
                dict(request.get("options", {})),
            )
        if (
            isinstance(request, Sequence)
            and not isinstance(request, (str, bytes))
            and 2 <= len(request) <= 3
        ):
            dataset, k = request[0], request[1]
            request_algorithm = request[2] if len(request) == 3 else default_algorithm
            return dataset, k, request_algorithm, {}
        raise InvalidParameterError(
            "query_many requests must be (dataset, k[, algorithm]) tuples or dicts"
        )

    # -- maintenance --------------------------------------------------------

    def clear(self, *, shared: bool = False) -> None:
        """Drop this session's cached preparations, results and fingerprints.

        Session-owned state only by default: the *process-wide shared*
        prepared-dataset cache is left alone — other sessions (and
        module-level kernel calls) may be serving from it — unless
        ``shared=True`` requests the old scorched-earth behaviour. A
        private ``dataset_cache`` passed at construction is session-owned
        and always cleared. The persistent store is never touched here;
        use :meth:`PersistentStore.clear` (or ``repro cache clear``).
        """
        with self._lock:
            self._prepared.clear()
            self._results.clear()
            self._fingerprints.clear()
        if shared or self._dataset_cache is not _shared_dataset_cache:
            self._dataset_cache.clear()

    def flush(self) -> None:
        """Persist the planner calibration to the store (no-op without one).

        Result entries are written as they are computed; the calibration
        snapshot is flushed here (and automatically at the end of every
        :meth:`query_many` batch) to keep store writes off the per-query
        path.
        """
        if self._store is not None:
            self._store.save_planner(calibration_state())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryEngine prepared={len(self._prepared)}/{self._prepared.capacity} "
            f"results={len(self._results)}/{self._results.capacity}>"
        )


def _answer_shard(payload: tuple) -> tuple[list, EngineStats]:
    """Process-pool worker: answer one shard in a fresh session.

    Runs in a separate process, so every preparation (indexes, queues,
    bitset tables) is rebuilt locally — fork-safe by construction, since
    nothing mutable is shared with the parent. Algorithms arrive already
    resolved (never ``"auto"``), so the answers cannot depend on this
    worker's planner state. When the parent has a store, the worker opens
    the same directory (advisory locking makes the concurrent writers
    safe) and persists its answers as one batch at shard end.
    """
    shard, store_dir = payload
    engine = QueryEngine(dataset_cache=PreparedDatasetCache(), store=store_dir)
    with engine._batched_store_writes():
        answers = [
            engine.query(dataset, k, algorithm=algorithm, **options)
            for dataset, k, algorithm, options in shard
        ]
    return answers, engine.stats
