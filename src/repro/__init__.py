"""repro — Top-k dominating (TKD) queries on incomplete data.

A complete, from-scratch reproduction of

    Xiaoye Miao, Yunjun Gao, Baihua Zheng, Gang Chen, Huiyong Cui.
    "Top-k Dominating Queries on Incomplete Data."
    IEEE TKDE 28(1):252–266, 2016.

Quickstart::

    from repro import IncompleteDataset, top_k_dominating

    ds = IncompleteDataset.from_rows(
        [[5, None, 3], [1, 2, None], [None, 1, 1]],
        directions="max",            # larger is better (e.g. ratings)
    )
    result = top_k_dominating(ds, k=2, algorithm="big")
    for index, score in result:
        print(ds.ids[index], score)

The five algorithms of the paper are available by name: ``"naive"``,
``"esb"``, ``"ubb"``, ``"big"``, and ``"ibig"`` — see
:mod:`repro.core.query` — plus ``"auto"``, which lets the engine's cost
model choose. For repeated or parametrised queries, reuse one
:class:`repro.engine.QueryEngine` session::

    from repro import QueryEngine

    engine = QueryEngine()
    for k in (4, 8, 16):
        result = engine.query(ds, k)   # indexes built once, results cached

Substrates (blocked dominance kernels, bitmap indexes, WAH/CONCISE
compression, B+-trees, skybands, dataset simulators, imputation) live in
their own subpackages and are fully public.
"""

from .core.constrained import constrained_tkd, group_by_tkd
from .core.dataset import IncompleteDataset
from .core.delta import DatasetDelta, DatasetVersion
from .core.dominance import comparable, dominates
from .core.mfd import top_k_dominating_mfd
from .core.partitioned import PartitionedTKD, partitioned_tkd
from .core.query import (
    ALGORITHMS,
    available_algorithms,
    make_algorithm,
    top_k_dominating,
)
from .core.result import TKDResult
from .core.score import score_all, score_one
from .core.stats import QueryStats
from .core.streaming import StreamingTKD
from .core.subspace import subspace_tkd
from .engine import (
    ContinuousQuery,
    DeltaPlan,
    PartitionPlan,
    PartitionedDataset,
    PersistentStore,
    QueryEngine,
    QueryPlan,
    plan_delta,
    plan_partitioned,
    plan_query,
)
from .errors import (
    DataError,
    DuplicateObjectError,
    InvalidParameterError,
    QueryError,
    ReproError,
    UnknownAlgorithmError,
)

__version__ = "1.0.0"

__all__ = [
    "IncompleteDataset",
    "top_k_dominating",
    "top_k_dominating_mfd",
    "subspace_tkd",
    "constrained_tkd",
    "group_by_tkd",
    "partitioned_tkd",
    "PartitionedTKD",
    "StreamingTKD",
    "DatasetDelta",
    "DatasetVersion",
    "make_algorithm",
    "available_algorithms",
    "ALGORITHMS",
    "QueryEngine",
    "ContinuousQuery",
    "QueryPlan",
    "DeltaPlan",
    "PartitionPlan",
    "PartitionedDataset",
    "plan_delta",
    "plan_partitioned",
    "PersistentStore",
    "plan_query",
    "TKDResult",
    "QueryStats",
    "dominates",
    "comparable",
    "score_one",
    "score_all",
    "ReproError",
    "DataError",
    "QueryError",
    "InvalidParameterError",
    "DuplicateObjectError",
    "UnknownAlgorithmError",
    "__version__",
]
