"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish data problems from query problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataError",
    "EmptyDatasetError",
    "AllMissingObjectError",
    "DimensionMismatchError",
    "QueryError",
    "InvalidParameterError",
    "DuplicateObjectError",
    "UnknownAlgorithmError",
    "IndexBuildError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataError(ReproError):
    """A dataset is malformed or violates the incomplete-data model."""


class EmptyDatasetError(DataError):
    """Raised when a dataset with zero objects or zero dimensions is built."""


class AllMissingObjectError(DataError):
    """Raised for an object with no observed dimension.

    The paper's model (Section 3) only considers objects with at least one
    observed dimensional value; such objects can never dominate nor be
    dominated and would silently distort scores.
    """


class DimensionMismatchError(DataError):
    """Raised when rows, masks, names, or directions disagree on ``d``."""


class QueryError(ReproError):
    """A query cannot be answered as specified."""


class InvalidParameterError(QueryError):
    """A query or construction parameter is out of its legal range."""


class DuplicateObjectError(DataError, InvalidParameterError):
    """An object id collides with one that already exists.

    Raised when a dataset is built with repeated ids and when an insert
    batch (``DatasetDelta``, ``StreamingTKD.insert``, ``QueryEngine.insert``)
    reuses a live id. Derives from both :class:`DataError` (it is an
    identity problem in the data model) and :class:`InvalidParameterError`
    (the historical type callers caught), so existing handlers keep
    working.
    """


class UnknownAlgorithmError(QueryError):
    """The requested algorithm name is not in the registry."""


class IndexBuildError(ReproError):
    """An index (bitmap, binned bitmap, B+-tree) could not be built."""
