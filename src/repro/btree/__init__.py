"""B+-tree substrate (order statistics + leaf-linked range scans)."""

from .bptree import BPlusTree

__all__ = ["BPlusTree"]
