"""A B+-tree with order statistics, duplicates, and leaf-linked range scans.

The paper leans on B+-trees twice:

* ``MaxScore`` "can be calculated at O(N·lg N) cost based on the B+-tree
  structure" (Section 4.2) — that needs *order statistics*, i.e. counting
  how many entries are ≥ a key without scanning, so every node here caches
  the payload count of its subtree;
* IBIG locates a bin's lower boundary in ``log(σN)`` and then walks
  ``⌈σN/ξ⌉ − 1`` keys sequentially (Section 4.5's cost model) — that needs
  linked leaves and cheap in-order range scans.

Keys are floats; duplicate keys are aggregated into one slot holding a
list of payloads (object row indices in this library). Deletion implements
full borrow/merge rebalancing. :meth:`BPlusTree.validate` checks every
structural invariant and is exercised by the property-based test-suite.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator

from ..errors import InvalidParameterError

__all__ = ["BPlusTree"]

#: Sentinel meaning "delete any one payload under the key".
_ANY = object()


class _Leaf:
    __slots__ = ("keys", "values", "next", "size")

    def __init__(self) -> None:
        self.keys: list[float] = []
        self.values: list[list] = []
        self.next: _Leaf | None = None
        self.size = 0

    is_leaf = True

    def recount(self) -> None:
        self.size = sum(len(bucket) for bucket in self.values)


class _Internal:
    __slots__ = ("keys", "children", "size")

    def __init__(self) -> None:
        self.keys: list[float] = []
        self.children: list = []
        self.size = 0

    is_leaf = False

    def recount(self) -> None:
        self.size = sum(child.size for child in self.children)


class BPlusTree:
    """Order-``order`` B+-tree mapping float keys to payload lists."""

    def __init__(self, order: int = 32) -> None:
        if order < 4:
            raise InvalidParameterError(f"order must be >= 4, got {order}")
        self._order = int(order)
        self._min_keys = self._order // 2
        self._root: _Leaf | _Internal = _Leaf()
        self._height = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(cls, pairs: Iterable[tuple[float, object]], order: int = 32) -> "BPlusTree":
        """Build a tree from ``(key, payload)`` pairs sorted by key.

        Runs in linear time; raises if the keys are out of order.
        """
        tree = cls(order=order)
        keys: list[float] = []
        buckets: list[list] = []
        previous = None
        for key, payload in pairs:
            key = float(key)
            if previous is not None and key < previous:
                raise InvalidParameterError("bulk_load requires key-sorted input")
            if previous is not None and key == previous:
                buckets[-1].append(payload)
            else:
                keys.append(key)
                buckets.append([payload])
            previous = key
        if not keys:
            return tree

        fill = max(tree._min_keys, (tree._order * 3) // 4)
        leaves: list[_Leaf] = []
        start = 0
        for size in _balanced_chunks(len(keys), tree._order, fill, tree._min_keys):
            leaf = _Leaf()
            leaf.keys = keys[start : start + size]
            leaf.values = buckets[start : start + size]
            leaf.recount()
            leaves.append(leaf)
            start += size
        for a, b in zip(leaves, leaves[1:]):
            a.next = b

        level: list = leaves
        height = 1
        max_children = tree._order + 1
        min_children = tree._min_keys + 1
        target_children = max(min_children, (max_children * 3) // 4)
        while len(level) > 1:
            parents: list = []
            start = 0
            for size in _balanced_chunks(len(level), max_children, target_children, min_children):
                chunk = level[start : start + size]
                start += size
                node = _Internal()
                node.children = chunk
                node.keys = [_subtree_min(child) for child in chunk[1:]]
                node.recount()
                parents.append(node)
            level = parents
            height += 1
        tree._root = level[0]
        tree._height = height
        return tree

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: float, payload) -> None:
        """Insert one ``(key, payload)`` entry (duplicates allowed)."""
        key = float(key)
        split = self._insert(self._root, key, payload)
        if split is not None:
            separator, right = split
            root = _Internal()
            root.keys = [separator]
            root.children = [self._root, right]
            root.recount()
            self._root = root
            self._height += 1

    def _insert(self, node, key: float, payload):
        if node.is_leaf:
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(payload)
            else:
                node.keys.insert(idx, key)
                node.values.insert(idx, [payload])
            node.size += 1
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None

        idx = bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, payload)
        node.size += 1
        if split is not None:
            separator, right = split
            node.keys.insert(idx, separator)
            node.children.insert(idx + 1, right)
            if len(node.keys) > self._order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Leaf):
        mid = len(node.keys) // 2
        right = _Leaf()
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        node.recount()
        right.recount()
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        node.recount()
        right.recount()
        return separator, right

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key: float, payload=_ANY) -> bool:
        """Remove one entry under *key*.

        With the default sentinel any one payload is removed; otherwise the
        first payload equal to *payload*. Returns False when nothing
        matched.
        """
        key = float(key)
        removed = self._delete(self._root, key, payload)
        if removed and not self._root.is_leaf and not self._root.keys:
            self._root = self._root.children[0]
            self._height -= 1
        return removed

    def _delete(self, node, key: float, payload) -> bool:
        if node.is_leaf:
            idx = bisect_left(node.keys, key)
            if idx >= len(node.keys) or node.keys[idx] != key:
                return False
            bucket = node.values[idx]
            if payload is _ANY:
                bucket.pop()
            else:
                try:
                    bucket.remove(payload)
                except ValueError:
                    return False
            if not bucket:
                node.keys.pop(idx)
                node.values.pop(idx)
            node.size -= 1
            return True

        idx = bisect_right(node.keys, key)
        removed = self._delete(node.children[idx], key, payload)
        if removed:
            node.size -= 1
            child = node.children[idx]
            if len(child.keys) < self._min_keys:
                self._rebalance(node, idx)
        return removed

    def _rebalance(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1] if idx > 0 else None
        right = parent.children[idx + 1] if idx + 1 < len(parent.children) else None

        if left is not None and len(left.keys) > self._min_keys:
            self._borrow_from_left(parent, idx, left, child)
        elif right is not None and len(right.keys) > self._min_keys:
            self._borrow_from_right(parent, idx, child, right)
        elif left is not None:
            self._merge(parent, idx - 1, left, child)
        else:
            self._merge(parent, idx, child, right)

    @staticmethod
    def _borrow_from_left(parent, idx, left, child) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            moved = len(child.values[0])
            parent.keys[idx - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            node = left.children.pop()
            child.children.insert(0, node)
            moved = node.size
        left.size -= moved
        child.size += moved

    @staticmethod
    def _borrow_from_right(parent, idx, child, right) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            moved = len(child.values[-1])
            parent.keys[idx] = right.keys[0]
        else:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            node = right.children.pop(0)
            child.children.append(node)
            moved = node.size
        right.size -= moved
        child.size += moved

    @staticmethod
    def _merge(parent, left_idx, left, right) -> None:
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        left.size += right.size
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def search(self, key: float) -> list:
        """Payloads stored under *key* (empty list when absent)."""
        key = float(key)
        node = self._root
        while not node.is_leaf:
            node = node.children[bisect_right(node.keys, key)]
        idx = bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return list(node.values[idx])
        return []

    def __contains__(self, key: float) -> bool:
        return bool(self.search(float(key)))

    def range_scan(
        self,
        low: float | None = None,
        high: float | None = None,
        *,
        include_low: bool = True,
        include_high: bool = False,
    ) -> Iterator[tuple[float, object]]:
        """Yield ``(key, payload)`` in key order over ``[low, high)``.

        Bounds default to open ends; inclusivity flags match the IBIG use
        case of scanning a bin's ``[lower_edge, o_value)`` prefix.
        """
        node = self._root
        probe = low if low is not None else float("-inf")
        while not node.is_leaf:
            node = node.children[bisect_right(node.keys, probe) if low is not None else 0]
        idx = 0
        if low is not None:
            idx = bisect_left(node.keys, low) if include_low else bisect_right(node.keys, low)
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if high is not None and (key > high or (key == high and not include_high)):
                    return
                for payload in node.values[idx]:
                    yield key, payload
                idx += 1
            node = node.next
            idx = 0

    # ------------------------------------------------------------------
    # Order statistics
    # ------------------------------------------------------------------

    def count_less(self, key: float, *, inclusive: bool = False) -> int:
        """Number of entries with ``k < key`` (``k ≤ key`` when inclusive)."""
        key = float(key)
        node = self._root
        acc = 0
        while not node.is_leaf:
            idx = bisect_right(node.keys, key)
            for child in node.children[:idx]:
                acc += child.size
            node = node.children[idx]
        leaf_idx = bisect_right(node.keys, key) if inclusive else bisect_left(node.keys, key)
        for bucket in node.values[:leaf_idx]:
            acc += len(bucket)
        return acc

    def count_greater_equal(self, key: float) -> int:
        """Number of entries with ``k ≥ key`` — the |T_i(o)| building block."""
        return self.size - self.count_less(key)

    def count_range(
        self,
        low: float,
        high: float,
        *,
        include_low: bool = True,
        include_high: bool = False,
    ) -> int:
        """Entries within the given key interval, via two rank queries."""
        upper = self.count_less(high, inclusive=include_high)
        lower = self.count_less(low, inclusive=not include_low)
        return max(0, upper - lower)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Total payload entries stored."""
        return self._root.size

    def __len__(self) -> int:
        return self.size

    @property
    def height(self) -> int:
        """Levels from root to leaves (a lone leaf has height 1)."""
        return self._height

    @property
    def order(self) -> int:
        """Maximum keys per node."""
        return self._order

    def keys(self) -> Iterator[float]:
        """All distinct keys in ascending order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from node.keys
            node = node.next

    def items(self) -> Iterator[tuple[float, object]]:
        """All entries in key order."""
        return self.range_scan()

    def min_key(self) -> float | None:
        """Smallest key, or None when empty."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0] if node.keys else None

    def max_key(self) -> float | None:
        """Largest key, or None when empty."""
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1] if node.keys else None

    # ------------------------------------------------------------------
    # Invariant checking (test support)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Assert every B+-tree invariant; raises AssertionError on breakage."""
        leaf_depths: set[int] = set()
        self._validate_node(self._root, None, None, 1, leaf_depths, is_root=True)
        assert len(leaf_depths) <= 1, f"leaves at different depths: {leaf_depths}"
        if leaf_depths:
            assert leaf_depths == {self._height}, "cached height is wrong"
        # Leaf chain must be globally sorted and complete.
        chained = list(self.keys())
        assert chained == sorted(chained), "leaf chain out of order"
        assert len(set(chained)) == len(chained), "duplicate key slots"

    def _validate_node(self, node, low, high, depth, leaf_depths, *, is_root=False) -> int:
        assert node.keys == sorted(node.keys), "node keys unsorted"
        for key in node.keys:
            if low is not None:
                assert key >= low, "key below subtree lower bound"
            if high is not None:
                assert key < high, "key above subtree upper bound"
        if node.is_leaf:
            leaf_depths.add(depth)
            assert len(node.keys) == len(node.values)
            assert node.size == sum(len(b) for b in node.values), "leaf size cache wrong"
            if not is_root:
                assert len(node.keys) >= self._min_keys, "leaf underfull"
            assert all(bucket for bucket in node.values), "empty payload bucket"
            return node.size
        assert len(node.children) == len(node.keys) + 1, "fanout mismatch"
        if not is_root:
            assert len(node.keys) >= self._min_keys, "internal underfull"
        else:
            assert len(node.keys) >= 1, "internal root must have a key"
        total = 0
        bounds = [low, *node.keys, high]
        for i, child in enumerate(node.children):
            total += self._validate_node(child, bounds[i], bounds[i + 1], depth + 1, leaf_depths)
        assert node.size == total, "internal size cache wrong"
        return total


def _subtree_min(node) -> float:
    while not node.is_leaf:
        node = node.children[0]
    return node.keys[0]


def _balanced_chunks(total: int, max_per: int, target: int, min_per: int) -> list[int]:
    """Split *total* items into chunk sizes within ``[min_per, max_per]``.

    Uses the *target* fill to pick the chunk count, then balances so no
    chunk can underflow (a single chunk is allowed any size ≤ max_per).
    """
    if total <= max_per:
        return [total] if total else []
    n_chunks = -(-total // target)  # ceil
    n_chunks = max(2, min(n_chunks, total // min_per))
    base, extra = divmod(total, n_chunks)
    return [base + (1 if i < extra else 0) for i in range(n_chunks)]
