"""WAH — Word-Aligned Hybrid bitmap compression (Wu, Otoo & Shoshani).

32-bit words, two kinds:

* **literal**  — MSB 0, the low 31 bits hold one verbatim block;
* **fill**     — MSB 1, bit 30 is the fill bit, bits 0–29 count how many
  consecutive 31-bit blocks of that bit the word covers.

The paper evaluates WAH against CONCISE (Fig. 10) and concludes both help
only marginally on its range-encoded columns; we reproduce that comparison
with this codec.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ._blocks import ALL_ONES, bitvector_from_blocks, blocks_from_bitvector, runs_from_blocks
from .bitvector import BitVector

__all__ = ["WAHBitmap"]

_FILL_FLAG = 0x8000_0000
_FILL_BIT = 0x4000_0000
_MAX_FILL = (1 << 30) - 1


class WAHBitmap:
    """A WAH-compressed immutable bitmap."""

    scheme = "wah"

    def __init__(self, words: np.ndarray, nbits: int) -> None:
        self._words = np.asarray(words, dtype=np.uint32)
        self._nbits = int(nbits)

    # -- codec ------------------------------------------------------------

    @classmethod
    def compress(cls, vec: BitVector) -> "WAHBitmap":
        """Encode a plain bitvector."""
        words: list[int] = []
        for value, count in runs_from_blocks(blocks_from_bitvector(vec)):
            if count == 1 and value not in (0, ALL_ONES):
                words.append(value)
                continue
            fill_bit = _FILL_BIT if value == ALL_ONES else 0
            remaining = count
            while remaining:
                take = min(remaining, _MAX_FILL)
                words.append(_FILL_FLAG | fill_bit | take)
                remaining -= take
        return cls(np.asarray(words, dtype=np.uint32), len(vec))

    def decompress(self) -> BitVector:
        """Decode back to a plain bitvector."""
        blocks: list[int] = []
        for word in self._words.tolist():
            if word & _FILL_FLAG:
                value = ALL_ONES if word & _FILL_BIT else 0
                blocks.extend([value] * (word & _MAX_FILL))
            else:
                blocks.append(word)
        return bitvector_from_blocks(np.asarray(blocks, dtype=np.uint32), self._nbits)

    # -- run access ---------------------------------------------------------

    def iter_runs(self):
        """Yield ``(block_value, count)`` runs without materialising blocks."""
        for word in self._words.tolist():
            if word & _FILL_FLAG:
                yield (ALL_ONES if word & _FILL_BIT else 0), word & _MAX_FILL
            else:
                yield word, 1

    # -- compressed-domain operations ------------------------------------------

    def logical_and(self, other: "WAHBitmap") -> "WAHBitmap":
        """AND two compressed bitmaps without full decompression."""
        return self._combine(other, lambda a, b: a & b)

    def logical_or(self, other: "WAHBitmap") -> "WAHBitmap":
        """OR two compressed bitmaps without full decompression."""
        return self._combine(other, lambda a, b: a | b)

    __and__ = logical_and
    __or__ = logical_or

    def _combine(self, other: "WAHBitmap", op) -> "WAHBitmap":
        if not isinstance(other, WAHBitmap):
            raise InvalidParameterError(f"expected WAHBitmap, got {type(other).__name__}")
        if other._nbits != self._nbits:
            raise InvalidParameterError(f"length mismatch: {self._nbits} vs {other._nbits}")
        out_words: list[int] = []
        pending: tuple[int, int] | None = None  # (fill value, blocks)

        def emit(value: int, count: int) -> None:
            nonlocal pending
            if value in (0, ALL_ONES):
                if pending is not None and pending[0] == value:
                    pending = (value, pending[1] + count)
                    return
                _flush(pending, out_words)
                pending = (value, count)
            else:
                _flush(pending, out_words)
                pending = None
                out_words.append(value)

        left = _RunCursor(self.iter_runs())
        right = _RunCursor(other.iter_runs())
        while left.active and right.active:
            # A literal run always has remaining == 1, so a multi-block take
            # only happens fill-vs-fill, where op output is a fill too.
            take = min(left.remaining, right.remaining)
            emit(op(left.value, right.value), take)
            left.advance(take)
            right.advance(take)
        _flush(pending, out_words)
        return WAHBitmap(np.asarray(out_words, dtype=np.uint32), self._nbits)

    # -- measurement ------------------------------------------------------------

    def count(self) -> int:
        """Popcount straight off the compressed words.

        Padding bits in the final partial block are always zero by
        construction (the codec only ever sees tail-masked bitvectors), so
        no clipping is needed here.
        """
        total = 0
        for value, count in self.iter_runs():
            if value == 0:
                continue
            if value == ALL_ONES:
                total += 31 * count
            else:
                total += int(value).bit_count()
        return total

    @property
    def nbits(self) -> int:
        """Logical (uncompressed) length in bits."""
        return self._nbits

    @property
    def words(self) -> np.ndarray:
        """The 32-bit compressed words."""
        return self._words

    @property
    def word_count(self) -> int:
        """Number of 32-bit words."""
        return int(self._words.size)

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes."""
        return self.word_count * 4

    def __eq__(self, other) -> bool:
        if not isinstance(other, WAHBitmap):
            return NotImplemented
        return self._nbits == other._nbits and self.decompress() == other.decompress()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<WAHBitmap nbits={self._nbits} words={self.word_count}>"


class _RunCursor:
    """Stateful walker over ``(value, count)`` runs."""

    __slots__ = ("_iter", "value", "remaining", "active")

    def __init__(self, runs) -> None:
        self._iter = iter(runs)
        self.value = 0
        self.remaining = 0
        self.active = True
        self.advance(0)

    def advance(self, used: int) -> None:
        self.remaining -= used
        while self.remaining <= 0:
            try:
                self.value, self.remaining = next(self._iter)
            except StopIteration:
                self.active = False
                return


def _flush(pending, out_words: list[int]) -> None:
    if pending is None:
        return
    value, count = pending
    fill_bit = _FILL_BIT if value == ALL_ONES else 0
    while count:
        take = min(count, _MAX_FILL)
        out_words.append(_FILL_FLAG | fill_bit | take)
        count -= take
