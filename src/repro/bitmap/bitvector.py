"""Packed bitvectors — the library's "fast bit-wise operation" primitive.

The paper's BIG/IBIG algorithms live and die by cheap AND/OR/NOT and
popcounts over N-bit vertical vectors (``[Qi]``, ``[Pi]``, bucket masks,
``F(o)`` masks). :class:`BitVector` stores bits packed 8-per-byte in a
NumPy ``uint8`` array (little bit-order: bit ``j`` lives at
``byte j >> 3``, position ``j & 7``), so a single vectorised instruction
processes 8 object-bits and ``numpy.bitwise_count`` delivers population
counts without unpacking.

Invariant: all padding bits beyond ``len(self)`` are always zero, so
``count()`` and equality never see garbage.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["BitVector"]


def _buffer_size(nbits: int) -> int:
    return (nbits + 7) >> 3


def _tail_mask(nbits: int) -> int:
    """Mask for the valid bits of the final byte (0xFF when byte-aligned)."""
    rem = nbits & 7
    return 0xFF if rem == 0 else (1 << rem) - 1


class BitVector:
    """A fixed-length bit array with vectorised boolean algebra.

    Most callers construct via :meth:`zeros`, :meth:`ones`,
    :meth:`from_bools`, or :meth:`from_indices`, then combine with the
    operators ``& | ^ ~`` (all length-preserving, padding-safe) and measure
    with :meth:`count`.
    """

    __slots__ = ("_bits", "_nbits")

    def __init__(self, nbits: int, buffer: np.ndarray | None = None) -> None:
        if nbits < 0:
            raise InvalidParameterError(f"nbits must be >= 0, got {nbits}")
        self._nbits = int(nbits)
        if buffer is None:
            self._bits = np.zeros(_buffer_size(nbits), dtype=np.uint8)
        else:
            buffer = np.asarray(buffer, dtype=np.uint8)
            if buffer.size != _buffer_size(nbits):
                raise InvalidParameterError(
                    f"buffer has {buffer.size} bytes, expected {_buffer_size(nbits)} for {nbits} bits"
                )
            self._bits = buffer.copy()
            self._mask_tail()

    # -- constructors ----------------------------------------------------

    @classmethod
    def zeros(cls, nbits: int) -> "BitVector":
        """All-clear vector of *nbits* bits."""
        return cls(nbits)

    @classmethod
    def ones(cls, nbits: int) -> "BitVector":
        """All-set vector of *nbits* bits."""
        vec = cls(nbits)
        vec._bits[:] = 0xFF
        vec._mask_tail()
        return vec

    @classmethod
    def from_bools(cls, flags) -> "BitVector":
        """Pack a boolean sequence/array (index ``j`` becomes bit ``j``)."""
        arr = np.asarray(flags, dtype=bool)
        if arr.ndim != 1:
            raise InvalidParameterError(f"expected 1-D booleans, got shape {arr.shape}")
        vec = cls(arr.size)
        if arr.size:
            vec._bits = np.packbits(arr, bitorder="little")
        return vec

    @classmethod
    def from_indices(cls, nbits: int, indices: Iterable[int]) -> "BitVector":
        """Vector with exactly the given bit positions set."""
        vec = cls(nbits)
        for j in indices:
            vec.set(int(j))
        return vec

    @classmethod
    def from_bitstring(cls, text: str) -> "BitVector":
        """Parse ``"0101…"`` with character ``j`` mapping to bit ``j``.

        Matches the paper's printed vectors, e.g. Fig. 6's
        ``[Q3] = 00011001011111111111`` where the first character is object
        ``A1``.
        """
        cleaned = text.strip()
        if set(cleaned) - {"0", "1"}:
            raise InvalidParameterError(f"bitstring may only contain 0/1, got {text!r}")
        return cls.from_bools([ch == "1" for ch in cleaned])

    # -- internals ---------------------------------------------------------

    def _mask_tail(self) -> None:
        if self._bits.size:
            self._bits[-1] &= _tail_mask(self._nbits)

    def _check_same_length(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise InvalidParameterError(f"expected a BitVector, got {type(other).__name__}")
        if other._nbits != self._nbits:
            raise InvalidParameterError(
                f"length mismatch: {self._nbits} vs {other._nbits} bits"
            )

    # -- element access ----------------------------------------------------

    def __len__(self) -> int:
        return self._nbits

    def get(self, j: int) -> bool:
        """Read bit *j*."""
        self._check_position(j)
        return bool((self._bits[j >> 3] >> (j & 7)) & 1)

    def set(self, j: int, value: bool = True) -> None:
        """Write bit *j*."""
        self._check_position(j)
        if value:
            self._bits[j >> 3] |= np.uint8(1 << (j & 7))
        else:
            self._bits[j >> 3] &= np.uint8(~(1 << (j & 7)) & 0xFF)

    def _check_position(self, j: int) -> None:
        if j < 0 or j >= self._nbits:
            raise InvalidParameterError(f"bit {j} outside [0, {self._nbits})")

    # -- algebra -------------------------------------------------------------

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        out = BitVector(self._nbits)
        np.bitwise_and(self._bits, other._bits, out=out._bits)
        return out

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        out = BitVector(self._nbits)
        np.bitwise_or(self._bits, other._bits, out=out._bits)
        return out

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        out = BitVector(self._nbits)
        np.bitwise_xor(self._bits, other._bits, out=out._bits)
        return out

    def __invert__(self) -> "BitVector":
        out = BitVector(self._nbits)
        np.bitwise_not(self._bits, out=out._bits)
        out._mask_tail()
        return out

    def andnot(self, other: "BitVector") -> "BitVector":
        """``self & ~other`` without materialising the complement."""
        self._check_same_length(other)
        out = BitVector(self._nbits)
        np.bitwise_and(self._bits, np.bitwise_not(other._bits), out=out._bits)
        out._mask_tail()
        return out

    def iand(self, other: "BitVector") -> "BitVector":
        """In-place AND (returns self)."""
        self._check_same_length(other)
        np.bitwise_and(self._bits, other._bits, out=self._bits)
        return self

    def ior(self, other: "BitVector") -> "BitVector":
        """In-place OR (returns self)."""
        self._check_same_length(other)
        np.bitwise_or(self._bits, other._bits, out=self._bits)
        return self

    # -- measurement -----------------------------------------------------------

    def count(self) -> int:
        """Population count (number of set bits)."""
        if not self._bits.size:
            return 0
        # The bitmap layer sits below the engine; routing this cold,
        # whole-vector popcount through engine/backend.py would invert the
        # layering for no hot-loop win.
        # repro-lint: disable=REP005 -- bitmap layer is below the backend
        return int(np.bitwise_count(self._bits).sum())

    def any(self) -> bool:
        """True iff at least one bit is set."""
        return bool(self._bits.any())

    def to_bools(self) -> np.ndarray:
        """Unpack to a boolean array of length ``len(self)``."""
        if not self._bits.size:
            return np.zeros(0, dtype=bool)
        return np.unpackbits(self._bits, bitorder="little")[: self._nbits].astype(bool)

    def indices(self) -> np.ndarray:
        """Positions of the set bits, ascending."""
        return np.flatnonzero(self.to_bools())

    def iter_set_bits(self) -> Iterator[int]:
        """Iterate positions of set bits."""
        return iter(self.indices().tolist())

    def to_bitstring(self) -> str:
        """Render as ``"0101…"`` with bit 0 first (paper's print order)."""
        return "".join("1" if flag else "0" for flag in self.to_bools())

    @property
    def nbytes(self) -> int:
        """Bytes of packed storage."""
        return int(self._bits.nbytes)

    @property
    def words(self) -> np.ndarray:
        """Read-only view of the packed ``uint8`` buffer."""
        view = self._bits.view()
        view.flags.writeable = False
        return view

    def copy(self) -> "BitVector":
        """Deep copy."""
        return BitVector(self._nbits, buffer=self._bits)

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._nbits == other._nbits and bool(np.array_equal(self._bits, other._bits))

    def __hash__(self) -> int:
        return hash((self._nbits, self._bits.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._nbits <= 64:
            return f"BitVector({self.to_bitstring()!r})"
        return f"<BitVector nbits={self._nbits} count={self.count()}>"
