"""Bitmap substrates: packed bitvectors, the range-encoded bitmap index,
the binned bitmap index, and the WAH/CONCISE/Roaring compression codecs."""

from .bitvector import BitVector
from .compression import CODECS, get_codec
from .concise import ConciseBitmap
from .index import BitmapIndex
from .roaring import RoaringBitmap
from .wah import WAHBitmap

__all__ = [
    "BitVector",
    "BitmapIndex",
    "CODECS",
    "get_codec",
    "WAHBitmap",
    "ConciseBitmap",
    "RoaringBitmap",
]
