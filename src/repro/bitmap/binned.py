"""The binned bitmap index (paper Section 4.4, Fig. 9).

Identical range encoding to :class:`~repro.bitmap.index.BitmapIndex`, but
positions denote **value bins** rather than individual distinct values:
dimension ``i`` spends ``ξ_i + 1`` bits per object (one for *missing*,
``ξ_i`` for the bins of Eqs. 3–4) instead of ``C_i + 1``. That horizontal
squeeze is IBIG's storage saving.

The price is precision: the same-bin column ``[Qi]`` now admits objects
whose value is *smaller* than o's, so the ``Q − P`` rim must be verified
value-by-value (IBIG-Score, with Heuristic 3's early abort) and Lemma 3's
``MaxBitScore ≤ MaxScore`` guarantee no longer holds. Setting
``ξ_i ≥ C_i`` for every dimension degenerates exactly to the unbinned
index (tested).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dataset import IncompleteDataset
from ..errors import InvalidParameterError
from .binning import BinLayout, compute_bins, optimal_bin_count
from .bitvector import BitVector

__all__ = ["BinnedBitmapIndex"]

_BUILD_SLAB = 128


class _BinnedDimension:
    __slots__ = ("layout", "ranks", "columns", "minimum")

    def __init__(self, layout: BinLayout, ranks: np.ndarray, columns: list[BitVector], minimum: float) -> None:
        self.layout = layout
        self.ranks = ranks
        self.columns = columns
        self.minimum = minimum


class BinnedBitmapIndex:
    """Range-encoded bitmap index over value bins."""

    def __init__(self, dataset: IncompleteDataset, bins: int | Sequence[int]) -> None:
        self.dataset = dataset
        requested = _coerce_bins(bins, dataset.d)
        self._dims: list[_BinnedDimension] = []
        n = dataset.n
        values = dataset.minimized
        observed = dataset.observed

        for dim in range(dataset.d):
            distinct = dataset.distinct_values(dim)
            obs_rows = observed[:, dim]
            col_values = values[obs_rows, dim]
            counts = (
                np.searchsorted(np.sort(col_values), distinct, side="right")
                - np.searchsorted(np.sort(col_values), distinct, side="left")
                if distinct.size
                else np.zeros(0, dtype=np.int64)
            )
            layout = compute_bins(distinct, counts, requested[dim]) if distinct.size else BinLayout(
                upper_edges=np.zeros(0, dtype=np.float64)
            )
            bin_count = layout.bin_count

            ranks = np.full(n, bin_count + 1, dtype=np.int64)  # missing sentinel
            if bin_count:
                ranks[obs_rows] = layout.bin_of(col_values) + 1

            columns: list[BitVector] = []
            for start in range(0, bin_count + 1, _BUILD_SLAB):
                stop = min(start + _BUILD_SLAB, bin_count + 1)
                slab = ranks[None, :] > np.arange(start, stop)[:, None]
                for row in slab:
                    columns.append(BitVector.from_bools(row))
            minimum = float(distinct[0]) if distinct.size else 0.0
            self._dims.append(_BinnedDimension(layout, ranks, columns, minimum))

    @classmethod
    def with_optimal_bins(cls, dataset: IncompleteDataset) -> "BinnedBitmapIndex":
        """Build with the Eq. 8 optimum ``ξ*`` applied to every dimension."""
        xi = optimal_bin_count(dataset.n, dataset.missing_rate)
        return cls(dataset, xi)

    # -- vertical vectors ---------------------------------------------------

    def bin_rank(self, row: int, dim: int) -> int:
        """1-based bin rank of object *row* on *dim* (``ξ_i + 1`` if missing)."""
        return int(self._dims[dim].ranks[row])

    def bin_count(self, dim: int) -> int:
        """``ξ_i``: number of value bins on *dim* (excluding the missing slot)."""
        return self._dims[dim].layout.bin_count

    def bin_lower_edge(self, row: int, dim: int) -> float:
        """Smallest value of the bin object *row* occupies on *dim*."""
        dim_index = self._dims[dim]
        return dim_index.layout.lower_edge(int(dim_index.ranks[row]) - 1, dim_index.minimum)

    def q_vector(self, row: int, dim: int) -> BitVector:
        """``[Qi]``: objects in the same-or-higher bin, or missing."""
        dim_index = self._dims[dim]
        if not self.dataset.observed[row, dim]:
            return BitVector.ones(self.dataset.n)
        return dim_index.columns[int(dim_index.ranks[row]) - 1]

    def p_vector(self, row: int, dim: int) -> BitVector:
        """``[Pi]``: objects in a strictly higher bin, or missing."""
        dim_index = self._dims[dim]
        if not self.dataset.observed[row, dim]:
            return BitVector.ones(self.dataset.n)
        return dim_index.columns[int(dim_index.ranks[row])]

    def q_intersection(self, row: int) -> BitVector:
        """``Q ∪ {o} = ∩_i [Qi]`` (caller strips ``o`` itself)."""
        return self._intersection(row, offset=1)

    def p_intersection(self, row: int) -> BitVector:
        """``P = ∩_i [Pi]``."""
        return self._intersection(row, offset=0)

    def _intersection(self, row: int, *, offset: int) -> BitVector:
        observed = self.dataset.observed
        out: BitVector | None = None
        for dim in range(self.dataset.d):
            if not observed[row, dim]:
                continue
            dim_index = self._dims[dim]
            column = dim_index.columns[int(dim_index.ranks[row]) - offset]
            out = column.copy() if out is None else out.iand(column)
        if out is None:  # pragma: no cover - every object has an observed dim
            raise InvalidParameterError(f"object {row} has no observed dimension")
        return out

    # -- storage accounting -------------------------------------------------

    @property
    def size_bits(self) -> int:
        """Logical size ``Σ_i (ξ_i + 1)·N`` bits (Eq. 5 summed over dims)."""
        n = self.dataset.n
        return sum(len(dim.columns) * n for dim in self._dims)

    @property
    def size_bytes(self) -> int:
        """Packed physical size of all columns."""
        return sum(col.nbytes for dim in self._dims for col in dim.columns)

    def column_count(self, dim: int) -> int:
        """``ξ_i + 1`` positions on *dim*."""
        return len(self._dims[dim].columns)

    def columns(self, dim: int) -> list[BitVector]:
        """All vertical columns of *dim* (position 0 first)."""
        return list(self._dims[dim].columns)

    def horizontal_bits(self, row: int, dim: int) -> str:
        """Fig. 9-style horizontal sub-string for one object/dimension."""
        rank = self.bin_rank(row, dim)
        width = self.column_count(dim)
        return "".join("1" if position < rank else "0" for position in range(width))


def _coerce_bins(bins, d: int) -> list[int]:
    if isinstance(bins, (int, np.integer)):
        if bins < 1:
            raise InvalidParameterError(f"bin count must be >= 1, got {bins}")
        return [int(bins)] * d
    out = [int(x) for x in bins]
    if len(out) != d:
        raise InvalidParameterError(f"expected {d} per-dimension bin counts, got {len(out)}")
    for xi in out:
        if xi < 1:
            raise InvalidParameterError(f"bin count must be >= 1, got {xi}")
    return out
