"""CONCISE — Compressed 'n' Composable Integer Set (Colantonio & Di Pietro).

Like WAH, CONCISE works in 31-bit blocks carried by 32-bit words, but its
fill words can absorb one *dirty bit*:

* **literal**  — MSB 1, low 31 bits verbatim;
* **sequence** — MSB 0; bit 30 is the fill bit; bits 25–29 hold a 5-bit
  ``position``: 0 for a pure fill, or ``p`` to flip bit ``p − 1`` of the
  sequence's **first** block; bits 0–24 count the number of 31-bit blocks
  in the sequence **minus one**.

A lone set bit followed by a run of zeros (ubiquitous in sparse bitmaps)
costs one word here versus two (literal + fill) in WAH — that is the whole
compression-ratio advantage the paper's Fig. 10 reports.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from ._blocks import ALL_ONES, bitvector_from_blocks, blocks_from_bitvector, runs_from_blocks
from .bitvector import BitVector

__all__ = ["ConciseBitmap"]

_LITERAL_FLAG = 0x8000_0000
_FILL_BIT = 0x4000_0000
_POSITION_SHIFT = 25
_POSITION_MASK = 0x1F << _POSITION_SHIFT
_MAX_COUNT = (1 << 25) - 1  # stored count field (blocks - 1)


def _single_set_bit(block: int) -> int | None:
    """Bit index if *block* has exactly one set bit, else None."""
    if block and (block & (block - 1)) == 0:
        return block.bit_length() - 1
    return None


class ConciseBitmap:
    """A CONCISE-compressed immutable bitmap."""

    scheme = "concise"

    def __init__(self, words: np.ndarray, nbits: int) -> None:
        self._words = np.asarray(words, dtype=np.uint32)
        self._nbits = int(nbits)

    # -- codec ----------------------------------------------------------------

    @classmethod
    def compress(cls, vec: BitVector) -> "ConciseBitmap":
        """Encode a plain bitvector."""
        runs = list(runs_from_blocks(blocks_from_bitvector(vec)))
        words: list[int] = []
        i = 0
        while i < len(runs):
            value, count = runs[i]
            if value == 0 or value == ALL_ONES:
                fill_bit = _FILL_BIT if value == ALL_ONES else 0
                _emit_fill(words, fill_bit, position=0, blocks=count)
                i += 1
                continue
            # Dirty block: try to open a mixed sequence with the next run.
            if i + 1 < len(runs):
                next_value, next_count = runs[i + 1]
                flipped = _single_set_bit(value)
                if flipped is not None and next_value == 0:
                    _emit_fill(words, 0, position=flipped + 1, blocks=1 + next_count)
                    i += 2
                    continue
                cleared = _single_set_bit(value ^ ALL_ONES)
                if cleared is not None and next_value == ALL_ONES:
                    _emit_fill(words, _FILL_BIT, position=cleared + 1, blocks=1 + next_count)
                    i += 2
                    continue
            words.append(_LITERAL_FLAG | value)
            i += 1
        return cls(np.asarray(words, dtype=np.uint32), len(vec))

    def decompress(self) -> BitVector:
        """Decode back to a plain bitvector."""
        blocks: list[int] = []
        for value, count in self.iter_runs():
            if count == 1:
                blocks.append(value)
            else:
                blocks.extend([value] * count)
        return bitvector_from_blocks(np.asarray(blocks, dtype=np.uint32), self._nbits)

    def iter_runs(self):
        """Yield ``(block_value, count)`` runs (mixed words yield two runs)."""
        for word in self._words.tolist():
            if word & _LITERAL_FLAG:
                yield (word & ALL_ONES), 1
                continue
            fill = ALL_ONES if word & _FILL_BIT else 0
            position = (word & _POSITION_MASK) >> _POSITION_SHIFT
            blocks = (word & _MAX_COUNT) + 1
            if position:
                yield fill ^ (1 << (position - 1)), 1
                blocks -= 1
            if blocks:
                yield fill, blocks

    # -- compressed-domain operations ---------------------------------------

    def logical_and(self, other: "ConciseBitmap") -> "ConciseBitmap":
        """AND two compressed bitmaps run-by-run."""
        return self._combine(other, lambda a, b: a & b)

    def logical_or(self, other: "ConciseBitmap") -> "ConciseBitmap":
        """OR two compressed bitmaps run-by-run."""
        return self._combine(other, lambda a, b: a | b)

    __and__ = logical_and
    __or__ = logical_or

    def _combine(self, other: "ConciseBitmap", op) -> "ConciseBitmap":
        if not isinstance(other, ConciseBitmap):
            raise InvalidParameterError(f"expected ConciseBitmap, got {type(other).__name__}")
        if other._nbits != self._nbits:
            raise InvalidParameterError(f"length mismatch: {self._nbits} vs {other._nbits}")
        blocks: list[int] = []
        left = _RunCursor(self.iter_runs())
        right = _RunCursor(other.iter_runs())
        while left.active and right.active:
            take = min(left.remaining, right.remaining)
            value = op(left.value, right.value)
            blocks.extend([value] * take)
            left.advance(take)
            right.advance(take)
        return ConciseBitmap.compress(
            bitvector_from_blocks(np.asarray(blocks, dtype=np.uint32), self._nbits)
        )

    # -- measurement ------------------------------------------------------------

    def count(self) -> int:
        """Popcount from the compressed runs."""
        total = 0
        for value, count in self.iter_runs():
            if value == 0:
                continue
            if value == ALL_ONES:
                total += 31 * count
            else:
                total += int(value).bit_count() * count
        return total

    @property
    def nbits(self) -> int:
        """Logical (uncompressed) length in bits."""
        return self._nbits

    @property
    def words(self) -> np.ndarray:
        """The 32-bit compressed words."""
        return self._words

    @property
    def word_count(self) -> int:
        """Number of 32-bit words."""
        return int(self._words.size)

    @property
    def nbytes(self) -> int:
        """Compressed size in bytes."""
        return self.word_count * 4

    def __eq__(self, other) -> bool:
        if not isinstance(other, ConciseBitmap):
            return NotImplemented
        return self._nbits == other._nbits and self.decompress() == other.decompress()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConciseBitmap nbits={self._nbits} words={self.word_count}>"


class _RunCursor:
    """Stateful walker over ``(value, count)`` runs."""

    __slots__ = ("_iter", "value", "remaining", "active")

    def __init__(self, runs) -> None:
        self._iter = iter(runs)
        self.value = 0
        self.remaining = 0
        self.active = True
        self.advance(0)

    def advance(self, used: int) -> None:
        self.remaining -= used
        while self.remaining <= 0:
            try:
                self.value, self.remaining = next(self._iter)
            except StopIteration:
                self.active = False
                return


def _emit_fill(words: list[int], fill_bit: int, *, position: int, blocks: int) -> None:
    """Append sequence word(s) covering *blocks* blocks (splitting if huge)."""
    first = min(blocks, _MAX_COUNT + 1)
    words.append(fill_bit | (position << _POSITION_SHIFT) | (first - 1))
    blocks -= first
    while blocks:
        take = min(blocks, _MAX_COUNT + 1)
        words.append(fill_bit | (take - 1))
        blocks -= take
