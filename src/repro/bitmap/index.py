"""The range-encoded bitmap index on incomplete data (paper Section 4.3).

Each dimension ``i`` with ``C_i`` distinct observed values is encoded with
``C_i + 1`` bit positions per object: position 0 flags *missing*, positions
``1 … C_i`` correspond to the ranked distinct values. Under **range
encoding**, an object whose value has (1-based) rank ``r`` sets positions
``0 … r−1`` and clears ``r … C_i``; a missing value sets everything
(paper: "the missing value is always encoded as a sub-string with all 1").

The payoff is that the *vertical* columns of this encoding are exactly the
pruning vectors BIG needs:

* column ``r−1`` of dimension ``i``  ==  ``[Qi]`` of any object with rank
  ``r`` there: the objects whose value is ``≥`` o's or missing;
* column ``r``                       ==  ``[Pi]``: strictly greater or
  missing.

So ``Q = ∩_i [Qi] − {o}`` and ``P = ∩_i [Pi]`` fall out of ``d`` packed
ANDs with no value comparisons at all — the paper's "fast bit-wise
operations". Index storage is ``Σ_i (C_i + 1) · N`` bits (Section 4.4),
which is what IBIG's binning subsequently attacks.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import IncompleteDataset
from ..errors import InvalidParameterError
from .bitvector import BitVector

__all__ = ["BitmapIndex"]

#: Build columns in slabs of this many positions to bound transient memory.
_BUILD_SLAB = 128


class _DimensionIndex:
    """Columns and ranks of one dimension."""

    __slots__ = ("distinct", "ranks", "columns")

    def __init__(self, distinct: np.ndarray, ranks: np.ndarray, columns: list[BitVector]) -> None:
        self.distinct = distinct
        self.ranks = ranks
        self.columns = columns


class BitmapIndex:
    """Range-encoded bitmap index over an :class:`IncompleteDataset`."""

    def __init__(self, dataset: IncompleteDataset) -> None:
        self.dataset = dataset
        self._dims: list[_DimensionIndex] = []
        n = dataset.n
        values = dataset.minimized
        observed = dataset.observed

        for dim in range(dataset.d):
            distinct = dataset.distinct_values(dim)
            cardinality = distinct.size
            # 1-based rank; missing objects get the sentinel C_i + 1 so the
            # "rank > position" rule sets every bit of their sub-string.
            ranks = np.full(n, cardinality + 1, dtype=np.int64)
            obs_rows = observed[:, dim]
            if cardinality:
                ranks[obs_rows] = np.searchsorted(distinct, values[obs_rows, dim]) + 1

            columns: list[BitVector] = []
            for start in range(0, cardinality + 1, _BUILD_SLAB):
                stop = min(start + _BUILD_SLAB, cardinality + 1)
                # bools[m - start, p] == (ranks[p] > m)  — vertical column m.
                slab = ranks[None, :] > np.arange(start, stop)[:, None]
                for row in slab:
                    columns.append(BitVector.from_bools(row))
            self._dims.append(_DimensionIndex(distinct, ranks, columns))

    # -- vertical vectors ---------------------------------------------------

    def rank(self, row: int, dim: int) -> int:
        """1-based value rank of object *row* on *dim* (``C_i + 1`` if missing)."""
        return int(self._dims[dim].ranks[row])

    def q_vector(self, row: int, dim: int) -> BitVector:
        """``[Qi]``: objects not better than *row* on *dim*, or missing there.

        For a missing dimension of *row* this is all-ones (``Qi = S``).
        """
        dim_index = self._dims[dim]
        if not self.dataset.observed[row, dim]:
            return BitVector.ones(self.dataset.n)
        return dim_index.columns[int(dim_index.ranks[row]) - 1]

    def p_vector(self, row: int, dim: int) -> BitVector:
        """``[Pi]``: objects strictly worse than *row* on *dim*, or missing."""
        dim_index = self._dims[dim]
        if not self.dataset.observed[row, dim]:
            return BitVector.ones(self.dataset.n)
        return dim_index.columns[int(dim_index.ranks[row])]

    def q_intersection(self, row: int) -> BitVector:
        """``Q ∪ {o} = ∩_i [Qi]`` (caller strips ``o`` itself)."""
        return self._intersection(row, offset=1)

    def p_intersection(self, row: int) -> BitVector:
        """``P = ∩_i [Pi]``."""
        return self._intersection(row, offset=0)

    def _intersection(self, row: int, *, offset: int) -> BitVector:
        observed = self.dataset.observed
        out: BitVector | None = None
        for dim in range(self.dataset.d):
            if not observed[row, dim]:
                continue  # all-ones factor — skip the AND entirely
            dim_index = self._dims[dim]
            column = dim_index.columns[int(dim_index.ranks[row]) - offset]
            out = column.copy() if out is None else out.iand(column)
        if out is None:  # cannot happen: every object has >= 1 observed dim
            raise InvalidParameterError(f"object {row} has no observed dimension")
        return out

    # -- storage accounting -------------------------------------------------

    @property
    def size_bits(self) -> int:
        """Logical index size: ``Σ_i (C_i + 1) · N`` bits (paper Eq. cost_s)."""
        n = self.dataset.n
        return sum(len(dim.columns) * n for dim in self._dims)

    @property
    def size_bytes(self) -> int:
        """Packed physical size of all columns."""
        return sum(col.nbytes for dim in self._dims for col in dim.columns)

    def column_count(self, dim: int) -> int:
        """``C_i + 1``: number of positions/columns on *dim*."""
        return len(self._dims[dim].columns)

    def columns(self, dim: int) -> list[BitVector]:
        """All vertical columns of *dim* (position 0 first)."""
        return list(self._dims[dim].columns)

    def horizontal_bits(self, row: int, dim: int) -> str:
        """The per-object horizontal sub-string of Fig. 6 (for inspection).

        Example: value ``2`` with domain ``{2,3,4,5}`` renders ``"10000"``;
        a missing value renders ``"11111"``.
        """
        rank = self.rank(row, dim)
        width = self.column_count(dim)
        return "".join("1" if position < rank else "0" for position in range(width))
