"""Common interface over the WAH/CONCISE codecs + index-level accounting.

The paper (Section 4.4, Fig. 10) compares the two codecs on real datasets
by **CPU time** (cost of compressing the whole bitmap index) and
**compression ratio** (compressed bytes / original bytes), picking CONCISE
for IBIG. :func:`compress_index` reproduces exactly that measurement for
any of this library's indexes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from ..errors import InvalidParameterError
from .bitvector import BitVector
from .concise import ConciseBitmap
from .roaring import RoaringBitmap
from .wah import WAHBitmap

__all__ = [
    "CODECS",
    "get_codec",
    "CompressionReport",
    "compress_columns",
    "compress_index",
    "CompressedColumnStore",
]

#: Registry of available codecs by scheme name. WAH and CONCISE are the
#: paper's Fig. 10 pair; Roaring is this library's modern extension point.
CODECS = {"wah": WAHBitmap, "concise": ConciseBitmap, "roaring": RoaringBitmap}


def get_codec(scheme: str):
    """Resolve a codec class from its scheme name (``"wah"``/``"concise"``/``"roaring"``)."""
    try:
        return CODECS[scheme.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown compression scheme {scheme!r}; available: {sorted(CODECS)}"
        ) from None


@dataclass(frozen=True)
class CompressionReport:
    """Outcome of compressing a set of bitmap columns."""

    scheme: str
    columns: int
    original_bytes: int
    compressed_bytes: int
    seconds: float

    @property
    def ratio(self) -> float:
        """Compressed size over original size (paper Fig. 10b; lower is better)."""
        if self.original_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.original_bytes


def compress_columns(columns: Iterable[BitVector], scheme: str):
    """Compress every column; returns ``(compressed_list, report)``."""
    codec = get_codec(scheme)
    columns = list(columns)
    start = time.perf_counter()
    compressed = [codec.compress(col) for col in columns]
    seconds = time.perf_counter() - start
    report = CompressionReport(
        scheme=scheme.lower(),
        columns=len(columns),
        original_bytes=sum(col.nbytes for col in columns),
        compressed_bytes=sum(comp.nbytes for comp in compressed),
        seconds=seconds,
    )
    return compressed, report


def compress_index(index, scheme: str) -> CompressionReport:
    """Compress all vertical columns of a (binned) bitmap index.

    *index* is any object exposing ``dataset`` and ``columns(dim)`` — both
    :class:`~repro.bitmap.index.BitmapIndex` and
    :class:`~repro.bitmap.binned.BinnedBitmapIndex` qualify.
    """
    all_columns: list[BitVector] = []
    for dim in range(index.dataset.d):
        all_columns.extend(index.columns(dim))
    _, report = compress_columns(all_columns, scheme)
    return report


class CompressedColumnStore:
    """Compressed-at-rest column storage with decompress-on-demand caching.

    IBIG keeps its binned index compressed with CONCISE; query evaluation
    materialises the handful of columns a given object touches and caches
    them (bounded LRU), which mirrors how a paged bitmap index behaves.
    """

    def __init__(self, index, scheme: str = "concise", *, cache_size: int = 256) -> None:
        codec = get_codec(scheme)
        self.scheme = scheme.lower()
        self._nbits = index.dataset.n
        self._compressed: list[list] = []
        original = 0
        start = time.perf_counter()
        for dim in range(index.dataset.d):
            cols = index.columns(dim)
            original += sum(col.nbytes for col in cols)
            self._compressed.append([codec.compress(col) for col in cols])
        self.build_seconds = time.perf_counter() - start
        self._original_bytes = original
        self._cache: dict[tuple[int, int], BitVector] = {}
        self._cache_size = int(cache_size)

    def column(self, dim: int, position: int) -> BitVector:
        """Materialise one column (cached)."""
        key = (dim, position)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        vec = self._compressed[dim][position].decompress()
        if len(self._cache) >= self._cache_size:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = vec
        return vec

    @property
    def compressed_bytes(self) -> int:
        """Total compressed storage."""
        return sum(comp.nbytes for cols in self._compressed for comp in cols)

    @property
    def report(self) -> CompressionReport:
        """Aggregate compression report for the whole store."""
        return CompressionReport(
            scheme=self.scheme,
            columns=sum(len(cols) for cols in self._compressed),
            original_bytes=self._original_bytes,
            compressed_bytes=self.compressed_bytes,
            seconds=self.build_seconds,
        )
