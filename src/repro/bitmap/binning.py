"""The adaptive binning strategy and its cost model (paper Sections 4.4–4.5).

**Binning (Eqs. 3–4).** For dimension ``i`` with ``ξ_i`` value bins, sort
the distinct observed values; the first bin greedily takes the longest
prefix whose object count stays within ``(N − |S_i|) / ξ_i``; each later
bin re-targets the remaining objects over the remaining bins; the last bin
always extends to ``max_i``. Skewed value histograms therefore get
population-balanced bins automatically.

**Cost model (Eqs. 5–8).** Storage is ``cost_s = N·(ξ+1)·d`` bits; query
cost is approximated by the ``nonD(o)`` formation work
``cost_t = d·(log2(σN) + ⌈σN/ξ⌉ − 1)``; the paper minimises their product,
giving the optimal

    ξ* = sqrt( σN / (log2(σN) − 1) )

(e.g. ξ* = 29 for N = 100K, σ = 0.1 and ξ* = 17 for N = 16K, σ = 0.2 —
both quoted in the paper and pinned in the tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._util import require_positive_int
from ..errors import InvalidParameterError

__all__ = [
    "BinLayout",
    "compute_bins",
    "space_cost",
    "time_cost",
    "combined_cost",
    "optimal_bin_count",
]


@dataclass(frozen=True)
class BinLayout:
    """Bin boundaries of one dimension.

    ``upper_edges[b]`` is ``v(b_{i,b+1})`` — the largest distinct value
    covered by bin ``b`` (0-based); bin ``b`` covers
    ``(upper_edges[b-1], upper_edges[b]]`` with the first bin starting at
    the dimension minimum.
    """

    upper_edges: np.ndarray

    @property
    def bin_count(self) -> int:
        """Number of value bins actually produced (≤ requested ξ)."""
        return int(self.upper_edges.size)

    def bin_of(self, values: np.ndarray) -> np.ndarray:
        """0-based bin index for each (observed) value."""
        return np.searchsorted(self.upper_edges, values, side="left")

    def lower_edge(self, bin_index: int, minimum: float) -> float:
        """Smallest value that can fall in *bin_index* (for range scans)."""
        if bin_index == 0:
            return minimum
        return float(self.upper_edges[bin_index - 1])


def compute_bins(distinct: np.ndarray, counts: np.ndarray, requested: int) -> BinLayout:
    """Partition ranked distinct values into population-balanced bins.

    Implements Eqs. 3–4: greedy prefix packing against a re-targeted
    capacity, always taking at least one distinct value per bin, with the
    final bin absorbing the remainder.
    """
    requested = require_positive_int(requested, "bin count")
    distinct = np.asarray(distinct, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    if distinct.size != counts.size:
        raise InvalidParameterError("distinct values and counts must align")
    if distinct.size == 0:
        return BinLayout(upper_edges=np.zeros(0, dtype=np.float64))
    if requested >= distinct.size:
        return BinLayout(upper_edges=distinct.copy())

    edges: list[float] = []
    start = 0
    remaining_items = int(counts.sum())
    remaining_bins = requested
    while remaining_bins > 1 and start < distinct.size:
        capacity = remaining_items / remaining_bins
        taken = 0
        width = 0
        while start + width < distinct.size:
            candidate = taken + int(counts[start + width])
            if width > 0 and candidate > capacity:
                break
            taken = candidate
            width += 1
            if taken >= capacity:
                break
        edges.append(float(distinct[start + width - 1]))
        start += width
        remaining_items -= taken
        remaining_bins -= 1
    # Eq. 4's closing rule: the last bin extends to max_i.
    if start < distinct.size:
        edges.append(float(distinct[-1]))
    return BinLayout(upper_edges=np.asarray(edges, dtype=np.float64))


def space_cost(n: int, d: int, bin_count: int) -> int:
    """Eq. 5 — binned index size in bits: ``N·(ξ+1)·d``."""
    return int(n) * (int(bin_count) + 1) * int(d)


def time_cost(n: int, d: int, missing_rate: float, bin_count: int) -> float:
    """Eq. 6 — per-object score cost ``d·(log2(σN) + ⌈σN/ξ⌉ − 1)``.

    ``σN`` is clamped below at 2 so the model stays defined for nearly
    complete data (the paper assumes σ > 0).
    """
    sigma_n = max(float(missing_rate) * float(n), 2.0)
    return float(d) * (math.log2(sigma_n) + math.ceil(sigma_n / bin_count) - 1)


def combined_cost(n: int, d: int, missing_rate: float, bin_count: int) -> float:
    """Eq. 7 — the space × time product the paper minimises."""
    return space_cost(n, d, bin_count) * time_cost(n, d, missing_rate, bin_count)


def optimal_bin_count(n: int, missing_rate: float) -> int:
    """Eq. 8 — ``ξ* = sqrt(σN / (log2(σN) − 1))``, rounded to the nearest int.

    Falls back to a small constant when ``σN`` is too small for the model
    (log2(σN) ≤ 1).
    """
    sigma_n = float(missing_rate) * float(n)
    if sigma_n <= 2.0 or math.log2(sigma_n) <= 1.0:
        return 2
    xi = math.sqrt(sigma_n / (math.log2(sigma_n) - 1.0))
    return max(1, round(xi))
