"""Roaring bitmap compression (Chambi, Lemire, Kaser & Godin).

A third codec next to WAH and CONCISE, included as a modern comparison
point for the paper's Fig. 10 experiment. Roaring partitions the bit
domain into 2^16-bit *chunks*; each non-empty chunk is stored in whichever
container is smallest for its density:

* **array**  — sorted ``uint16`` positions (sparse, ≤ 4096 bits set);
* **bitmap** — 1024 × ``uint64`` words (dense);
* **run**    — ``(start, length)`` pairs (long fills, e.g. the all-ones
  missing-value columns of the paper's range-encoded index).

Unlike the word-aligned codecs, Roaring is *not* run-length at word
granularity, so the paper's observation that "range encoding is not
amenable to compression" gets a second, structurally different test.

The public surface mirrors :class:`~repro.bitmap.wah.WAHBitmap` /
:class:`~repro.bitmap.concise.ConciseBitmap`: ``compress`` /
``decompress`` / ``logical_and`` / ``logical_or`` / ``count`` /
``nbytes``, so it drops into :mod:`repro.bitmap.compression` unchanged.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .bitvector import BitVector

__all__ = ["RoaringBitmap"]

#: Bits per chunk (the Roaring paper's fixed 2^16 partition).
CHUNK_BITS = 1 << 16
#: Array containers switch to bitmap containers above this cardinality.
ARRAY_LIMIT = 4096
#: Bytes of a dense bitmap container (2^16 bits).
_BITMAP_BYTES = CHUNK_BITS // 8

_ARRAY = "array"
_BITMAP = "bitmap"
_RUN = "run"


class _Container:
    """One chunk's payload: positions, bit words, or runs."""

    __slots__ = ("kind", "data", "cardinality")

    def __init__(self, kind: str, data: np.ndarray, cardinality: int) -> None:
        self.kind = kind
        self.data = data
        self.cardinality = int(cardinality)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_positions(cls, positions: np.ndarray) -> "_Container":
        """Build the cheapest container for sorted uint16 *positions*."""
        positions = positions.astype(np.uint16)
        cardinality = positions.size
        runs = _positions_to_runs(positions)
        run_bytes = runs.size * 2  # uint16 pairs
        array_bytes = cardinality * 2
        if run_bytes < min(array_bytes, _BITMAP_BYTES):
            return cls(_RUN, runs, cardinality)
        if cardinality <= ARRAY_LIMIT:
            return cls(_ARRAY, positions, cardinality)
        return cls(_BITMAP, _positions_to_words(positions), cardinality)

    # -- access ----------------------------------------------------------------

    def positions(self) -> np.ndarray:
        """Sorted set positions within the chunk (uint32 for safe math)."""
        if self.kind == _ARRAY:
            return self.data.astype(np.uint32)
        if self.kind == _RUN:
            starts = self.data[0::2].astype(np.uint32)
            lengths = self.data[1::2].astype(np.uint32)
            return np.concatenate(
                [np.arange(s, s + ln + 1, dtype=np.uint32) for s, ln in zip(starts, lengths)]
            ) if starts.size else np.empty(0, dtype=np.uint32)
        words = self.data
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        return np.flatnonzero(bits).astype(np.uint32)

    @property
    def nbytes(self) -> int:
        """Payload bytes (container headers are accounted per-chunk)."""
        return int(self.data.nbytes)


def _positions_to_runs(positions: np.ndarray) -> np.ndarray:
    """Encode sorted positions as interleaved (start, length-1) uint16 pairs."""
    if positions.size == 0:
        return np.empty(0, dtype=np.uint16)
    as32 = positions.astype(np.int64)
    breaks = np.flatnonzero(np.diff(as32) != 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [positions.size - 1]))
    out = np.empty(starts.size * 2, dtype=np.uint16)
    out[0::2] = positions[starts]
    out[1::2] = (as32[ends] - as32[starts]).astype(np.uint16)
    return out


def _positions_to_words(positions: np.ndarray) -> np.ndarray:
    bits = np.zeros(CHUNK_BITS, dtype=np.uint8)
    bits[positions] = 1
    return np.packbits(bits, bitorder="little").view(np.uint64)


class RoaringBitmap:
    """An immutable Roaring-compressed bitmap."""

    scheme = "roaring"

    def __init__(self, keys: np.ndarray, containers: list[_Container], nbits: int) -> None:
        self._keys = np.asarray(keys, dtype=np.uint32)
        self._containers = containers
        self._nbits = int(nbits)

    # -- codec ------------------------------------------------------------

    @classmethod
    def compress(cls, vec: BitVector) -> "RoaringBitmap":
        """Encode a plain bitvector."""
        positions = vec.indices().astype(np.uint64)
        keys = (positions >> 16).astype(np.uint32)
        lows = (positions & 0xFFFF).astype(np.uint16)
        unique_keys, starts = np.unique(keys, return_index=True)
        containers: list[_Container] = []
        boundaries = np.append(starts, positions.size)
        for i, key in enumerate(unique_keys):
            chunk = lows[boundaries[i] : boundaries[i + 1]]
            containers.append(_Container.from_positions(chunk))
        return cls(unique_keys, containers, len(vec))

    def decompress(self) -> BitVector:
        """Decode back to a plain bitvector."""
        out = BitVector.zeros(self._nbits)
        if not self._containers:
            return out
        all_positions = [
            container.positions().astype(np.uint64) + (np.uint64(key) << np.uint64(16))
            for key, container in zip(self._keys.tolist(), self._containers)
        ]
        return BitVector.from_indices(self._nbits, np.concatenate(all_positions))

    # -- compressed-domain operations ----------------------------------------

    def logical_and(self, other: "RoaringBitmap") -> "RoaringBitmap":
        """AND two roaring bitmaps chunk-by-chunk (skips disjoint chunks)."""
        self._check_other(other)
        keys: list[int] = []
        containers: list[_Container] = []
        left = {int(k): c for k, c in zip(self._keys.tolist(), self._containers)}
        for key, container in zip(other._keys.tolist(), other._containers):
            mine = left.get(int(key))
            if mine is None:
                continue
            merged = np.intersect1d(
                mine.positions(), container.positions(), assume_unique=True
            )
            if merged.size:
                keys.append(int(key))
                containers.append(_Container.from_positions(merged))
        return RoaringBitmap(np.asarray(keys, dtype=np.uint32), containers, self._nbits)

    def logical_or(self, other: "RoaringBitmap") -> "RoaringBitmap":
        """OR two roaring bitmaps chunk-by-chunk."""
        self._check_other(other)
        left = {int(k): c for k, c in zip(self._keys.tolist(), self._containers)}
        right = {int(k): c for k, c in zip(other._keys.tolist(), other._containers)}
        keys = sorted(set(left) | set(right))
        containers: list[_Container] = []
        for key in keys:
            a, b = left.get(key), right.get(key)
            if a is None:
                positions = b.positions()
            elif b is None:
                positions = a.positions()
            else:
                positions = np.union1d(a.positions(), b.positions())
            containers.append(_Container.from_positions(positions))
        return RoaringBitmap(np.asarray(keys, dtype=np.uint32), containers, self._nbits)

    __and__ = logical_and
    __or__ = logical_or

    def _check_other(self, other: "RoaringBitmap") -> None:
        if not isinstance(other, RoaringBitmap):
            raise InvalidParameterError(f"expected RoaringBitmap, got {type(other).__name__}")
        if other._nbits != self._nbits:
            raise InvalidParameterError(f"length mismatch: {self._nbits} vs {other._nbits}")

    # -- measurement --------------------------------------------------------------

    def count(self) -> int:
        """Popcount from container cardinalities (no decompression)."""
        return sum(c.cardinality for c in self._containers)

    @property
    def nbits(self) -> int:
        """Logical (uncompressed) length in bits."""
        return self._nbits

    @property
    def container_kinds(self) -> list[str]:
        """Kind of every container, aligned with chunk order."""
        return [c.kind for c in self._containers]

    @property
    def nbytes(self) -> int:
        """Compressed size: payloads + 4-byte key/header per chunk."""
        return sum(c.nbytes for c in self._containers) + 4 * len(self._containers)

    def __eq__(self, other) -> bool:
        if not isinstance(other, RoaringBitmap):
            return NotImplemented
        return self._nbits == other._nbits and self.decompress() == other.decompress()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RoaringBitmap nbits={self._nbits} chunks={len(self._containers)} "
            f"bytes={self.nbytes}>"
        )
