"""31-bit block plumbing shared by the WAH and CONCISE codecs.

Both codecs chop a bitmap into 31-bit *blocks* carried in 32-bit words
(the spare bit encodes word type). This module converts between
:class:`~repro.bitmap.bitvector.BitVector` and block arrays, and provides
run-length grouping of equal consecutive blocks — the unit both encoders
consume.
"""

from __future__ import annotations

import numpy as np

from .bitvector import BitVector

__all__ = ["ALL_ONES", "blocks_from_bitvector", "bitvector_from_blocks", "runs_from_blocks"]

#: A fully-set 31-bit block.
ALL_ONES = 0x7FFF_FFFF

_POWERS = (1 << np.arange(31, dtype=np.uint64)).astype(np.uint64)


def blocks_from_bitvector(vec: BitVector) -> np.ndarray:
    """Split a bitvector into 31-bit little-endian blocks (zero padded)."""
    bools = vec.to_bools()
    n_blocks = (bools.size + 30) // 31
    if n_blocks == 0:
        return np.zeros(0, dtype=np.uint32)
    padded = np.zeros(n_blocks * 31, dtype=np.uint64)
    padded[: bools.size] = bools
    return (padded.reshape(n_blocks, 31) * _POWERS).sum(axis=1).astype(np.uint32)


def bitvector_from_blocks(blocks: np.ndarray, nbits: int) -> BitVector:
    """Reassemble a bitvector of *nbits* bits from its 31-bit blocks."""
    blocks = np.asarray(blocks, dtype=np.uint64)
    if blocks.size == 0:
        return BitVector.zeros(nbits)
    bools = ((blocks[:, None] >> np.arange(31, dtype=np.uint64)) & 1).astype(bool)
    return BitVector.from_bools(bools.reshape(-1)[:nbits])


def runs_from_blocks(blocks: np.ndarray):
    """Yield ``(block_value, count)`` runs of equal consecutive blocks.

    Pure fills (all-zero / all-one blocks) become multi-block runs; dirty
    blocks come out as single-block runs.
    """
    blocks = np.asarray(blocks, dtype=np.uint32)
    index = 0
    total = blocks.size
    while index < total:
        value = int(blocks[index])
        if value == 0 or value == ALL_ONES:
            end = index + 1
            while end < total and int(blocks[end]) == value:
                end += 1
            yield value, end - index
            index = end
        else:
            yield value, 1
            index += 1
