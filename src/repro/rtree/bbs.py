"""Branch-and-Bound Skyline (BBS) over an aR-tree.

BBS (Papadias et al. [5]) retrieves the skyline of a complete dataset by
traversing the R-tree in ascending *mindist* order (sum of the low-corner
coordinates), pruning every entry whose best corner is already strictly
dominated by a reported skyline point. It is both the classic skyline
algorithm and the candidate generator of the skyline-based TKD baseline
in :mod:`repro.rtree.tkd`.
"""

from __future__ import annotations

import heapq
from itertools import count

import numpy as np

from .artree import ARTree, ARTreeNode

__all__ = ["bbs_skyline", "bbs_skyline_mask"]


def _strictly_dominates(p: np.ndarray, corner: np.ndarray) -> bool:
    """Strict dominance of a point over a box corner (smaller is better)."""
    return bool(np.all(p <= corner) and np.any(p < corner))


def bbs_skyline(tree: ARTree) -> np.ndarray:
    """Row indices of the skyline points of *tree*'s dataset, sorted.

    Duplicate coordinate vectors do not dominate each other, so all copies
    of a skyline point are reported — matching the strict Definition 1
    semantics used everywhere else in this package.
    """
    skyline_rows: list[int] = []
    skyline_values: list[np.ndarray] = []

    ticket = count()
    heap: list[tuple[float, int, ARTreeNode | None, int]] = [
        (tree.root.rect.mindist_to_origin(), next(ticket), tree.root, -1)
    ]
    while heap:
        _, __, node, row = heapq.heappop(heap)
        if node is None:
            # A data point entry.
            point = tree.points[row]
            if not any(_strictly_dominates(s, point) for s in skyline_values):
                skyline_rows.append(row)
                skyline_values.append(point)
            continue
        if any(_strictly_dominates(s, node.rect.low) for s in skyline_values):
            continue
        if node.is_leaf:
            for r in node.row_indices:
                point = tree.points[r]
                heapq.heappush(heap, (float(point.sum()), next(ticket), None, int(r)))
        else:
            for child in node.children:
                heapq.heappush(
                    heap,
                    (child.rect.mindist_to_origin(), next(ticket), child, -1),
                )
    return np.array(sorted(skyline_rows), dtype=np.intp)


def bbs_skyline_mask(tree: ARTree) -> np.ndarray:
    """Boolean skyline membership mask aligned with the tree's rows."""
    mask = np.zeros(tree.n, dtype=bool)
    mask[bbs_skyline(tree)] = True
    return mask
