"""Sort-Tile-Recursive (STR) bulk loading for R-trees.

STR (Leutenegger et al.) packs ``n`` points into ``ceil(n / B)`` full
leaves by recursively sorting on one dimension at a time and slicing the
data into vertical "slabs" whose point counts match whole numbers of
leaves. It produces well-clustered, fully-packed trees — the standard way
to build the aR-trees that complete-data TKD algorithms assume.

Only the grouping logic lives here; tree assembly is in
:mod:`repro.rtree.artree`.
"""

from __future__ import annotations

import math

import numpy as np

from .._util import require_positive_int
from ..errors import InvalidParameterError

__all__ = ["str_partition"]


def str_partition(points: np.ndarray, capacity: int) -> list[np.ndarray]:
    """Group row indices of *points* into STR tiles of at most *capacity*.

    Parameters
    ----------
    points: ``(n, d)`` matrix of complete coordinates.
    capacity: maximum rows per tile (leaf fan-out ``B``).

    Returns
    -------
    A list of index arrays; every input row appears in exactly one tile,
    and all tiles except possibly the last few within a slab are full.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise InvalidParameterError(f"expected a (n, d) matrix, got shape {points.shape}")
    if np.isnan(points).any():
        raise InvalidParameterError("STR bulk loading requires complete coordinates (no NaN)")
    capacity = require_positive_int(capacity, "capacity")
    n = points.shape[0]
    if n == 0:
        return []
    indices = np.arange(n, dtype=np.intp)
    return _tile(points, indices, capacity, dim=0)


def _tile(points: np.ndarray, indices: np.ndarray, capacity: int, dim: int) -> list[np.ndarray]:
    """Recursively slab-sort *indices* starting at dimension *dim*."""
    n = indices.size
    if n <= capacity:
        return [indices]
    d = points.shape[1]
    if dim >= d - 1:
        # Last dimension: sort and chop into consecutive full tiles.
        order = indices[np.argsort(points[indices, dim], kind="stable")]
        return [order[i : i + capacity] for i in range(0, n, capacity)]

    # Number of leaves still needed below this level, spread across
    # ceil(S^(1/r)) slabs where r counts the remaining dimensions.
    leaves = math.ceil(n / capacity)
    remaining_dims = d - dim
    slabs = math.ceil(leaves ** (1.0 / remaining_dims))
    per_slab = math.ceil(n / slabs)

    order = indices[np.argsort(points[indices, dim], kind="stable")]
    tiles: list[np.ndarray] = []
    for start in range(0, n, per_slab):
        slab = order[start : start + per_slab]
        tiles.extend(_tile(points, slab, capacity, dim + 1))
    return tiles
