"""R-tree substrate: MBRs, STR bulk loading, aR-tree, BBS, complete TKD.

The complete-data machinery the paper contrasts against (Sections 1 and
2.1). It exists here for three reasons:

1. to reproduce the classic complete-data TKD baselines (Papadias et
   al.; Yiu & Mamoulis) that anchor the σ = 0 end of Fig. 16;
2. to power the bitstring-augmented R-tree (BR-tree) incomplete-data
   index of :mod:`repro.indexes`;
3. to make the paper's motivating claim concrete — these structures
   require complete MBRs and genuinely cannot ingest missing values
   (:class:`ARTree` raises on NaN by design).
"""

from .artree import ARTree, ARTreeNode, DEFAULT_FANOUT
from .bbs import bbs_skyline, bbs_skyline_mask
from .rect import Rect
from .str_bulk import str_partition
from .tkd import ARTREE_METHODS, artree_tkd, counting_guided_tkd, skyline_based_tkd

__all__ = [
    "Rect",
    "str_partition",
    "ARTree",
    "ARTreeNode",
    "DEFAULT_FANOUT",
    "bbs_skyline",
    "bbs_skyline_mask",
    "skyline_based_tkd",
    "counting_guided_tkd",
    "artree_tkd",
    "ARTREE_METHODS",
]
