"""Complete-data TKD baselines over the aR-tree.

The two classic algorithm families the paper cites as *inapplicable* to
incomplete data (Section 1, Section 2.1), built here as complete-data
comparators:

* **Skyline-based TKD** (Papadias et al. [5]) — the top scorer of a
  complete dataset always belongs to the skyline, and after reporting it
  the next scorer belongs to the skyline of the remaining objects; BBS
  supplies candidates, the aR-tree counts their scores.
* **Counting-guided TKD** (Yiu & Mamoulis [6], [7]) — best-first search
  over the aR-tree using upper-bound scores from node MBR corners, with
  lazy refinement of point bounds to exact scores.

Both operate on complete matrices in minimized orientation (smaller is
better); they agree exactly with :func:`repro.core.complete.complete_scores`
on score values and are cross-checked against the incomplete-data
algorithms at missing rate σ = 0.

Note on correctness of the skyline-based iteration: on complete data,
dominance is transitive, so ``p ≺ o`` implies ``score(p) > score(o)``.
Hence the object with the next-highest score among the not-yet-reported
set ``S − R`` is never dominated within ``S − R``, i.e. it lies on
``skyline(S − R)``. Scores themselves are always counted against the full
dataset ``S`` (Definition 2) and never need adjusting.
"""

from __future__ import annotations

import heapq
from itertools import count as _ticket_counter

import numpy as np

from ..core.result import validate_k
from ..errors import InvalidParameterError
from .artree import ARTree, ARTreeNode
from .bbs import bbs_skyline

__all__ = [
    "skyline_based_tkd",
    "counting_guided_tkd",
    "artree_tkd",
]


def _checked_tree(values: np.ndarray, fanout: int | None) -> ARTree:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise InvalidParameterError(f"expected a (n, d) matrix, got shape {values.shape}")
    kwargs = {} if fanout is None else {"fanout": fanout}
    return ARTree(values, **kwargs)


def _strictly_dominates_rows(rows: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Boolean mask of *rows* that strictly dominate *target*."""
    if rows.size == 0:
        return np.zeros(0, dtype=bool)
    return np.all(rows <= target, axis=1) & np.any(rows < target, axis=1)


# ---------------------------------------------------------------------------
# Skyline-based TKD (Papadias et al.)
# ---------------------------------------------------------------------------


def skyline_based_tkd(
    values: np.ndarray, k: int, *, fanout: int | None = None, tree: ARTree | None = None
) -> tuple[list[int], list[int]]:
    """Top-k dominating rows of a complete matrix via iterative skylines.

    Returns ``(indices, scores)`` ordered by descending score with
    deterministic index tie-breaking.
    """
    if tree is None:
        tree = _checked_tree(values, fanout)
    values = tree.points
    k = validate_k(k, tree.n)

    candidates: dict[int, int] = {
        int(row): tree.count_dominated(values[row]) for row in bbs_skyline(tree)
    }
    reported_rows: list[int] = []
    reported_scores: list[int] = []
    reported_set: set[int] = set()

    while len(reported_rows) < k:
        winner = min(candidates, key=lambda row: (-candidates[row], row))
        winner_score = candidates.pop(winner)
        reported_rows.append(winner)
        reported_scores.append(winner_score)
        reported_set.add(winner)
        if len(reported_rows) == k:
            break

        # Objects that may *become* skyline of S - R are exactly the ones
        # the winner dominated: everything else keeps a surviving dominator.
        winner_point = values[winner]
        high = np.full(tree.d, np.inf)
        region = tree.query_box(winner_point, high)
        dominated = [
            int(q)
            for q in region
            if q not in reported_set
            and q not in candidates
            and not np.array_equal(values[q], winner_point)
        ]
        if not dominated:
            continue
        survivor_rows = np.array(sorted(candidates), dtype=np.intp)
        survivor_values = values[survivor_rows] if survivor_rows.size else np.empty((0, tree.d))
        dominated_values = values[np.array(dominated, dtype=np.intp)]
        for pos, q in enumerate(dominated):
            target = dominated_values[pos]
            if np.any(_strictly_dominates_rows(survivor_values, target)):
                continue
            others = np.delete(dominated_values, pos, axis=0)
            if np.any(_strictly_dominates_rows(others, target)):
                continue
            candidates[q] = tree.count_dominated(target)

    return reported_rows, reported_scores


# ---------------------------------------------------------------------------
# Counting-guided TKD (Yiu & Mamoulis)
# ---------------------------------------------------------------------------

_KIND_EXACT_POINT = 0  # bound is the true score
_KIND_APPROX_POINT = 1  # bound counts duplicates of the point itself
_KIND_NODE = 2


def counting_guided_tkd(
    values: np.ndarray, k: int, *, fanout: int | None = None, tree: ARTree | None = None
) -> tuple[list[int], list[int]]:
    """Top-k dominating rows via best-first aR-tree counting (SCG).

    Every heap entry carries an upper bound on the score of any point in
    its subtree; node bounds come from the MBR's best corner, point
    bounds are refined lazily to exact scores. A popped *exact* point
    outscores every remaining bound, so it is final.
    """
    if tree is None:
        tree = _checked_tree(values, fanout)
    values = tree.points
    k = validate_k(k, tree.n)

    tickets = _ticket_counter()
    heap: list[tuple[int, int, int, int, ARTreeNode | None]] = []

    def push(bound: int, kind: int, row: int, node: ARTreeNode | None) -> None:
        key_row = row if row >= 0 else tree.n + next(tickets)
        heapq.heappush(heap, (-bound, kind, key_row, row, node))

    push(tree.upper_bound_in_rect(tree.root.rect), _KIND_NODE, -1, tree.root)

    high = np.full(tree.d, np.inf)
    indices: list[int] = []
    scores: list[int] = []
    while heap and len(indices) < k:
        neg_bound, kind, _, row, node = heapq.heappop(heap)
        bound = -neg_bound
        if kind == _KIND_EXACT_POINT:
            indices.append(row)
            scores.append(bound)
        elif kind == _KIND_APPROX_POINT:
            exact = bound - (tree.count_equal(values[row]) - 1)
            push(exact, _KIND_EXACT_POINT, row, None)
        elif node.is_leaf:
            for r in node.row_indices:
                point = values[r]
                approx = tree.count_in_box(point, high) - 1
                push(approx, _KIND_APPROX_POINT, int(r), None)
        else:
            for child in node.children:
                push(tree.upper_bound_in_rect(child.rect), _KIND_NODE, -1, child)

    return indices, scores


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------

#: Methods accepted by :func:`artree_tkd`.
ARTREE_METHODS = {
    "skyline": skyline_based_tkd,
    "counting": counting_guided_tkd,
}


def artree_tkd(
    values: np.ndarray,
    k: int,
    *,
    method: str = "counting",
    fanout: int | None = None,
) -> tuple[list[int], list[int]]:
    """Complete-data TKD over an aR-tree; dispatches on *method*.

    Ties at the k-th score are broken deterministically by row index —
    the branch-and-bound traversals cannot enumerate the full tie group
    without extra work, so the paper's random policy is not offered here.
    Cross-algorithm comparisons should use score multisets, which are
    invariant to tie-breaking.
    """
    try:
        run = ARTREE_METHODS[method.lower()]
    except (KeyError, AttributeError):
        raise InvalidParameterError(
            f"unknown aR-tree TKD method {method!r}; available: {', '.join(ARTREE_METHODS)}"
        ) from None
    tree = _checked_tree(values, fanout)
    return run(tree.points, k, tree=tree)
