"""Aggregate R-tree (aR-tree) over complete multi-dimensional points.

The aR-tree of Papadias et al. / Yiu & Mamoulis augments every R-tree
node with the **count of data points in its subtree**, which lets the
complete-data TKD algorithms bound and compute dominance scores by
counting points inside dominance regions instead of enumerating them.

This is exactly the machinery the paper rules out for incomplete data
("the MBRs of tree nodes do not exist due to the missing dimensional
values", Section 1); we build it anyway as the complete-data comparator
substrate, so the σ = 0 end of the missing-rate axis (Fig. 16) can be
cross-checked against the classic algorithms.

The tree is bulk-loaded with STR (:mod:`repro.rtree.str_bulk`) and
immutable afterwards — all TKD baselines are read-only consumers.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .._util import require_positive_int
from ..errors import InvalidParameterError
from .rect import Rect
from .str_bulk import str_partition

__all__ = ["ARTree", "ARTreeNode", "DEFAULT_FANOUT"]

#: Default node fan-out. Small enough to give multi-level trees on test
#: inputs, large enough to keep Python overhead per node reasonable.
DEFAULT_FANOUT = 16


class ARTreeNode:
    """One node of the aR-tree.

    Leaves store row indices into the tree's point matrix; internal nodes
    store child nodes. ``count`` is the aggregate number of points below.
    ``meta`` is a free slot for augmentations (the BR-tree of
    :mod:`repro.indexes` stores per-node observed-pattern bitstrings there).
    """

    __slots__ = ("rect", "children", "row_indices", "count", "level", "meta")

    def __init__(
        self,
        rect: Rect,
        *,
        children: list["ARTreeNode"] | None = None,
        row_indices: np.ndarray | None = None,
        level: int = 0,
    ) -> None:
        self.rect = rect
        self.children = children
        self.row_indices = row_indices
        self.level = level
        self.meta = None
        if row_indices is not None:
            self.count = int(row_indices.size)
        else:
            self.count = sum(child.count for child in children or [])

    @property
    def is_leaf(self) -> bool:
        """True for nodes that hold data rows directly."""
        return self.row_indices is not None


class ARTree:
    """STR-bulk-loaded aggregate R-tree over a complete point matrix."""

    def __init__(self, points: np.ndarray, *, fanout: int = DEFAULT_FANOUT) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0 or points.shape[1] == 0:
            raise InvalidParameterError(
                f"ARTree expects a non-empty (n, d) matrix, got shape {points.shape}"
            )
        if np.isnan(points).any():
            raise InvalidParameterError(
                "ARTree requires complete data; this is precisely why the paper "
                "develops bitmap-based algorithms for incomplete data"
            )
        fanout = require_positive_int(fanout, "fanout")
        if fanout < 2:
            raise InvalidParameterError("fanout must be >= 2")
        self.points = points
        self.fanout = fanout
        self.root = self._bulk_load()

    # -- construction -----------------------------------------------------

    def _bulk_load(self) -> ARTreeNode:
        leaves = [
            ARTreeNode(Rect.from_points(self.points[tile]), row_indices=tile, level=0)
            for tile in str_partition(self.points, self.fanout)
        ]
        level = 0
        nodes = leaves
        while len(nodes) > 1:
            level += 1
            centers = np.array([node.rect.center for node in nodes])
            groups = str_partition(centers, self.fanout)
            nodes = [
                ARTreeNode(
                    Rect.union_of(nodes[i].rect for i in group),
                    children=[nodes[i] for i in group],
                    level=level,
                )
                for group in groups
            ]
        return nodes[0]

    # -- structural accessors ----------------------------------------------

    @property
    def n(self) -> int:
        """Number of indexed points."""
        return self.points.shape[0]

    @property
    def d(self) -> int:
        """Dimensionality of the indexed points."""
        return self.points.shape[1]

    @property
    def height(self) -> int:
        """Levels from root to leaves (a one-leaf tree has height 1)."""
        return self.root.level + 1

    def iter_nodes(self) -> Iterator[ARTreeNode]:
        """Yield every node, root first (pre-order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    # -- box counting -------------------------------------------------------

    def count_in_box(self, low: Sequence[float], high: Sequence[float]) -> int:
        """Number of points inside the closed box ``[low, high]``.

        Nodes fully inside contribute their aggregate ``count`` without
        descending — the aR-tree's reason to exist.
        """
        box = Rect(
            np.asarray(low, dtype=np.float64), np.asarray(high, dtype=np.float64)
        )
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not box.intersects(node.rect):
                continue
            if box.contains_rect(node.rect):
                total += node.count
            elif node.is_leaf:
                rows = self.points[node.row_indices]
                inside = np.all(rows >= box.low, axis=1) & np.all(rows <= box.high, axis=1)
                total += int(np.count_nonzero(inside))
            else:
                stack.extend(node.children)
        return total

    def query_box(self, low: Sequence[float], high: Sequence[float]) -> np.ndarray:
        """Row indices of the points inside the closed box ``[low, high]``."""
        box = Rect(
            np.asarray(low, dtype=np.float64), np.asarray(high, dtype=np.float64)
        )
        found: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not box.intersects(node.rect):
                continue
            if node.is_leaf:
                rows = self.points[node.row_indices]
                inside = np.all(rows >= box.low, axis=1) & np.all(rows <= box.high, axis=1)
                found.append(node.row_indices[inside])
            else:
                stack.extend(node.children)
        if not found:
            return np.empty(0, dtype=np.intp)
        return np.sort(np.concatenate(found))

    # -- dominance counting (minimized orientation) --------------------------

    def count_equal(self, point: Sequence[float]) -> int:
        """Number of indexed points exactly equal to *point*."""
        return self.count_in_box(point, point)

    def count_dominated(self, point: Sequence[float]) -> int:
        """``score(point)``: points strictly dominated by *point*.

        With smaller-is-better dominance, ``p ≺-dominates q`` iff
        ``p <= q`` componentwise and ``p != q`` as vectors; so the score
        is the count in ``[point, +inf)`` minus the duplicates of *point*
        itself (including *point* when it is an indexed row).
        """
        point = np.asarray(point, dtype=np.float64)
        high = np.full(self.d, np.inf)
        return self.count_in_box(point, high) - self.count_equal(point)

    def count_dominators(self, point: Sequence[float]) -> int:
        """Points that strictly dominate *point* (count in ``(-inf, point]``)."""
        point = np.asarray(point, dtype=np.float64)
        low = np.full(self.d, -np.inf)
        return self.count_in_box(low, point) - self.count_equal(point)

    def upper_bound_in_rect(self, rect: Rect) -> int:
        """Upper bound on ``score(q)`` for any point ``q`` inside *rect*.

        The best conceivable point of the box is its low corner, and any
        point it could dominate lies in ``[rect.low, +inf)``.
        """
        high = np.full(self.d, np.inf)
        return self.count_in_box(rect.low, high)
