"""Axis-aligned (hyper-)rectangles — the MBR primitive of the R-tree.

The paper's Section 1 motivates the incomplete-data algorithms by noting
that "the MBRs of tree nodes do not exist due to the missing dimensional
values of data objects". This module is the *complete-data* side of that
argument: the minimum bounding rectangles that the classic TKD machinery
(Papadias et al. [5]; Yiu & Mamoulis [6], [7]) is built on.

A :class:`Rect` stores the componentwise ``low`` and ``high`` corners of a
box in minimized orientation (smaller is better everywhere in this
package). Dominance-region tests used by the aR-tree counting algorithms
live here too, so the tree code stays purely structural.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["Rect"]


class Rect:
    """A closed axis-aligned box ``[low, high]`` in d dimensions."""

    __slots__ = ("low", "high")

    def __init__(self, low: Sequence[float], high: Sequence[float]) -> None:
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        if low.ndim != 1 or low.shape != high.shape:
            raise InvalidParameterError(
                f"rect corners must be equal-length 1-D vectors, got {low.shape} vs {high.shape}"
            )
        if low.size == 0:
            raise InvalidParameterError("rect must have at least one dimension")
        if np.isnan(low).any() or np.isnan(high).any():
            raise InvalidParameterError("rect corners must not contain NaN")
        if (low > high).any():
            raise InvalidParameterError("rect low corner must be <= high corner componentwise")
        self.low = low
        self.high = high

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """Degenerate box around a single point."""
        point = np.asarray(point, dtype=np.float64)
        return cls(point, point.copy())

    @classmethod
    def from_points(cls, points: np.ndarray) -> "Rect":
        """Tightest box around the rows of a ``(m, d)`` matrix."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise InvalidParameterError(
                f"from_points expects a non-empty (m, d) matrix, got shape {points.shape}"
            )
        return cls(points.min(axis=0), points.max(axis=0))

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Tightest box enclosing every rect in *rects* (must be non-empty)."""
        rects = list(rects)
        if not rects:
            raise InvalidParameterError("union_of needs at least one rect")
        low = rects[0].low.copy()
        high = rects[0].high.copy()
        for rect in rects[1:]:
            np.minimum(low, rect.low, out=low)
            np.maximum(high, rect.high, out=high)
        return cls(low, high)

    # -- basic geometry ---------------------------------------------------

    @property
    def d(self) -> int:
        """Dimensionality of the box."""
        return self.low.size

    @property
    def center(self) -> np.ndarray:
        """Componentwise midpoint."""
        return (self.low + self.high) / 2.0

    @property
    def margin(self) -> float:
        """Sum of side lengths (the R*-tree margin metric)."""
        return float(np.sum(self.high - self.low))

    @property
    def area(self) -> float:
        """Product of side lengths (volume for d > 2)."""
        return float(np.prod(self.high - self.low))

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when *point* lies inside the closed box."""
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(self.low <= point) and np.all(point <= self.high))

    def contains_rect(self, other: "Rect") -> bool:
        """True when *other* lies entirely inside this box."""
        return bool(np.all(self.low <= other.low) and np.all(other.high <= self.high))

    def intersects(self, other: "Rect") -> bool:
        """True when the closed boxes share at least one point."""
        return bool(np.all(self.low <= other.high) and np.all(other.low <= self.high))

    def union(self, other: "Rect") -> "Rect":
        """Tightest box enclosing this box and *other*."""
        return Rect(np.minimum(self.low, other.low), np.maximum(self.high, other.high))

    # -- dominance-region tests (minimized orientation) --------------------

    def inside_dominance_region(self, anchor: Sequence[float]) -> bool:
        """True when every point of the box satisfies ``anchor <= point``.

        The non-strict dominance region of *anchor* is ``[anchor, +inf)``;
        an aR-tree node entirely inside it contributes its whole aggregate
        count to ``count(anchor <= q)``.
        """
        anchor = np.asarray(anchor, dtype=np.float64)
        return bool(np.all(anchor <= self.low))

    def intersects_dominance_region(self, anchor: Sequence[float]) -> bool:
        """True when some point of the box satisfies ``anchor <= point``."""
        anchor = np.asarray(anchor, dtype=np.float64)
        return bool(np.all(anchor <= self.high))

    def mindist_to_origin(self) -> float:
        """L1 distance from the origin to the box's best corner.

        This is the BBS traversal key: with minimized coordinates the most
        promising corner of an MBR is its low corner, and sorting entries
        by the sum of its coordinates yields the skyline in one pass.
        """
        return float(np.sum(self.low))

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return bool(np.array_equal(self.low, other.low) and np.array_equal(self.high, other.high))

    def __hash__(self):  # Rects are mutable ndarray holders; keep them unhashable.
        return None  # pragma: no cover - mirrors list/ndarray behaviour

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        low = np.array2string(self.low, precision=4, separator=", ")
        high = np.array2string(self.high, precision=4, separator=", ")
        return f"Rect(low={low}, high={high})"
