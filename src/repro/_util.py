"""Small internal helpers shared across :mod:`repro` modules.

Nothing in this module is part of the public API.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .errors import InvalidParameterError

#: Strings (lower-cased, stripped) treated as a missing value when parsing
#: text input such as CSV cells or ``from_rows`` string entries.
MISSING_TOKENS = frozenset({"", "-", "na", "n/a", "nan", "none", "null", "?"})


def coerce_rng(seed_or_rng) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, rng, or None."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def require_positive_int(value, name: str) -> int:
    """Validate that *value* is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidParameterError(f"{name} must be a positive integer, got {value!r}")
    if value <= 0:
        raise InvalidParameterError(f"{name} must be >= 1, got {value}")
    return int(value)


def require_fraction(value, name: str, *, inclusive_low=True, inclusive_high=True) -> float:
    """Validate that *value* lies in [0, 1] (bounds per flags) and return it."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise InvalidParameterError(f"{name} must be a number in [0, 1], got {value!r}") from None
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        raise InvalidParameterError(f"{name} must be within [0, 1], got {value}")
    return value


def is_missing_cell(cell) -> bool:
    """Decide whether a raw input cell denotes a missing value."""
    if cell is None:
        return True
    if isinstance(cell, float) and np.isnan(cell):
        return True
    if isinstance(cell, str):
        return cell.strip().lower() in MISSING_TOKENS
    return False


def parse_cell(cell) -> float:
    """Convert a raw cell to ``float`` or ``nan`` when missing."""
    if is_missing_cell(cell):
        return float("nan")
    if isinstance(cell, str):
        return float(cell.strip())
    return float(cell)


def as_object_indices(indices: Iterable[int], n: int, name: str = "indices") -> list[int]:
    """Validate an iterable of object indices against dataset size *n*."""
    out = []
    for idx in indices:
        idx = int(idx)
        if idx < 0 or idx >= n:
            raise InvalidParameterError(f"{name} contains {idx}, outside [0, {n})")
        out.append(idx)
    return out


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *, float_fmt: str = "{:.4g}") -> str:
    """Render *rows* as a fixed-width ASCII table (used by reporting/examples)."""
    def fmt(value):
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = [
        "  ".join(h.ljust(widths[j]) for j, h in enumerate(headers)),
        "  ".join("-" * widths[j] for j in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)
