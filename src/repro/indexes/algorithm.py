"""UBB-style TKD processing on top of the alternative indexes.

:class:`IndexBackedTKD` generalizes the paper's Algorithm 2: visit objects
in descending order of an index-provided upper bound, maintain the k-slot
candidate set with threshold ``τ``, stop as soon as the next bound is
``≤ τ`` (Heuristic 1 with the backend's bound in place of ``MaxScore``),
and obtain exact scores through the backend's filter-and-verify
:meth:`~repro.indexes.base.IncompleteIndex.score`.

This makes the Section 2.2 structures (MOSAIC, BR-tree, quantization)
directly comparable with the paper's own algorithms: same query semantics,
same statistics, different pruning machinery. The registry exposes them as
``"mosaic"``, ``"brtree"``, and ``"quantization"``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.base import TKDAlgorithm
from ..core.dataset import IncompleteDataset
from ..core.result import CandidateSet
from ..core.stats import QueryStats
from ..errors import InvalidParameterError
from .base import IncompleteIndex, dominated_within
from .brtree import BRTreeIndex
from .mosaic import MosaicIndex
from .quantization import QuantizationIndex

__all__ = [
    "INDEX_BACKENDS",
    "IndexBackedTKD",
    "MosaicTKD",
    "BRTreeTKD",
    "QuantizationTKD",
]

#: Backend registry: name → index class.
INDEX_BACKENDS: dict[str, type[IncompleteIndex]] = {
    MosaicIndex.name: MosaicIndex,
    BRTreeIndex.name: BRTreeIndex,
    QuantizationIndex.name: QuantizationIndex,
}


class IndexBackedTKD(TKDAlgorithm):
    """TKD via upper-bound ordering over an alternative incomplete index."""

    name = "index-backed"
    #: Default backend; the concrete registry subclasses pin their own.
    backend_name = "mosaic"

    def __init__(
        self,
        dataset: IncompleteDataset,
        *,
        backend: str | None = None,
        enable_h1: bool = True,
        **backend_options,
    ) -> None:
        super().__init__(dataset)
        backend = (backend or self.backend_name).lower()
        try:
            backend_cls = INDEX_BACKENDS[backend]
        except KeyError:
            raise InvalidParameterError(
                f"unknown index backend {backend!r}; available: {', '.join(INDEX_BACKENDS)}"
            ) from None
        self.index = backend_cls(dataset, **backend_options)
        self._enable_h1 = bool(enable_h1)
        self._bounds: np.ndarray | None = None
        self._queue: np.ndarray | None = None

    def _prepare(self) -> None:
        self.index.build()
        n = self.dataset.n
        bounds = np.empty(n, dtype=np.int64)
        for row in range(n):
            bounds[row] = self.index.upper_bound_score(row)
        self._bounds = bounds
        # Descending bound, ascending row for deterministic visit order.
        self._queue = np.lexsort((np.arange(n), -bounds))

    @property
    def bounds(self) -> np.ndarray:
        """Per-object index upper bounds (the queue keys)."""
        self.prepare()
        return self._bounds

    @property
    def index_bytes(self) -> int:
        return self.index.index_bytes if self._prepared else 0

    def _run(
        self, k: int, *, tie_break: str, rng, stats: QueryStats
    ) -> tuple[Sequence[int], Sequence[int]]:
        del tie_break, rng  # boundary ties resolved by eviction order, as in UBB
        candidates = CandidateSet(k)
        n = self.dataset.n

        for position, row in enumerate(self._queue.tolist()):
            if self._enable_h1 and candidates.full and self._bounds[row] <= candidates.tau:
                stats.pruned_h1 = n - position
                break
            candidate_rows = self.index.candidate_rows(row)
            score = int(dominated_within(self.dataset, row, candidate_rows).sum())
            stats.scores_computed += 1
            stats.comparisons += int(candidate_rows.size)
            candidates.offer(row, score)

        items = candidates.items()
        return [idx for idx, _ in items], [score for _, score in items]


class MosaicTKD(IndexBackedTKD):
    """TKD through per-bucket aR-trees (MOSAIC)."""

    name = "mosaic"
    backend_name = "mosaic"


class BRTreeTKD(IndexBackedTKD):
    """TKD through the bitstring-augmented R-tree."""

    name = "brtree"
    backend_name = "brtree"


class QuantizationTKD(IndexBackedTKD):
    """TKD through the quantization (rank) index."""

    name = "quantization"
    backend_name = "quantization"
