"""Bitstring-augmented R-tree (BR-tree) for incomplete data.

One of the four incomplete-data index structures the paper's related work
surveys (Canahuate, Gibas & Ferhatosmanoglu, EDBT 2006). Missing values
are substituted with a per-dimension representative so that MBRs exist
again, and every node is augmented with two observed-pattern bitstrings
aggregated over its subtree:

* ``pattern_or`` — dimensions observed by *some* descendant. A probe
  sharing no bit with it is incomparable to everything below: skip.
* ``pattern_and`` — dimensions observed by *all* descendants. On these
  dimensions the node's MBR reflects only genuine (non-substituted)
  values, so geometric pruning is sound there: if the MBR's upper edge on
  such a dimension lies strictly below the probe's value, no descendant
  can be dominated by the probe.

This turns the classic R-tree into a *conservative* filter for incomplete
data — exactly the repair the paper says plain R-trees need and why its
bitmap approach avoids the substitution altogether.
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import IncompleteDataset
from ..rtree import ARTree, DEFAULT_FANOUT
from ..rtree.artree import ARTreeNode
from .base import IncompleteIndex

__all__ = ["BRTreeIndex"]


class BRTreeIndex(IncompleteIndex):
    """R-tree over substituted values with per-node pattern bitstrings."""

    name = "brtree"

    def __init__(self, dataset: IncompleteDataset, *, fanout: int = DEFAULT_FANOUT) -> None:
        super().__init__(dataset)
        self._fanout = int(fanout)
        self._tree: ARTree | None = None
        self._filled: np.ndarray | None = None

    def _build(self) -> None:
        observed = self.dataset.observed
        minimized = self.dataset.minimized
        # Substitute each missing value with the dimension's observed mean —
        # any in-domain representative works, the bitstrings carry soundness.
        with np.errstate(invalid="ignore"):
            column_sum = np.where(observed, minimized, 0.0).sum(axis=0)
            column_cnt = observed.sum(axis=0)
        fill = np.where(column_cnt > 0, column_sum / np.maximum(column_cnt, 1), 0.0)
        self._filled = np.where(observed, minimized, fill)
        self._tree = ARTree(self._filled, fanout=self._fanout)
        self._annotate(self._tree.root)

    def _annotate(self, node: ARTreeNode) -> tuple[int, int]:
        """Attach ``(pattern_or, pattern_and)`` to every node, bottom-up."""
        patterns = self.dataset.patterns
        if node.is_leaf:
            pattern_or = 0
            pattern_and = -1
            for row in node.row_indices:
                pattern = patterns[row]
                pattern_or |= pattern
                pattern_and &= pattern
        else:
            pattern_or = 0
            pattern_and = -1
            for child in node.children:
                child_or, child_and = self._annotate(child)
                pattern_or |= child_or
                pattern_and &= child_and
        node.meta = (pattern_or, pattern_and)
        return pattern_or, pattern_and

    @property
    def tree(self) -> ARTree:
        """The underlying annotated R-tree."""
        self.build()
        return self._tree

    @property
    def index_bytes(self) -> int:
        """Substituted matrix plus node rectangles and bitstrings."""
        self.build()
        total = self._filled.nbytes
        pattern_bytes = max(1, (self.dataset.d + 7) // 8) * 2
        for node in self._tree.iter_nodes():
            total += node.rect.low.nbytes + node.rect.high.nbytes + pattern_bytes
        return total

    # -- traversal ---------------------------------------------------------

    def _surviving_leaf_rows(self, row: int) -> list[np.ndarray]:
        """Leaf row groups that survive bitstring + geometric pruning."""
        probe_pattern = self.dataset.patterns[row]
        probe = self.dataset.minimized[row]
        observed = self.dataset.observed
        d = self.dataset.d
        probe_dims = np.array(
            [i for i in range(d) if (probe_pattern >> i) & 1], dtype=np.intp
        )

        survivors: list[np.ndarray] = []
        stack = [self._tree.root]
        while stack:
            node = stack.pop()
            pattern_or, pattern_and = node.meta
            if (pattern_or & probe_pattern) == 0:
                continue  # everything below is incomparable to the probe
            safe = pattern_and & probe_pattern
            if safe:
                prunable = False
                for i in probe_dims:
                    if (safe >> int(i)) & 1 and node.rect.high[i] < probe[i]:
                        prunable = True
                        break
                if prunable:
                    continue
            if node.is_leaf:
                rows = node.row_indices
                sub_mask = observed[rows]
                common = sub_mask & observed[row]
                filled_vals = np.where(sub_mask, self.dataset.minimized[rows], 0.0)
                viable = ~np.any(common & (filled_vals < probe), axis=1)
                viable &= common.any(axis=1)
                viable &= rows != row
                if viable.any():
                    survivors.append(rows[viable])
            else:
                stack.extend(node.children)
        return survivors

    def upper_bound_score(self, row: int) -> int:
        row = self._check_row(row)
        self.build()
        return sum(group.size for group in self._surviving_leaf_rows(row))

    def candidate_rows(self, row: int) -> np.ndarray:
        row = self._check_row(row)
        self.build()
        groups = self._surviving_leaf_rows(row)
        if not groups:
            return np.empty(0, dtype=np.intp)
        return np.sort(np.concatenate(groups))
