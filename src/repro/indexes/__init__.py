"""Alternative incomplete-data index structures (paper Section 2.2).

The paper's related work names four index families for incomplete data:
the bitmap index its own BIG/IBIG algorithms build on
(:mod:`repro.bitmap`), plus MOSAIC, the bitstring-augmented R-tree, and
the quantization index. The latter three are implemented here behind the
:class:`~repro.indexes.base.IncompleteIndex` filter-and-verify interface
and wired into the TKD query engine as the ``"mosaic"``, ``"brtree"``,
and ``"quantization"`` algorithms, so the paper's implicit design choice
— *bitmaps beat the alternatives for dominance counting* — can be
measured rather than assumed (``benchmarks/bench_indexes.py``).
"""

from .algorithm import (
    INDEX_BACKENDS,
    BRTreeTKD,
    IndexBackedTKD,
    MosaicTKD,
    QuantizationTKD,
)
from .base import IncompleteIndex, dominated_within
from .brtree import BRTreeIndex
from .mosaic import MosaicIndex
from .quantization import QuantizationIndex

__all__ = [
    "IncompleteIndex",
    "dominated_within",
    "MosaicIndex",
    "BRTreeIndex",
    "QuantizationIndex",
    "INDEX_BACKENDS",
    "IndexBackedTKD",
    "MosaicTKD",
    "BRTreeTKD",
    "QuantizationTKD",
]
