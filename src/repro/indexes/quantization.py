"""Quantization index for incomplete data (Canahuate et al., EDBT 2006).

The second structure of the "Indexing incomplete databases" paper: every
dimension is quantized into a small number of ranks (equal-frequency
bins) and each object is stored as a vector of small integers, with a
reserved code for *missing*. Dominance-candidate filtering is then a
single vectorized scan over the rank matrix:

``q`` can only be dominated by the probe ``o`` if, on every dimension
observed in both, ``bin(o) <= bin(q)`` — because bins are value-ordered,
``bin(q) < bin(o)`` certifies ``q[i] < o[i]``.

Compared with the paper's bitmap index this trades the bit-vector algebra
for a tiny footprint (one byte-ish per cell) and sequential-scan probes;
the TKD bench in ``benchmarks/bench_indexes.py`` quantifies that trade.
"""

from __future__ import annotations

import numpy as np

from .._util import require_positive_int
from ..core.dataset import IncompleteDataset
from .base import IncompleteIndex

__all__ = ["QuantizationIndex"]

#: Rank code reserved for missing cells.
MISSING_RANK = -1


class QuantizationIndex(IncompleteIndex):
    """Equal-frequency per-dimension ranks with a missing code."""

    name = "quantization"

    def __init__(self, dataset: IncompleteDataset, *, bins: int = 16) -> None:
        super().__init__(dataset)
        self._bins = require_positive_int(bins, "bins")
        self._ranks: np.ndarray | None = None
        self._edges: list[np.ndarray] = []

    def _build(self) -> None:
        observed = self.dataset.observed
        minimized = self.dataset.minimized
        n, d = minimized.shape
        ranks = np.full((n, d), MISSING_RANK, dtype=np.int16)
        self._edges = []
        for dim in range(d):
            column = minimized[observed[:, dim], dim]
            if column.size == 0:
                self._edges.append(np.empty(0))
                continue
            # Interior equal-frequency cut points; duplicates collapse so
            # heavily repeated values never straddle a bin boundary.
            quantiles = np.linspace(0.0, 1.0, self._bins + 1)[1:-1]
            edges = np.unique(np.quantile(column, quantiles))
            self._edges.append(edges)
            codes = np.searchsorted(edges, minimized[:, dim], side="right")
            ranks[observed[:, dim], dim] = codes[observed[:, dim]].astype(np.int16)
        self._ranks = ranks

    @property
    def ranks(self) -> np.ndarray:
        """The ``(n, d)`` rank matrix (``MISSING_RANK`` for missing cells)."""
        self.build()
        return self._ranks

    @property
    def bins(self) -> int:
        """Requested number of bins per dimension."""
        return self._bins

    @property
    def index_bytes(self) -> int:
        self.build()
        return self._ranks.nbytes + sum(edges.nbytes for edges in self._edges)

    # -- probes --------------------------------------------------------------

    def _candidate_mask(self, row: int) -> np.ndarray:
        ranks = self._ranks
        probe = ranks[row]
        probe_observed = probe != MISSING_RANK
        others_observed = ranks != MISSING_RANK
        common = others_observed & probe_observed
        certified_worse = common & (ranks < probe)
        mask = ~certified_worse.any(axis=1) & common.any(axis=1)
        mask[row] = False
        return mask

    def upper_bound_score(self, row: int) -> int:
        row = self._check_row(row)
        self.build()
        return int(self._candidate_mask(row).sum())

    def candidate_rows(self, row: int) -> np.ndarray:
        row = self._check_row(row)
        self.build()
        return np.flatnonzero(self._candidate_mask(row))
