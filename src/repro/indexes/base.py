"""Common interface for incomplete-data index structures (paper Section 2.2).

The paper lists four ways to index incomplete data: the bitmap index (the
one its BIG/IBIG algorithms adopt, :mod:`repro.bitmap`), MOSAIC, the
bitstring-augmented R-tree, and the quantization index. This subpackage
implements the other three behind one interface so they can be compared
as candidate-generation backends for TKD processing.

Every :class:`IncompleteIndex` supports, for a probe object ``o``:

* :meth:`~IncompleteIndex.upper_bound_score` — a cheap count that is
  **provably ≥ score(o)** (a superset count of the objects ``o`` might
  dominate). This is what makes UBB-style early termination sound.
* :meth:`~IncompleteIndex.candidate_rows` — the rows of that superset.
* :meth:`~IncompleteIndex.score` — the exact Definition 2 score, obtained
  by refining the candidates with the real dominance test.

The exactness contract (superset ⊇ dominated set) is property-tested in
``tests/test_indexes.py`` for every backend.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.dataset import IncompleteDataset
from ..errors import InvalidParameterError

__all__ = ["IncompleteIndex", "dominated_within"]


def dominated_within(
    dataset: IncompleteDataset, row: int, rows: np.ndarray
) -> np.ndarray:
    """Definition 1 refinement: which of *rows* does object *row* dominate.

    One vectorised pass over the candidate subset — the "verify" half of
    every filter-and-verify index backend. Returns a boolean mask aligned
    with *rows*; *row* itself is never marked.
    """
    rows = np.asarray(rows, dtype=np.intp)
    if rows.size == 0:
        return np.zeros(0, dtype=bool)
    observed = dataset.observed
    filled = np.where(observed, dataset.minimized, 0.0)
    probe_values = filled[row]
    probe_mask = observed[row]

    sub_values = filled[rows]
    sub_mask = observed[rows]
    common = sub_mask & probe_mask
    le_all = np.all(~common | (probe_values <= sub_values), axis=1)
    lt_any = np.any(common & (probe_values < sub_values), axis=1)
    out = le_all & lt_any
    out[rows == row] = False
    return out


class IncompleteIndex:
    """Abstract filter-and-verify index over an incomplete dataset."""

    #: Registry/reporting name; concrete subclasses override.
    name: str = "abstract"

    def __init__(self, dataset: IncompleteDataset) -> None:
        if not isinstance(dataset, IncompleteDataset):
            raise InvalidParameterError(
                f"dataset must be an IncompleteDataset, got {type(dataset).__name__}"
            )
        self.dataset = dataset
        self._built = False
        self._build_seconds = 0.0

    # -- lifecycle ---------------------------------------------------------

    def build(self) -> "IncompleteIndex":
        """Construct the index once; safe to call repeatedly."""
        if not self._built:
            start = time.perf_counter()
            self._build()
            self._build_seconds = time.perf_counter() - start
            self._built = True
        return self

    def _build(self) -> None:
        raise NotImplementedError

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds of the last :meth:`build` (0 if pending)."""
        return self._build_seconds

    @property
    def index_bytes(self) -> int:
        """Approximate storage footprint of the built index."""
        raise NotImplementedError

    # -- probe operations ----------------------------------------------------

    def upper_bound_score(self, row: int) -> int:
        """A count ≥ ``score(row)`` obtained without verifying dominance."""
        raise NotImplementedError

    def candidate_rows(self, row: int) -> np.ndarray:
        """Sorted rows of a superset of the objects dominated by *row*."""
        raise NotImplementedError

    def score(self, row: int) -> int:
        """Exact ``score(row)``: filter via the index, verify Definition 1."""
        self.build()
        candidates = self.candidate_rows(row)
        return int(dominated_within(self.dataset, row, candidates).sum())

    # -- shared validation -----------------------------------------------------

    def _check_row(self, row: int) -> int:
        row = int(row)
        if row < 0 or row >= self.dataset.n:
            raise InvalidParameterError(
                f"row {row} outside dataset of {self.dataset.n} objects"
            )
        return row
