"""MOSAIC-style index for incomplete data (Ooi, Goh & Tan, VLDB 1998).

MOSAIC's idea: partition the dataset by observed-dimension pattern — the
same buckets ESB uses (paper Lemma 1) — and index each bucket with a
*complete-data* structure over its observed dimensions, because inside a
bucket nothing is missing. Here every bucket gets an aR-tree
(:class:`repro.rtree.ARTree`), so dominance-candidate retrieval becomes a
box count/query per bucket:

for a probe ``o`` and a bucket with observed dims ``D_b``, any object
``q`` of the bucket that ``o`` dominates must satisfy ``o[i] <= q[i]`` on
every dim of ``D_b ∩ Iset(o)`` — i.e. lie in the box anchored at ``o``'s
projection (unconstrained on the bucket dims ``o`` does not observe).
Buckets sharing no dimension with ``o`` are skipped outright (all
incomparable).
"""

from __future__ import annotations

import numpy as np

from ..core.dataset import IncompleteDataset
from ..rtree import ARTree, DEFAULT_FANOUT
from ..skyband.buckets import Bucket, BucketIndex
from .base import IncompleteIndex

__all__ = ["MosaicIndex"]


class MosaicIndex(IncompleteIndex):
    """Per-bucket aR-trees over observed dimensions."""

    name = "mosaic"

    def __init__(self, dataset: IncompleteDataset, *, fanout: int = DEFAULT_FANOUT) -> None:
        super().__init__(dataset)
        self._fanout = int(fanout)
        self._buckets: BucketIndex | None = None
        self._trees: dict[int, ARTree] = {}

    def _build(self) -> None:
        self._buckets = BucketIndex(self.dataset)
        minimized = self.dataset.minimized
        for bucket in self._buckets:
            values = minimized[np.ix_(bucket.indices, np.asarray(bucket.dims))]
            self._trees[bucket.pattern] = ARTree(values, fanout=self._fanout)

    @property
    def buckets(self) -> BucketIndex:
        """The underlying observed-pattern partition."""
        self.build()
        return self._buckets

    @property
    def index_bytes(self) -> int:
        """Rough footprint: projected coordinates plus node rectangles."""
        self.build()
        total = 0
        for tree in self._trees.values():
            total += tree.points.nbytes
            for node in tree.iter_nodes():
                total += node.rect.low.nbytes + node.rect.high.nbytes
        return total

    # -- probe helpers ---------------------------------------------------------

    def _bucket_box(self, bucket: Bucket, row: int) -> tuple[np.ndarray, np.ndarray] | None:
        """Query box for *row* against *bucket*, or None when incomparable."""
        probe_pattern = self.dataset.patterns[row]
        if (probe_pattern & bucket.pattern) == 0:
            return None
        probe = self.dataset.minimized[row]
        d_local = len(bucket.dims)
        low = np.full(d_local, -np.inf)
        for pos, dim in enumerate(bucket.dims):
            if (probe_pattern >> dim) & 1:
                low[pos] = probe[dim]
        high = np.full(d_local, np.inf)
        return low, high

    def upper_bound_score(self, row: int) -> int:
        """Sum of per-bucket box counts (minus the probe itself).

        Valid because every object dominated by ``o`` satisfies the box
        condition of its own bucket, and ``o`` — which always lies in its
        own bucket's box — can never dominate itself.
        """
        row = self._check_row(row)
        self.build()
        total = 0
        for bucket in self._buckets:
            box = self._bucket_box(bucket, row)
            if box is None:
                continue
            total += self._trees[bucket.pattern].count_in_box(*box)
        return total - 1

    def candidate_rows(self, row: int) -> np.ndarray:
        row = self._check_row(row)
        self.build()
        found: list[np.ndarray] = []
        for bucket in self._buckets:
            box = self._bucket_box(bucket, row)
            if box is None:
                continue
            local = self._trees[bucket.pattern].query_box(*box)
            if local.size:
                found.append(bucket.indices[local])
        if not found:
            return np.empty(0, dtype=np.intp)
        rows = np.concatenate(found)
        return np.sort(rows[rows != row])
