"""Skyline and k-skyband directly on incomplete data.

These are the related-work substrates the paper builds on — Khalefa et
al.'s ISkyline model [1] and Gao et al.'s k-skyband on incomplete data [2]
— under the same Definition 1 dominance. Since that dominance is
non-transitive, no skyband-vs-skyband shortcut applies; membership is
decided by exact dominator counting (vectorised one object at a time),
optionally stopping a count early once it reaches ``k``.

They are used by the examples (a skyline is the natural companion output
to a TKD ranking) and give ESB's bucket-local complete-data skyband a
whole-dataset counterpart.
"""

from __future__ import annotations

import numpy as np

from .._util import require_positive_int
from ..core.dataset import IncompleteDataset
from ..core.dominance import dominator_mask

__all__ = [
    "dominator_counts_incomplete",
    "k_skyband_incomplete",
    "skyline_incomplete",
]


def dominator_counts_incomplete(dataset: IncompleteDataset) -> np.ndarray:
    """Number of objects dominating each object (Definition 1 dominance)."""
    out = np.empty(dataset.n, dtype=np.int64)
    for row in range(dataset.n):
        out[row] = int(dominator_mask(dataset, row).sum())
    return out


def k_skyband_incomplete(dataset: IncompleteDataset, k: int) -> np.ndarray:
    """Row indices of objects dominated by fewer than *k* others."""
    k = require_positive_int(k, "k")
    counts = dominator_counts_incomplete(dataset)
    return np.flatnonzero(counts < k)


def skyline_incomplete(dataset: IncompleteDataset) -> np.ndarray:
    """Row indices of the incomplete-data skyline (dominated by nobody)."""
    return k_skyband_incomplete(dataset, 1)
