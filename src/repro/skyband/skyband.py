"""Skyline and k-skyband on **complete** data.

The k-skyband query (Papadias et al.) retrieves the objects dominated by
fewer than ``k`` others; the skyline is the 1-skyband. ESB (paper Lemma 1)
runs a *local* k-skyband inside each bucket, where the data is complete in
the bucket's dimensions and dominance is transitive — which licenses the
classic optimisation used here: an object dominated by ``k`` or more
*skyband members* is dominated by at least ``k`` objects overall, so
membership can be decided against the running skyband only.

All functions take a plain ``(m, d')`` float matrix in minimized
orientation (smaller is better) with **no missing values**.
"""

from __future__ import annotations

import numpy as np

from .._util import require_positive_int
from ..errors import InvalidParameterError

__all__ = [
    "k_skyband_complete",
    "skyline_complete",
    "dominated_counts_complete",
]


def _check_matrix(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise InvalidParameterError(f"expected a 2-D matrix, got shape {values.shape}")
    if np.isnan(values).any():
        raise InvalidParameterError(
            "complete-data skyband got NaN values; project the bucket first"
        )
    return values


def k_skyband_complete(values: np.ndarray, k: int) -> np.ndarray:
    """Boolean membership mask of the k-skyband of a complete matrix.

    Processes objects in ascending sum order (a dominator always has a
    strictly smaller coordinate sum), comparing each object only against
    the skyband found so far — correct by transitivity, and far faster
    than all-pairs counting.
    """
    values = _check_matrix(values)
    k = require_positive_int(k, "k")
    m = values.shape[0]
    mask = np.zeros(m, dtype=bool)
    if m == 0:
        return mask

    order = np.argsort(values.sum(axis=1), kind="stable")
    band_rows: list[int] = []
    band_values = np.empty_like(values)

    for idx in order:
        row = values[idx]
        if band_rows:
            band = band_values[: len(band_rows)]
            dominates = np.all(band <= row, axis=1) & np.any(band < row, axis=1)
            dominated_by = int(np.count_nonzero(dominates))
        else:
            dominated_by = 0
        if dominated_by < k:
            mask[idx] = True
            band_values[len(band_rows)] = row
            band_rows.append(int(idx))
    return mask


def skyline_complete(values: np.ndarray) -> np.ndarray:
    """Boolean membership mask of the skyline (1-skyband)."""
    return k_skyband_complete(values, 1)


def dominated_counts_complete(values: np.ndarray) -> np.ndarray:
    """Exact dominator counts of every object of a complete matrix.

    Quadratic; intended for tests and small inputs (it is the oracle the
    skyband implementation is validated against).
    """
    values = _check_matrix(values)
    m = values.shape[0]
    counts = np.zeros(m, dtype=np.int64)
    for j in range(m):
        row = values[j]
        dominates = np.all(values <= row, axis=1) & np.any(values < row, axis=1)
        counts[j] = int(np.count_nonzero(dominates))
    return counts
