"""Constrained and group-by skylines on incomplete data.

The paper's Lemma 1 is borrowed from Gao et al., "Processing k-skyband,
constrained skyline, and group-by skyline queries on incomplete data"
(Expert Systems with Applications, 2014) — reference [2]. That companion
paper's other two query types are natural library citizens and are
implemented here under the same Definition 1 dominance:

* **constrained skyline** — the skyline of the objects whose *observed*
  values all satisfy per-dimension range constraints (a missing value
  cannot violate a constraint: there is nothing to test, matching the
  zero-knowledge missing-data model);
* **group-by skyline** — partition objects by their value on a grouping
  dimension (objects missing that dimension form their own group) and
  compute a skyline per group.

Both operate in the dataset's *original* orientation for constraints
(users think in raw units) while dominance runs on the minimized view.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.dataset import IncompleteDataset
from ..core.dominance import dominates
from ..errors import InvalidParameterError

__all__ = ["constrained_skyline", "group_by_skyline", "RangeConstraint"]


class RangeConstraint:
    """A closed interval ``[low, high]`` on one dimension (either side open).

    ``low=None`` / ``high=None`` leave that side unconstrained. Bounds are
    expressed in the dataset's original (user-facing) units.
    """

    __slots__ = ("low", "high")

    def __init__(self, low: float | None = None, high: float | None = None) -> None:
        if low is not None and high is not None and low > high:
            raise InvalidParameterError(f"empty constraint range [{low}, {high}]")
        self.low = None if low is None else float(low)
        self.high = None if high is None else float(high)

    def admits(self, value: float) -> bool:
        """Does an observed *value* satisfy this constraint?"""
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RangeConstraint({self.low}, {self.high})"


def _resolve_dim(dataset: IncompleteDataset, dim) -> int:
    if isinstance(dim, str):
        try:
            return dataset.dim_names.index(dim)
        except ValueError:
            raise InvalidParameterError(
                f"unknown dimension {dim!r}; names: {dataset.dim_names}"
            ) from None
    dim = int(dim)
    if dim < 0 or dim >= dataset.d:
        raise InvalidParameterError(f"dimension {dim} outside [0, {dataset.d})")
    return dim


def _qualifying_rows(dataset: IncompleteDataset, constraints: Mapping) -> np.ndarray:
    keep = np.ones(dataset.n, dtype=bool)
    for dim, constraint in constraints.items():
        dim = _resolve_dim(dataset, dim)
        if isinstance(constraint, (tuple, list)):
            constraint = RangeConstraint(*constraint)
        elif not isinstance(constraint, RangeConstraint):
            raise InvalidParameterError(
                f"constraint for dim {dim} must be RangeConstraint or (low, high)"
            )
        observed = dataset.observed[:, dim]
        column = dataset.values[:, dim]
        ok = np.ones(dataset.n, dtype=bool)
        if constraint.low is not None:
            ok &= ~observed | (column >= constraint.low)
        if constraint.high is not None:
            ok &= ~observed | (column <= constraint.high)
        keep &= ok
    return keep


def _skyline_among(dataset: IncompleteDataset, rows: Sequence[int]) -> list[int]:
    """Skyline (no dominator among *rows*) under Definition 1 dominance.

    Quadratic in ``len(rows)``: non-transitive dominance leaves no sound
    shortcut, exactly the paper's point.
    """
    rows = [int(r) for r in rows]
    out = []
    for candidate in rows:
        if not any(
            other != candidate and dominates(dataset, other, candidate)
            for other in rows
        ):
            out.append(candidate)
    return out


def constrained_skyline(
    dataset: IncompleteDataset,
    constraints: Mapping,
) -> list[int]:
    """Row indices of the constrained skyline.

    *constraints* maps dimension (index or name) to a
    :class:`RangeConstraint` or a ``(low, high)`` tuple, e.g.::

        constrained_skyline(zillow, {"price": (None, 500_000), "bedrooms": (3, None)})

    An object qualifies iff none of its *observed* values violates a
    constraint; the skyline is then computed among qualifiers only
    (dominance is still judged against qualifiers, per [2]).
    """
    if not constraints:
        raise InvalidParameterError("constrained_skyline needs at least one constraint")
    rows = np.flatnonzero(_qualifying_rows(dataset, constraints))
    return _skyline_among(dataset, rows.tolist())


def group_by_skyline(
    dataset: IncompleteDataset,
    dim,
    *,
    missing_group: str = "<missing>",
) -> dict:
    """Per-group skylines, grouping on one dimension's raw value.

    Returns ``{group_key: [row indices]}``; objects missing the grouping
    dimension collect under *missing_group*. Dominance inside a group is
    evaluated on the **other** dimensions (grouping on a dimension and
    then letting it dominate within the group would be double counting,
    following [2]).
    """
    dim = _resolve_dim(dataset, dim)
    if dataset.d < 2:
        raise InvalidParameterError("group-by skyline needs >= 2 dimensions")
    other_dims = [j for j in range(dataset.d) if j != dim]

    groups: dict = {}
    for row in range(dataset.n):
        if dataset.observed[row, dim]:
            value = dataset.values[row, dim]
            key = int(value) if float(value).is_integer() else float(value)
        else:
            key = missing_group
        groups.setdefault(key, []).append(row)

    out: dict = {}
    for key, rows in groups.items():
        # Skyline within the group on the non-grouping dimensions; objects
        # with nothing observed there are trivially skyline members.
        rows_with_view = [
            row for row in rows if dataset.observed[row][other_dims].any()
        ]
        orphans = [row for row in rows if row not in set(rows_with_view)]
        if rows_with_view:
            projected = dataset.project(other_dims)
            # Map original rows into the projection (ids are preserved).
            proj_index = {object_id: i for i, object_id in enumerate(projected.ids)}
            view_rows = [proj_index[dataset.ids[row]] for row in rows_with_view]
            skyline_local = set(_skyline_among(projected, view_rows))
            members = [
                row
                for row, proj_row in zip(rows_with_view, view_rows)
                if proj_row in skyline_local
            ]
        else:
            members = []
        out[key] = sorted(members + orphans)
    return out
