"""Bucket partitioning by observed-dimension pattern (paper Section 4.1).

Objects whose observed attributes fall in exactly the same subset of
dimensions share a bit pattern ``b_o``; within such a *bucket* the data is
complete (in the bucket's ``d' ≤ d`` dimensions) and dominance **is
transitive** — the property Lemma 1 exploits for ESB's local-skyband
pruning.

Buckets also drive the ``F(o)`` (incomparable set) computation for BIG and
IBIG: two objects are incomparable iff their patterns are disjoint, so
``F(o)`` depends only on ``b_o`` and is shared by the whole bucket. The
:class:`BucketIndex` memoises one packed mask per distinct pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitmap.bitvector import BitVector
from ..core.dataset import IncompleteDataset
from ..errors import InvalidParameterError

__all__ = ["Bucket", "BucketIndex"]


@dataclass(frozen=True)
class Bucket:
    """One bucket ``O_b``: the objects sharing bit pattern ``pattern``."""

    #: The shared bit pattern ``b`` (bit ``i`` set iff dimension ``i`` observed).
    pattern: int
    #: Observed dimension indices, ascending (the bucket's ``d'`` dims).
    dims: tuple[int, ...]
    #: Row indices of member objects, ascending.
    indices: np.ndarray

    def __len__(self) -> int:
        return int(self.indices.size)


class BucketIndex:
    """All buckets of a dataset plus pattern-level incomparability masks."""

    def __init__(self, dataset: IncompleteDataset) -> None:
        self.dataset = dataset
        patterns = dataset.patterns
        groups: dict[int, list[int]] = {}
        for row, pattern in enumerate(patterns):
            groups.setdefault(pattern, []).append(row)

        self._buckets: list[Bucket] = []
        self._by_pattern: dict[int, Bucket] = {}
        for pattern, rows in groups.items():
            dims = tuple(i for i in range(dataset.d) if (pattern >> i) & 1)
            bucket = Bucket(
                pattern=pattern,
                dims=dims,
                indices=np.asarray(rows, dtype=np.intp),
            )
            self._buckets.append(bucket)
            self._by_pattern[pattern] = bucket

        self._member_masks: dict[int, BitVector] = {}
        self._incomparable_masks: dict[int, BitVector] = {}

    # -- access -----------------------------------------------------------

    @property
    def buckets(self) -> list[Bucket]:
        """All buckets (in order of first pattern appearance)."""
        return list(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)

    def __iter__(self):
        return iter(self._buckets)

    def bucket_of(self, row: int) -> Bucket:
        """The bucket containing object *row*."""
        return self._by_pattern[self.dataset.patterns[row]]

    def by_pattern(self, pattern: int) -> Bucket:
        """The bucket for an exact bit pattern."""
        try:
            return self._by_pattern[pattern]
        except KeyError:
            raise InvalidParameterError(f"no bucket with pattern {pattern:#x}") from None

    # -- masks --------------------------------------------------------------

    def member_mask(self, pattern: int) -> BitVector:
        """Packed membership mask of the bucket with *pattern*."""
        if pattern not in self._member_masks:
            bucket = self.by_pattern(pattern)
            self._member_masks[pattern] = BitVector.from_indices(
                self.dataset.n, bucket.indices
            )
        return self._member_masks[pattern]

    def incomparable_mask(self, pattern: int) -> BitVector:
        """``F(o)`` as a packed mask, for any object with bit pattern *pattern*.

        An object is incomparable to ``o`` iff the patterns are disjoint
        (``b_o & b_p == 0``); the mask is the union of all such buckets'
        members. Memoised per pattern — BIG/IBIG typically touch only the
        few patterns near the head of the ``MaxScore`` queue.
        """
        if pattern not in self._incomparable_masks:
            mask = BitVector.zeros(self.dataset.n)
            for bucket in self._buckets:
                if (bucket.pattern & pattern) == 0:
                    mask.ior(self.member_mask(bucket.pattern))
            self._incomparable_masks[pattern] = mask
        return self._incomparable_masks[pattern]

    def incomparable_count(self, pattern: int) -> int:
        """``|F(o)|`` for any object with the given pattern."""
        return self.incomparable_mask(pattern).count()

    # -- stats ----------------------------------------------------------------

    def sizes(self) -> list[int]:
        """Bucket sizes, aligned with :attr:`buckets`."""
        return [len(bucket) for bucket in self._buckets]
