"""Skyline/k-skyband substrates and bucket partitioning."""

from .buckets import Bucket, BucketIndex
from .skyband import dominated_counts_complete, k_skyband_complete, skyline_complete

__all__ = [
    "Bucket",
    "BucketIndex",
    "k_skyband_complete",
    "skyline_complete",
    "dominated_counts_complete",
]
