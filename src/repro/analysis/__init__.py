"""Analysis substrates: dominance graphs, comparability statistics, and
answer-stability measurements under missingness."""

from .graph import (
    ComparabilityStats,
    comparability_stats,
    dominance_graph,
    find_dominance_cycles,
    is_transitive,
)
from .stability import (
    jaccard_distance,
    missingness_sensitivity,
    perturbation_stability,
)

__all__ = [
    "dominance_graph",
    "find_dominance_cycles",
    "is_transitive",
    "comparability_stats",
    "ComparabilityStats",
    "missingness_sensitivity",
    "perturbation_stability",
    "jaccard_distance",
]
