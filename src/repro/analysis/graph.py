"""Dominance-graph analysis on incomplete data (networkx substrate).

The paper's central structural point — dominance over incomplete data is
non-transitive and may be **cyclic** (Section 3) — becomes tangible when
the relation is materialised as a directed graph. This module builds that
graph and provides the analyses the examples and tests use:

* :func:`dominance_graph` — nodes are object ids, edge ``o → p`` iff
  ``o ≻ p``; each node carries its ``score`` (out-degree ≡ Definition 2);
* :func:`find_dominance_cycles` — the cycles that make R-tree/transitive
  pruning unsound on incomplete data (always empty for complete data);
* :func:`comparability_stats` — how much of the pairwise space is even
  comparable at a given missing rate (the force behind the paper's
  Fig. 16 trend).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..core.dataset import IncompleteDataset
from ..core.dominance import dominated_mask
from ..errors import InvalidParameterError

__all__ = [
    "dominance_graph",
    "find_dominance_cycles",
    "is_transitive",
    "comparability_stats",
    "ComparabilityStats",
]


def dominance_graph(dataset: IncompleteDataset, *, max_n: int = 4000) -> nx.DiGraph:
    """Materialise the full dominance relation as a ``networkx`` digraph.

    Quadratic in the dataset size; guarded by *max_n*.
    """
    if dataset.n > max_n:
        raise InvalidParameterError(
            f"dominance_graph on n={dataset.n} exceeds max_n={max_n}"
        )
    graph = nx.DiGraph()
    for row, object_id in enumerate(dataset.ids):
        graph.add_node(object_id, row=row)
    for row, object_id in enumerate(dataset.ids):
        dominated = np.flatnonzero(dominated_mask(dataset, row))
        for target in dominated:
            graph.add_edge(object_id, dataset.ids[int(target)])
        graph.nodes[object_id]["score"] = int(dominated.size)
    return graph


def find_dominance_cycles(
    dataset: IncompleteDataset, *, limit: int = 10, max_n: int = 2000
) -> list[list[str]]:
    """Up to *limit* dominance cycles (empty iff the relation is acyclic).

    Complete data can never produce cycles (dominance is a strict partial
    order there); incomplete data can — the paper's Fig. 2-adjacent
    remark — and this surfaces concrete witnesses.
    """
    graph = dominance_graph(dataset, max_n=max_n)
    cycles: list[list[str]] = []
    for cycle in nx.simple_cycles(graph):
        cycles.append(list(cycle))
        if len(cycles) >= limit:
            break
    return cycles


def is_transitive(dataset: IncompleteDataset, *, max_n: int = 500) -> bool:
    """Check whether the dominance relation happens to be transitive.

    True for any complete dataset; typically False once values go missing.
    """
    graph = dominance_graph(dataset, max_n=max_n)
    for a, b in graph.edges:
        for __, c in graph.out_edges(b):
            if c != a and not graph.has_edge(a, c):
                return False
            if c == a:
                return False  # a 2-cycle breaks transitivity outright
    return True


@dataclass(frozen=True)
class ComparabilityStats:
    """Pairwise comparability summary of an incomplete dataset."""

    n: int
    comparable_pairs: int
    total_pairs: int
    dominance_pairs: int

    @property
    def comparable_fraction(self) -> float:
        """Fraction of unordered pairs sharing an observed dimension."""
        if self.total_pairs == 0:
            return 1.0
        return self.comparable_pairs / self.total_pairs

    @property
    def dominance_fraction(self) -> float:
        """Fraction of unordered pairs related by dominance (either way)."""
        if self.total_pairs == 0:
            return 0.0
        return self.dominance_pairs / self.total_pairs


def comparability_stats(dataset: IncompleteDataset, *, max_n: int = 4000) -> ComparabilityStats:
    """Count comparable and dominance-related pairs (one O(n²·d) sweep)."""
    if dataset.n > max_n:
        raise InvalidParameterError(
            f"comparability_stats on n={dataset.n} exceeds max_n={max_n}"
        )
    observed = dataset.observed
    n = dataset.n
    comparable = 0
    dominance = 0
    for row in range(n):
        shared = (observed[row + 1 :] & observed[row]).any(axis=1)
        comparable += int(shared.sum())
        dominance += int(dominated_mask(dataset, row).sum())
    # Dominance is asymmetric, so the ordered-edge total equals the number
    # of unordered pairs related by dominance.
    return ComparabilityStats(
        n=n,
        comparable_pairs=comparable,
        total_pairs=n * (n - 1) // 2,
        dominance_pairs=dominance,
    )
