"""Answer-quality analysis: how stable is a TKD answer under missingness?

The paper closes with "we will further study how to improve the quality
of TKD query over incomplete data" (Section 6). This module supplies the
measurement side of that future-work direction:

* :func:`missingness_sensitivity` — start from *complete* ground truth,
  inject missingness at increasing rates under each mechanism (MCAR /
  MAR / NMAR), and measure how far the incomplete-data answer drifts
  from the complete-data answer (Jaccard distance, the paper's own
  Table 4 metric, plus top-score retention).
* :func:`perturbation_stability` — for a dataset that is *already*
  incomplete (no ground truth available), hide small random fractions of
  the remaining observed cells and measure answer churn across trials —
  a bootstrap-style confidence signal for a production ranking.

Both return plain row dictionaries, ready for
:func:`repro.experiments.reporting` tables or pandas.
"""

from __future__ import annotations

import numpy as np

from .._util import coerce_rng, require_fraction, require_positive_int
from ..core.dataset import IncompleteDataset
from ..core.query import top_k_dominating
from ..datasets.missing import inject_mar, inject_mcar, inject_nmar
from ..errors import InvalidParameterError

__all__ = ["missingness_sensitivity", "perturbation_stability", "jaccard_distance"]

_MECHANISMS = {
    "mcar": inject_mcar,
    "mar": inject_mar,
    "nmar": inject_nmar,
}


def jaccard_distance(a, b) -> float:
    """``1 − |A∩B| / |A∪B|`` over two id collections (0 when both empty)."""
    a, b = set(a), set(b)
    union = a | b
    if not union:
        return 0.0
    return 1.0 - len(a & b) / len(union)


def missingness_sensitivity(
    complete_values: np.ndarray,
    k: int,
    *,
    rates=(0.1, 0.2, 0.3, 0.4),
    mechanisms=("mcar", "mar", "nmar"),
    algorithm: str = "big",
    trials: int = 3,
    directions="min",
    rng=None,
) -> list[dict]:
    """Answer drift vs a complete-data oracle across missingness settings.

    Parameters
    ----------
    complete_values: ``(n, d)`` fully observed ground-truth matrix.
    k: TKD answer size.
    rates: missing rates to inject.
    mechanisms: subset of ``{"mcar", "mar", "nmar"}``.
    algorithm: registry name used for all queries.
    trials: independent injections per (mechanism, rate) cell.

    Returns one row per (mechanism, rate) with the mean Jaccard distance
    from the oracle answer and the mean fraction of oracle objects kept.
    """
    complete_values = np.asarray(complete_values, dtype=np.float64)
    if complete_values.ndim != 2:
        raise InvalidParameterError(
            f"expected a (n, d) matrix, got shape {complete_values.shape}"
        )
    if np.isnan(complete_values).any():
        raise InvalidParameterError(
            "missingness_sensitivity needs complete ground truth; "
            "use perturbation_stability for already-incomplete data"
        )
    k = require_positive_int(k, "k")
    trials = require_positive_int(trials, "trials")
    unknown = set(mechanisms) - set(_MECHANISMS)
    if unknown:
        raise InvalidParameterError(
            f"unknown mechanisms {sorted(unknown)}; available: {sorted(_MECHANISMS)}"
        )
    rng = coerce_rng(rng)

    ids = [f"o{i}" for i in range(complete_values.shape[0])]
    oracle_ds = IncompleteDataset(complete_values, ids=ids, directions=directions)
    oracle = top_k_dominating(oracle_ds, k, algorithm=algorithm)

    rows = []
    for mechanism in mechanisms:
        inject = _MECHANISMS[mechanism]
        for rate in rates:
            rate = require_fraction(rate, "rate", inclusive_high=False)
            distances, kept = [], []
            for _ in range(trials):
                holed = inject(complete_values, rate, rng=rng)
                ds = IncompleteDataset(holed, ids=ids, directions=directions)
                answer = top_k_dominating(ds, k, algorithm=algorithm)
                distances.append(jaccard_distance(oracle.id_set, answer.id_set))
                kept.append(len(oracle.id_set & answer.id_set) / k)
            rows.append(
                {
                    "mechanism": mechanism,
                    "rate": rate,
                    "k": k,
                    "trials": trials,
                    "jaccard_mean": float(np.mean(distances)),
                    "jaccard_max": float(np.max(distances)),
                    "oracle_kept_mean": float(np.mean(kept)),
                }
            )
    return rows


def perturbation_stability(
    dataset: IncompleteDataset,
    k: int,
    *,
    drop_fraction: float = 0.05,
    trials: int = 10,
    algorithm: str = "big",
    rng=None,
) -> dict:
    """Bootstrap-style churn of a TKD answer under extra missingness.

    Hides a random *drop_fraction* of the currently observed cells
    (never an object's last one), re-answers the query, and aggregates
    over *trials*: per-object persistence frequencies and the mean
    Jaccard distance from the unperturbed answer. High persistence =
    an answer the data actually supports; low = rank fragility.
    """
    k = require_positive_int(k, "k")
    trials = require_positive_int(trials, "trials")
    drop_fraction = require_fraction(
        drop_fraction, "drop_fraction", inclusive_low=False, inclusive_high=False
    )
    rng = coerce_rng(rng)

    base = top_k_dominating(dataset, k, algorithm=algorithm)
    values = dataset.values
    observed = dataset.observed
    persistence = {object_id: 0 for object_id in base.ids}
    distances = []

    for _ in range(trials):
        holed = values.copy()
        candidates = np.argwhere(observed)
        # Never remove an object's only observed value (model requirement).
        last_value_rows = observed.sum(axis=1) == 1
        keep_mask = ~last_value_rows[candidates[:, 0]]
        candidates = candidates[keep_mask]
        n_drop = max(1, int(round(candidates.shape[0] * drop_fraction)))
        chosen = candidates[rng.choice(candidates.shape[0], size=n_drop, replace=False)]
        holed[chosen[:, 0], chosen[:, 1]] = np.nan
        # Dropping several cells of one row could still blank it entirely;
        # restore one dropped cell for any such row.
        emptied = np.flatnonzero(~(~np.isnan(holed)).any(axis=1))
        for row in emptied:
            dim = chosen[chosen[:, 0] == row][0, 1]
            holed[row, dim] = values[row, dim]

        perturbed = IncompleteDataset(
            holed, ids=list(dataset.ids), directions=list(dataset.directions)
        )
        answer = top_k_dominating(perturbed, k, algorithm=algorithm)
        distances.append(jaccard_distance(base.id_set, answer.id_set))
        for object_id in answer.id_set & base.id_set:
            persistence[object_id] += 1

    return {
        "k": k,
        "trials": trials,
        "drop_fraction": drop_fraction,
        "jaccard_mean": float(np.mean(distances)),
        "jaccard_max": float(np.max(distances)),
        "persistence": {
            object_id: count / trials for object_id, count in persistence.items()
        },
        "baseline_ids": list(base.ids),
    }
