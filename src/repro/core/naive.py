"""The Naive baseline (paper Section 4.1, first paragraph).

Compute ``score(o)`` for *every* object by exhaustive pairwise comparison
and return the ``k`` highest. This is the correctness oracle every other
algorithm is tested against, and the baseline of the paper's Fig. 12
(where it is orders of magnitude slower and is dropped from later plots).
"""

from __future__ import annotations

from typing import Sequence

from .base import TKDAlgorithm
from .dataset import IncompleteDataset
from .result import TKDResult, select_top_k
from .score import score_all
from .stats import QueryStats

__all__ = ["NaiveTKD", "naive_tkd"]


class NaiveTKD(TKDAlgorithm):
    """Exhaustive-comparison TKD (no pruning, no index)."""

    name = "naive"

    def __init__(self, dataset: IncompleteDataset, *, block: int | None = None) -> None:
        super().__init__(dataset)
        #: Kernel block size; None lets the engine pick from ``(n, d)``.
        self._block = block

    def _run(self, k: int, *, tie_break: str, rng, stats: QueryStats) -> tuple[Sequence[int], Sequence[int]]:
        scores = score_all(self.dataset, block=self._block)
        stats.scores_computed = self.dataset.n
        stats.comparisons = self._pairwise_cost(self.dataset.n, self.dataset.n)
        selection = select_top_k(scores, k, tie_break=tie_break, rng=rng)
        return selection, [int(scores[i]) for i in selection]


def naive_tkd(dataset: IncompleteDataset, k: int, *, tie_break: str = "index", rng=None) -> TKDResult:
    """One-shot Naive TKD query (builds nothing, scores everything)."""
    return NaiveTKD(dataset).query(k, tie_break=tie_break, rng=rng)
