"""ESB — the Extended Skyband Based algorithm (paper Section 4.1, Alg. 1).

ESB prunes with **Lemma 1 (local skyband technique)**: partition ``S`` into
buckets by observed-dimension pattern; inside a bucket the data is complete
and dominance is transitive, so any object outside the bucket's local
k-skyband is dominated by ≥ k bucket-mates that each dominate everything it
dominates — it can never reach the top-k. The union of local k-skybands is
therefore a sound candidate set ``S_C``; exact scores are then computed for
the candidates only, and the best ``k`` win.

ESB's weakness (motivating UBB) is that ``|S_C|`` is data-dependent: in the
worst case nothing is pruned and every score is computed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..engine.kernels import dominated_counts
from ..skyband.buckets import BucketIndex
from ..skyband.skyband import k_skyband_complete
from .base import TKDAlgorithm
from .dataset import IncompleteDataset
from .result import TKDResult, select_top_k
from .stats import QueryStats

__all__ = ["ESBTKD", "esb_tkd", "esb_candidates"]


def esb_candidates(dataset: IncompleteDataset, k: int, *, buckets: BucketIndex | None = None) -> np.ndarray:
    """The ESB candidate set: union of per-bucket local k-skybands.

    Returns the ascending row indices of ``S_C`` (Lemma 1). Exposed
    separately because tests validate the Fig. 4 candidate set directly.
    """
    if buckets is None:
        buckets = BucketIndex(dataset)
    values = dataset.minimized
    selected: list[np.ndarray] = []
    for bucket in buckets:
        local = values[np.ix_(bucket.indices, np.asarray(bucket.dims, dtype=np.intp))]
        member_mask = k_skyband_complete(local, k)
        selected.append(bucket.indices[member_mask])
    if not selected:
        return np.zeros(0, dtype=np.intp)
    return np.sort(np.concatenate(selected))


class ESBTKD(TKDAlgorithm):
    """Extended skyband based TKD over incomplete data."""

    name = "esb"

    def __init__(self, dataset: IncompleteDataset, *, buckets: BucketIndex | None = None) -> None:
        super().__init__(dataset)
        self._buckets = buckets

    def _prepare(self) -> None:
        if self._buckets is None:
            self._buckets = BucketIndex(self.dataset)

    @property
    def buckets(self) -> BucketIndex:
        """The bucket partition (built on first use)."""
        self.prepare()
        return self._buckets

    def _run(self, k: int, *, tie_break: str, rng, stats: QueryStats) -> tuple[Sequence[int], Sequence[int]]:
        candidates = esb_candidates(self.dataset, k, buckets=self._buckets)
        stats.candidates = int(candidates.size)
        stats.pruned_h1 = self.dataset.n - int(candidates.size)  # Lemma 1 pruning

        # Exact scores for the surviving candidates only, one blocked
        # broadcast kernel sweep (the block size adapts to (n, d)).
        scores = dominated_counts(self.dataset, candidates)
        stats.scores_computed = int(candidates.size)
        stats.comparisons = self._pairwise_cost(candidates.size, self.dataset.n)

        full_scores = np.full(self.dataset.n, -1, dtype=np.int64)
        full_scores[candidates] = scores
        eligible = np.zeros(self.dataset.n, dtype=bool)
        eligible[candidates] = True
        selection = select_top_k(full_scores, k, tie_break=tie_break, rng=rng, eligible=eligible)
        return selection, [int(full_scores[i]) for i in selection]


def esb_tkd(dataset: IncompleteDataset, k: int, *, tie_break: str = "index", rng=None) -> TKDResult:
    """One-shot ESB TKD query."""
    return ESBTKD(dataset).query(k, tie_break=tie_break, rng=rng)
