"""Partition-pruned streaming TKD for massive incomplete data.

The paper's related work cites TDEP (Han, Li & Gao [24]) for TKD queries
"on massive data" — datasets processed partition-by-partition under a
bounded working memory instead of all at once. This module transplants
that idea to the incomplete-data model:

* The dataset is split into fixed-size row partitions. One pass builds a
  small **synopsis** per partition: the OR and AND of its objects'
  observed-dimension patterns and the per-dimension maxima of its
  observed values.
* Queries then run the UBB control flow (``MaxScore`` queue + Heuristic
  1), but ``Get-Score`` streams over partitions and uses the synopses to
  skip partitions wholesale:

  - a partition whose pattern-OR is disjoint from the probe's pattern
    contains only incomparable objects;
  - a partition where some probe dimension is observed by *every* member
    (pattern-AND) yet the partition maximum on it is below the probe's
    value cannot contain anything the probe dominates.

Peak working memory is one partition of rows plus the synopses — the
shape a disk-resident implementation would have, with partition skips
standing in for saved I/O. Skips are reported in
``stats.extra["partitions_skipped"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._util import require_positive_int
from .base import TKDAlgorithm
from .dataset import IncompleteDataset
from .maxscore import max_scores, maxscore_queue
from .result import CandidateSet, TKDResult
from .stats import QueryStats

__all__ = ["PartitionSynopsis", "PartitionedTKD", "partitioned_tkd"]


@dataclass(frozen=True)
class PartitionSynopsis:
    """One partition's pruning summary (built in a single scan)."""

    #: Row range ``[start, stop)`` of the partition.
    start: int
    stop: int
    #: OR of member observed-patterns: dimensions observed by *some* member.
    pattern_or: int
    #: AND of member observed-patterns: dimensions observed by *all* members.
    pattern_and: int
    #: Per-dimension max over observed values (``-inf`` where none observed).
    max_observed: np.ndarray

    @property
    def count(self) -> int:
        """Number of rows summarised."""
        return self.stop - self.start


def _build_synopses(dataset: IncompleteDataset, partition_rows: int) -> list[PartitionSynopsis]:
    synopses = []
    observed = dataset.observed
    minimized = dataset.minimized
    patterns = dataset.patterns
    for start in range(0, dataset.n, partition_rows):
        stop = min(start + partition_rows, dataset.n)
        pattern_or = 0
        pattern_and = -1
        for row in range(start, stop):
            pattern_or |= patterns[row]
            pattern_and &= patterns[row]
        block_vals = np.where(observed[start:stop], minimized[start:stop], -np.inf)
        synopses.append(
            PartitionSynopsis(
                start=start,
                stop=stop,
                pattern_or=pattern_or,
                pattern_and=pattern_and,
                max_observed=block_vals.max(axis=0),
            )
        )
    return synopses


class PartitionedTKD(TKDAlgorithm):
    """TDEP-inspired bounded-memory TKD over incomplete data."""

    name = "partitioned"

    def __init__(
        self,
        dataset: IncompleteDataset,
        *,
        partition_rows: int = 2048,
        enable_h1: bool = True,
    ) -> None:
        super().__init__(dataset)
        self.partition_rows = require_positive_int(partition_rows, "partition_rows")
        self._enable_h1 = bool(enable_h1)
        self._synopses: list[PartitionSynopsis] | None = None
        self._maxscore: np.ndarray | None = None
        self._queue: np.ndarray | None = None

    def _prepare(self) -> None:
        self._synopses = _build_synopses(self.dataset, self.partition_rows)
        self._maxscore = max_scores(self.dataset)
        self._queue = maxscore_queue(self.dataset, self._maxscore)

    @property
    def synopses(self) -> list[PartitionSynopsis]:
        """Per-partition summaries (built on first use)."""
        self.prepare()
        return list(self._synopses)

    @property
    def index_bytes(self) -> int:
        """Synopsis storage: the only per-partition state kept resident."""
        if not self._prepared:
            return 0
        pattern_bytes = max(1, (self.dataset.d + 7) // 8) * 2
        return sum(s.max_observed.nbytes + pattern_bytes + 16 for s in self._synopses)

    # -- streaming score -----------------------------------------------------

    def _can_skip(self, synopsis: PartitionSynopsis, probe_pattern: int, probe: np.ndarray) -> bool:
        if (synopsis.pattern_or & probe_pattern) == 0:
            return True
        safe = synopsis.pattern_and & probe_pattern
        while safe:
            dim = (safe & -safe).bit_length() - 1
            if synopsis.max_observed[dim] < probe[dim]:
                return True
            safe &= safe - 1
        return False

    def _streaming_score(self, row: int, stats: QueryStats) -> int:
        """Exact ``score(row)`` accumulated partition by partition."""
        dataset = self.dataset
        observed = dataset.observed
        filled = np.where(observed, dataset.minimized, 0.0)
        probe_values = filled[row]
        probe_mask = observed[row]
        probe_pattern = dataset.patterns[row]

        total = 0
        for synopsis in self._synopses:
            if self._can_skip(synopsis, probe_pattern, probe_values):
                stats.extra["partitions_skipped"] = stats.extra.get("partitions_skipped", 0) + 1
                continue
            stats.extra["partitions_scanned"] = stats.extra.get("partitions_scanned", 0) + 1
            block = slice(synopsis.start, synopsis.stop)
            common = observed[block] & probe_mask
            le_all = np.all(~common | (probe_values <= filled[block]), axis=1)
            lt_any = np.any(common & (probe_values < filled[block]), axis=1)
            dominated = le_all & lt_any
            if synopsis.start <= row < synopsis.stop:
                dominated[row - synopsis.start] = False
            total += int(np.count_nonzero(dominated))
            stats.comparisons += synopsis.count
        return total

    def _run(
        self, k: int, *, tie_break: str, rng, stats: QueryStats
    ) -> tuple[Sequence[int], Sequence[int]]:
        del tie_break, rng  # boundary ties resolved by eviction order, as in UBB
        candidates = CandidateSet(k)
        n = self.dataset.n
        stats.extra["partition_rows"] = self.partition_rows
        stats.extra["partitions"] = len(self._synopses)

        for position, index in enumerate(self._queue.tolist()):
            if self._enable_h1 and candidates.full and self._maxscore[index] <= candidates.tau:
                stats.pruned_h1 = n - position
                break
            score = self._streaming_score(index, stats)
            stats.scores_computed += 1
            candidates.offer(index, score)

        items = candidates.items()
        return [idx for idx, _ in items], [score for _, score in items]


def partitioned_tkd(
    dataset: IncompleteDataset,
    k: int,
    *,
    partition_rows: int = 2048,
    tie_break: str = "index",
    rng=None,
) -> TKDResult:
    """One-shot partition-pruned TKD query."""
    algorithm = PartitionedTKD(dataset, partition_rows=partition_rows)
    return algorithm.query(k, tie_break=tie_break, rng=rng)
