"""Continuous TKD maintenance under insertions and deletions.

The paper's related work surveys *continuous* top-k dominating queries
(Kontaki et al., Santoso & Chiu) over complete data streams; this module
provides the incomplete-data counterpart the paper leaves open: a
:class:`StreamingTKD` structure that keeps every object's ``score``
current while objects arrive and depart.

Since the versioned-engine refactor this class is a **thin facade over
the query engine's continuous path**
(:meth:`repro.engine.session.QueryEngine.continuous`): every mutation is
a :class:`~repro.core.delta.DatasetDelta` applied to a privately owned
:class:`~repro.engine.kernels.PreparedDataset`, so streaming workloads
ride the packed-bitset fast path (dominator masks in ``O(d·n/64)`` per
update once tables exist, the vectorised ``O(n·d)`` broadcast below
that), the planner's patch-vs-rebuild cost model, amortised
doubling-growth storage with tombstoned deletion, and the engine's
stats — instead of the hand-rolled arrays the pre-engine implementation
maintained. The public API is unchanged; scores are identical.

The key observation still makes maintenance cheap: inserting an object
``o`` changes an existing score only where ``p ≻ o`` (each such ``p``
gains exactly one dominated object), and symmetrically for deletion —
a single dominator-mask pass versus ``O(n²·d)`` recomputation.
Non-transitivity costs nothing here because scores are plain dominated
*counts*, not closures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._util import is_missing_cell, parse_cell
from ..errors import (
    AllMissingObjectError,
    DimensionMismatchError,
    DuplicateObjectError,
    InvalidParameterError,
)
from .dataset import IncompleteDataset
from .result import select_top_k, validate_k

__all__ = ["StreamingTKD"]


class StreamingTKD:
    """Incrementally maintained TKD scores over a dynamic incomplete set.

    Parameters
    ----------
    d: dimensionality of the streamed objects.
    directions: per-dimension preference (``"min"``/``"max"``), as for
        :class:`~repro.core.dataset.IncompleteDataset`.
    engine: the :class:`~repro.engine.session.QueryEngine` whose caches,
        planner, and stats the stream rides; defaults to the process-wide
        default session.
    """

    def __init__(
        self, d: int, *, directions: str | Sequence[str] = "min", engine=None
    ) -> None:
        if d <= 0:
            raise InvalidParameterError(f"d must be >= 1, got {d}")
        self._d = int(d)
        if isinstance(directions, str):
            directions = [directions] * d
        directions = [str(x).lower() for x in directions]
        if len(directions) != d:
            raise DimensionMismatchError(f"expected {d} directions, got {len(directions)}")
        for direction in directions:
            if direction not in ("min", "max"):
                raise InvalidParameterError(f"direction must be 'min'/'max', got {direction!r}")
        self._directions = tuple(directions)
        if engine is None:
            from ..engine.session import default_engine

            engine = default_engine()
        self._engine = engine
        #: The engine's ContinuousQuery handle; ``None`` while empty.
        self._live = None
        self._auto = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_dataset(cls, dataset: IncompleteDataset, *, engine=None) -> "StreamingTKD":
        """Seed a streaming structure from a static dataset (ids kept)."""
        stream = cls(dataset.d, directions=dataset.directions, engine=engine)
        stream._live = stream._engine.continuous(dataset)
        return stream

    def to_dataset(self, name: str = "stream-snapshot") -> IncompleteDataset:
        """Materialise the current membership as an immutable dataset."""
        if self._live is None:
            raise InvalidParameterError("cannot snapshot an empty stream")
        current = self._live.dataset
        return IncompleteDataset(
            current.values, ids=current.ids, directions=self._directions, name=name
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, cells: Sequence, *, object_id: str | None = None) -> str:
        """Add one object; returns its id.

        One dominator-mask pass adjusts exactly the scores the newcomer
        changes — ``O(d·n/64)`` against warm packed tables, one ``O(n·d)``
        broadcast otherwise.
        """
        if len(cells) != self._d:
            raise DimensionMismatchError(f"expected {self._d} cells, got {len(cells)}")
        raw = np.array([np.nan if is_missing_cell(c) else parse_cell(c) for c in cells])
        if not (~np.isnan(raw)).any():
            raise AllMissingObjectError("streamed object has no observed dimension")
        if object_id is None:
            object_id = f"s{self._auto}"
            self._auto += 1
        object_id = str(object_id)
        if self._live is None:
            dataset = IncompleteDataset(
                raw[None, :], ids=[object_id], directions=self._directions
            )
            self._live = self._engine.continuous(dataset)
        else:
            if object_id in self:
                raise DuplicateObjectError(f"duplicate object id {object_id!r}")
            self._live.insert(raw[None, :], ids=[object_id])
        return object_id

    def delete(self, object_id: str) -> None:
        """Remove one object; its dominators' scores are rebated and its
        storage slot is tombstoned (compacted lazily by the planner)."""
        if self._live is None:
            raise InvalidParameterError(f"unknown object id {object_id!r}")
        self._live.dataset.index_of(object_id)  # raises for unknown ids
        if self._live.n == 1:
            self._live = None  # datasets cannot be empty; reset instead
            return
        self._live.delete([object_id])

    def update(self, object_id: str, cells: Sequence) -> None:
        """Replace one object's row (full row, or ``{dim: value}`` mapping)."""
        if self._live is None:
            raise InvalidParameterError(f"unknown object id {object_id!r}")
        self._live.update({object_id: cells})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def top_k(self, k: int, *, tie_break: str = "index", rng=None) -> list[tuple[str, int]]:
        """Current TKD answer as ``(id, score)`` pairs, best first."""
        if self._live is None:
            return []
        if tie_break == "index":
            return self._live.top_k(k)
        scores = self._live.scores
        k = validate_k(k, self._live.n)
        selection = select_top_k(scores, k, tie_break=tie_break, rng=rng)
        ids = self._live.ids
        return [(ids[i], int(scores[i])) for i in selection]

    def score_of(self, object_id: str) -> int:
        """Maintained ``score`` of one live object."""
        if self._live is None:
            raise InvalidParameterError(f"unknown object id {object_id!r}")
        return self._live.score_of(object_id)

    @property
    def n(self) -> int:
        """Number of live objects."""
        return 0 if self._live is None else self._live.n

    @property
    def d(self) -> int:
        """Dimensionality."""
        return self._d

    @property
    def ids(self) -> list[str]:
        """Live object ids (storage order)."""
        return [] if self._live is None else self._live.ids

    def __len__(self) -> int:
        return self.n

    def __contains__(self, object_id: str) -> bool:
        return self._live is not None and object_id in self._live
