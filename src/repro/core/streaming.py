"""Continuous TKD maintenance under insertions and deletions.

The paper's related work surveys *continuous* top-k dominating queries
(Kontaki et al., Santoso & Chiu) over complete data streams; this module
provides the incomplete-data counterpart the paper leaves open: a
:class:`StreamingTKD` structure that keeps every object's ``score``
current while objects arrive and depart.

The key observation makes maintenance cheap: inserting an object ``o``
changes an existing score only where ``p ≻ o`` (each such ``p`` gains
exactly one dominated object), and symmetrically for deletion — both a
single vectorised ``O(n·d)`` pass, versus ``O(n²·d)`` recomputation.
Non-transitivity costs nothing here because scores are plain dominated
*counts*, not closures.

Capacity management uses doubling arrays with swap-with-last deletion, so
a workload of ``m`` operations costs amortised ``O(m·n·d)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._util import is_missing_cell, parse_cell
from ..errors import AllMissingObjectError, DimensionMismatchError, InvalidParameterError
from .dataset import IncompleteDataset
from .result import select_top_k, validate_k

__all__ = ["StreamingTKD"]

_INITIAL_CAPACITY = 16


class StreamingTKD:
    """Incrementally maintained TKD scores over a dynamic incomplete set."""

    def __init__(self, d: int, *, directions: str | Sequence[str] = "min") -> None:
        if d <= 0:
            raise InvalidParameterError(f"d must be >= 1, got {d}")
        self._d = int(d)
        if isinstance(directions, str):
            directions = [directions] * d
        directions = [str(x).lower() for x in directions]
        if len(directions) != d:
            raise DimensionMismatchError(f"expected {d} directions, got {len(directions)}")
        for direction in directions:
            if direction not in ("min", "max"):
                raise InvalidParameterError(f"direction must be 'min'/'max', got {direction!r}")
        self._directions = tuple(directions)
        self._sign = np.array([-1.0 if x == "max" else 1.0 for x in directions])

        self._capacity = _INITIAL_CAPACITY
        self._values = np.zeros((self._capacity, d))          # minimized orientation
        self._raw = np.zeros((self._capacity, d))             # user orientation
        self._observed = np.zeros((self._capacity, d), dtype=bool)
        self._scores = np.zeros(self._capacity, dtype=np.int64)
        self._ids: list[str] = []
        self._id_to_row: dict[str, int] = {}
        self._n = 0
        self._auto = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_dataset(cls, dataset: IncompleteDataset) -> "StreamingTKD":
        """Seed a streaming structure from a static dataset."""
        stream = cls(dataset.d, directions=dataset.directions)
        for row in range(dataset.n):
            cells = [
                dataset.values[row, dim] if dataset.observed[row, dim] else None
                for dim in range(dataset.d)
            ]
            stream.insert(cells, object_id=dataset.ids[row])
        return stream

    def to_dataset(self, name: str = "stream-snapshot") -> IncompleteDataset:
        """Materialise the current membership as an immutable dataset."""
        if self._n == 0:
            raise InvalidParameterError("cannot snapshot an empty stream")
        values = np.where(self._observed[: self._n], self._raw[: self._n], np.nan)
        return IncompleteDataset(
            values, ids=list(self._ids), directions=self._directions, name=name
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, cells: Sequence, *, object_id: str | None = None) -> str:
        """Add one object; returns its id. Amortised one O(n·d) pass."""
        if len(cells) != self._d:
            raise DimensionMismatchError(f"expected {self._d} cells, got {len(cells)}")
        raw = np.array([np.nan if is_missing_cell(c) else parse_cell(c) for c in cells])
        observed = ~np.isnan(raw)
        if not observed.any():
            raise AllMissingObjectError("streamed object has no observed dimension")
        if object_id is None:
            object_id = f"s{self._auto}"
            self._auto += 1
        if object_id in self._id_to_row:
            raise InvalidParameterError(f"duplicate object id {object_id!r}")

        if self._n == self._capacity:
            self._grow()
        row = self._n
        self._raw[row] = np.where(observed, raw, 0.0)
        self._values[row] = np.where(observed, raw * self._sign, 0.0)
        self._observed[row] = observed
        self._ids.append(object_id)
        self._id_to_row[object_id] = row
        self._n += 1

        dominates_new, dominated_by_new = self._dominance_vs(row)
        # Everyone that dominates the newcomer gains one dominated object;
        # the newcomer's own score is what it dominates.
        self._scores[: self._n][dominates_new] += 1
        self._scores[row] = int(dominated_by_new.sum())
        return object_id

    def delete(self, object_id: str) -> None:
        """Remove one object; one O(n·d) pass to rebate dominator scores."""
        try:
            row = self._id_to_row[object_id]
        except KeyError:
            raise InvalidParameterError(f"unknown object id {object_id!r}") from None

        dominates_victim, _ = self._dominance_vs(row)
        self._scores[: self._n][dominates_victim] -= 1

        last = self._n - 1
        if row != last:  # swap-with-last compaction
            self._raw[row] = self._raw[last]
            self._values[row] = self._values[last]
            self._observed[row] = self._observed[last]
            self._scores[row] = self._scores[last]
            moved_id = self._ids[last]
            self._ids[row] = moved_id
            self._id_to_row[moved_id] = row
        self._ids.pop()
        del self._id_to_row[object_id]
        self._n -= 1

    def _grow(self) -> None:
        self._capacity *= 2
        for attr in ("_values", "_raw", "_observed", "_scores"):
            old = getattr(self, attr)
            shape = (self._capacity,) + old.shape[1:]
            new = np.zeros(shape, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, attr, new)

    def _dominance_vs(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Masks over live rows: (p ≻ row, row ≻ p)."""
        n = self._n
        values = self._values[:n]
        observed = self._observed[:n]
        target_values = self._values[row]
        target_mask = self._observed[row]

        common = observed & target_mask
        le_all = np.all(~common | (values <= target_values), axis=1)
        lt_any = np.any(common & (values < target_values), axis=1)
        dominates_target = le_all & lt_any

        ge_all = np.all(~common | (target_values <= values), axis=1)
        gt_any = np.any(common & (target_values < values), axis=1)
        dominated_by_target = ge_all & gt_any

        dominates_target[row] = False
        dominated_by_target[row] = False
        return dominates_target, dominated_by_target

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def top_k(self, k: int, *, tie_break: str = "index", rng=None) -> list[tuple[str, int]]:
        """Current TKD answer as ``(id, score)`` pairs, best first."""
        if self._n == 0:
            return []
        k = validate_k(k, self._n)
        scores = self._scores[: self._n]
        selection = select_top_k(scores, k, tie_break=tie_break, rng=rng)
        return [(self._ids[i], int(scores[i])) for i in selection]

    def score_of(self, object_id: str) -> int:
        """Maintained ``score`` of one live object."""
        try:
            return int(self._scores[self._id_to_row[object_id]])
        except KeyError:
            raise InvalidParameterError(f"unknown object id {object_id!r}") from None

    @property
    def n(self) -> int:
        """Number of live objects."""
        return self._n

    @property
    def d(self) -> int:
        """Dimensionality."""
        return self._d

    @property
    def ids(self) -> list[str]:
        """Live object ids (storage order)."""
        return list(self._ids)

    def __len__(self) -> int:
        return self._n

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._id_to_row
