"""Unified entry point for TKD queries over incomplete data.

:func:`top_k_dominating` hides the algorithm zoo behind one call::

    from repro import IncompleteDataset, top_k_dominating

    ds = IncompleteDataset.from_rows([[5, None, 3], [1, 2, None], ...])
    result = top_k_dominating(ds, k=2)            # IBIG by default
    result = top_k_dominating(ds, k=2, algorithm="ubb")
    result = top_k_dominating(ds, k=2, algorithm="auto")   # cost-based

``algorithm="auto"`` delegates the choice to the engine's cost model
(:func:`repro.engine.planner.plan_query`) over ``(n, d, missing rate,
k)``; the answer is exact whichever algorithm the planner picks.

Use :func:`make_algorithm` when you want to reuse a prepared index across
several queries (the paper separates preprocessing from query time the
same way, Table 3 vs Figs. 12–17) — or, better, a
:class:`repro.engine.QueryEngine`, which does the reuse and caching for
you.
"""

from __future__ import annotations

from ..errors import UnknownAlgorithmError
from ..indexes.algorithm import BRTreeTKD, MosaicTKD, QuantizationTKD
from .base import TKDAlgorithm
from .big import BIGTKD
from .dataset import IncompleteDataset
from .esb import ESBTKD
from .ibig import IBIGTKD
from .naive import NaiveTKD
from .partitioned import PartitionedTKD
from .result import TKDResult
from .ubb import UBBTKD

__all__ = [
    "ALGORITHMS",
    "AUTO_ALGORITHM",
    "available_algorithms",
    "make_algorithm",
    "top_k_dominating",
]

#: Registry of algorithm names to classes. The first five are the paper's
#: own (Sections 4.1–4.4); the next three answer the same queries through
#: the alternative Section 2.2 index structures (:mod:`repro.indexes`);
#: ``"partitioned"`` is the bounded-memory massive-data variant
#: (:mod:`repro.core.partitioned`).
ALGORITHMS: dict[str, type[TKDAlgorithm]] = {
    NaiveTKD.name: NaiveTKD,
    ESBTKD.name: ESBTKD,
    UBBTKD.name: UBBTKD,
    BIGTKD.name: BIGTKD,
    IBIGTKD.name: IBIGTKD,
    MosaicTKD.name: MosaicTKD,
    BRTreeTKD.name: BRTreeTKD,
    QuantizationTKD.name: QuantizationTKD,
    PartitionedTKD.name: PartitionedTKD,
}

#: Default algorithm: the paper's overall recommendation for constrained
#: storage; switch to "big" for the fastest queries regardless of space.
DEFAULT_ALGORITHM = "ibig"

#: Planner-backed pseudo-algorithm resolved at :func:`make_algorithm` time.
AUTO_ALGORITHM = "auto"


def available_algorithms() -> tuple[str, ...]:
    """Registered algorithm names in presentation order (plus ``"auto"``)."""
    return tuple(ALGORITHMS) + (AUTO_ALGORITHM,)


def make_algorithm(
    dataset: IncompleteDataset, algorithm: str = DEFAULT_ALGORITHM, **options
) -> TKDAlgorithm:
    """Instantiate (but do not prepare) an algorithm by registry name.

    Keyword *options* are forwarded to the algorithm constructor — e.g.
    ``bins=`` / ``compress=`` / ``use_btree=`` for IBIG, ``index=`` for
    BIG, ``buckets=`` for ESB.

    ``algorithm="auto"`` resolves through the engine's cost model first
    (:func:`repro.engine.planner.plan_query`, using ``options["k"]`` as
    the planning k when provided); explicit caller options override the
    plan's own.
    """
    try:
        name = algorithm.lower()
    except AttributeError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {algorithm!r}; available: {', '.join(ALGORITHMS)}"
        ) from None
    was_auto = name == AUTO_ALGORITHM
    if was_auto:
        from ..engine.planner import merge_plan_options, plan_query

        plan = plan_query(dataset, int(options.pop("k", 8)))
        name = plan.algorithm
        options = merge_plan_options(plan, options)
    try:
        cls = ALGORITHMS[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {algorithm!r}; available: {', '.join(ALGORITHMS)}"
        ) from None
    if was_auto:
        from ..engine.planner import supported_options

        # Callers may pass options for one algorithm family while the
        # planner picks another; keep only what the choice understands.
        options = supported_options(cls, options)
    return cls(dataset, **options)


def top_k_dominating(
    dataset: IncompleteDataset,
    k: int,
    *,
    algorithm: str = DEFAULT_ALGORITHM,
    tie_break: str = "index",
    rng=None,
    **options,
) -> TKDResult:
    """Answer a top-k dominating query over incomplete data.

    Parameters
    ----------
    dataset: the incomplete dataset ``S``.
    k: number of objects to return (paper Definition 3).
    algorithm: ``"naive"``, ``"esb"``, ``"ubb"``, ``"big"``, ``"ibig"``, …
        or ``"auto"`` for the engine's cost-based choice.
    tie_break: ``"index"`` (deterministic) or ``"random"`` (paper policy).
    rng: seed or Generator for random tie-breaking.
    options: forwarded to the algorithm constructor.
    """
    if isinstance(algorithm, str) and algorithm.lower() == AUTO_ALGORITHM:
        options.setdefault("k", k)  # let the planner see the real answer size
    return make_algorithm(dataset, algorithm, **options).query(k, tie_break=tie_break, rng=rng)
