"""Versioned datasets: insert/delete/update batches as first-class deltas.

The paper's data model — and everything PRs 1–3 built on top of it — is
static: an :class:`~repro.core.dataset.IncompleteDataset` is immutable and
every engine structure is keyed on a content fingerprint of the whole
matrix, so one changed tuple invalidates everything. This module adds the
*versioned* view the dynamic/continuous literature assumes (Kosmatopoulos
& Tsichlas; Kontaki et al.): a batch of inserts, deletes, and updates is
a :class:`DatasetDelta`, and :func:`apply_delta` turns a dataset plus a
delta into a **new version** whose fingerprint is *lineage-derived* —
``H(parent_fingerprint, delta_digest)`` — instead of a full ``O(n·d)``
rehash.

Lineage fingerprints are deterministic: any process that starts from the
same root content and applies the same delta sequence computes the same
version fingerprints, so engine caches and the persistent store resolve
delta chains across processes without shipping data. The engine layers
ride this identity end to end: :meth:`repro.engine.kernels.PreparedDataset.patched`
patches packed bitset tables under the same delta,
:meth:`repro.engine.session.QueryEngine.apply_delta` maintains dominated
counts incrementally, and :class:`repro.engine.store.PersistentStore`
records the lineage so stored results and tables survive the process.

Row-ordering contract (what makes table patching exact): a child version
keeps the surviving parent rows in their original relative order —
updates in place, deletions compacted out — and appends inserted rows at
the end. Deltas are *bound* to the parent they were built against:
deleted/updated positions are recorded as parent row indices, which is
what the digest hashes (ids are presentation-only, exactly as in the
content fingerprint).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from .._util import is_missing_cell, parse_cell
from ..errors import (
    AllMissingObjectError,
    DimensionMismatchError,
    DuplicateObjectError,
    EmptyDatasetError,
    InvalidParameterError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dataset import IncompleteDataset

__all__ = ["DatasetDelta", "DatasetVersion", "apply_delta"]


@dataclass(frozen=True)
class DatasetVersion:
    """Identity of one dataset version in a delta chain."""

    #: The version's (content or lineage-derived) fingerprint.
    fingerprint: str
    #: Fingerprint of the parent version; ``None`` for a root dataset.
    parent: str | None = None
    #: Digest of the delta that produced this version from its parent.
    delta_digest: str | None = None
    #: Number of deltas between this version and its root (0 for roots).
    depth: int = 0

    @property
    def is_root(self) -> bool:
        return self.parent is None


def _parse_rows(rows, d: int) -> np.ndarray:
    """Coerce an insert/update batch to an ``(m, d)`` NaN-missing matrix."""
    if isinstance(rows, np.ndarray) and rows.dtype.kind in "fiu":
        matrix = np.asarray(rows, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.ndim != 2:
            raise DimensionMismatchError(f"expected a 2-D batch, got shape {matrix.shape}")
        if matrix.shape[1] != d:
            raise DimensionMismatchError(
                f"batch rows have {matrix.shape[1]} cells, expected {d}"
            )
        return matrix.copy()
    materialised = [list(row) for row in rows]
    parsed = np.empty((len(materialised), d), dtype=np.float64)
    for i, row in enumerate(materialised):
        if len(row) != d:
            raise DimensionMismatchError(f"batch row {i} has {len(row)} cells, expected {d}")
        for j, cell in enumerate(row):
            parsed[i, j] = float("nan") if is_missing_cell(cell) else parse_cell(cell)
    return parsed


def _canonical_bytes(values: np.ndarray) -> bytes:
    """Canonicalise floats the same way the content fingerprint does.

    ``-0.0`` maps to ``+0.0`` and missing cells are re-stamped with one
    canonical NaN, so equal-answer deltas share a digest regardless of the
    bit patterns a caller happened to pass.
    """
    observed = ~np.isnan(values)
    canonical = np.where(observed, values + 0.0, np.nan)
    return canonical.tobytes() + observed.tobytes()


class DatasetDelta:
    """One batch of inserts, deletes, and updates against a specific version.

    Instances are bound to the dataset they were built against: deletions
    and updates record parent *row indices* (resolved from ids at build
    time), which is what both the content digest and the engine's table
    patching consume. Build one with the classmethod constructors or
    through the :class:`~repro.core.dataset.IncompleteDataset` conveniences
    (``with_inserted`` / ``with_deleted`` / ``with_updated``).
    """

    __slots__ = (
        "d",
        "inserted_values",
        "inserted_ids",
        "deleted_rows",
        "deleted_ids",
        "updated_rows",
        "updated_ids",
        "updated_values",
        "_digest",
    )

    def __init__(
        self,
        d: int,
        *,
        inserted_values: np.ndarray | None = None,
        inserted_ids: Sequence[str] | None = None,
        deleted_rows: Sequence[int] = (),
        deleted_ids: Sequence[str] = (),
        updated_rows: Sequence[int] = (),
        updated_ids: Sequence[str] = (),
        updated_values: np.ndarray | None = None,
    ) -> None:
        self.d = int(d)
        self.inserted_values = (
            np.zeros((0, self.d)) if inserted_values is None else inserted_values
        )
        self.inserted_ids = None if inserted_ids is None else tuple(inserted_ids)
        self.deleted_rows = tuple(int(r) for r in deleted_rows)
        self.deleted_ids = tuple(str(x) for x in deleted_ids)
        self.updated_rows = tuple(int(r) for r in updated_rows)
        self.updated_ids = tuple(str(x) for x in updated_ids)
        self.updated_values = (
            np.zeros((0, self.d)) if updated_values is None else updated_values
        )
        self._digest: str | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: "IncompleteDataset",
        *,
        inserts=None,
        insert_ids: Sequence[str] | None = None,
        deletes: Sequence[str] = (),
        updates: Mapping[str, Sequence] | None = None,
    ) -> "DatasetDelta":
        """Bind one mixed batch to *dataset*, validating every reference.

        ``inserts`` is an iterable of rows (cells may be numbers, ``None``,
        NaN, or missing-tokens); ``deletes`` is a sequence of live ids;
        ``updates`` maps a live id either to a full replacement row or to
        a partial ``{dimension: value}`` mapping (dimension by name or
        index; unmentioned dimensions keep their current value).
        """
        d = dataset.d
        inserted = _parse_rows(inserts, d) if inserts is not None else np.zeros((0, d))
        if np.isnan(inserted).all(axis=1).any():
            raise AllMissingObjectError("inserted object has no observed dimension")
        ids = None
        if insert_ids is not None:
            ids = [str(x) for x in insert_ids]
            if len(ids) != inserted.shape[0]:
                raise DimensionMismatchError(
                    f"expected {inserted.shape[0]} insert ids, got {len(ids)}"
                )

        deleted_ids = [str(x) for x in deletes]
        deleted_rows = [dataset.index_of(x) for x in deleted_ids]
        if len(set(deleted_rows)) != len(deleted_rows):
            raise InvalidParameterError("delete batch repeats an object id")

        updated_ids: list[str] = []
        updated_rows: list[int] = []
        updated_matrix = np.zeros((0, d))
        if updates:
            updated_ids = [str(x) for x in updates]
            updated_rows = [dataset.index_of(x) for x in updated_ids]
            if len(set(updated_rows)) != len(updated_rows):
                raise InvalidParameterError("update batch repeats an object id")
            if set(updated_rows) & set(deleted_rows):
                raise InvalidParameterError(
                    "an object cannot be both updated and deleted in one delta"
                )
            replacement_rows = [
                _replacement_row(dataset, object_id, row)
                for object_id, row in zip(updated_ids, updates.values())
            ]
            updated_matrix = _parse_rows(replacement_rows, d)
            if np.isnan(updated_matrix).all(axis=1).any():
                raise AllMissingObjectError("an update would leave an object all-missing")
            # Canonicalise by row position: semantically identical update
            # batches built in different mapping orders must share a
            # digest (and therefore a lineage fingerprint).
            order = np.argsort(np.asarray(updated_rows))
            updated_rows = [updated_rows[i] for i in order]
            updated_ids = [updated_ids[i] for i in order]
            updated_matrix = updated_matrix[order]

        _check_insert_ids(dataset, ids, deleted_ids)
        return cls(
            d,
            inserted_values=inserted,
            inserted_ids=None if ids is None else tuple(ids),
            deleted_rows=deleted_rows,
            deleted_ids=deleted_ids,
            updated_rows=updated_rows,
            updated_ids=updated_ids,
            updated_values=updated_matrix,
        )

    @classmethod
    def inserting(cls, dataset, rows, *, ids=None) -> "DatasetDelta":
        return cls.build(dataset, inserts=rows, insert_ids=ids)

    @classmethod
    def deleting(cls, dataset, ids: Sequence[str]) -> "DatasetDelta":
        return cls.build(dataset, deletes=ids)

    @classmethod
    def updating(cls, dataset, updates: Mapping[str, Sequence]) -> "DatasetDelta":
        return cls.build(dataset, updates=updates)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def digest(self) -> str:
        """Deterministic content digest of this (bound) delta.

        Hashes canonicalised inserted/updated values and the *row
        positions* of deletes and updates — ids are presentation-only,
        mirroring :func:`repro.engine.session.dataset_fingerprint`.
        """
        if self._digest is None:
            h = hashlib.sha256()
            h.update(f"delta:d={self.d}".encode())
            h.update(f"ins={self.inserted_values.shape[0]}".encode())
            h.update(_canonical_bytes(self.inserted_values))
            h.update(("del=" + ",".join(map(str, sorted(self.deleted_rows)))).encode())
            h.update(("upd=" + ",".join(map(str, self.updated_rows))).encode())
            h.update(_canonical_bytes(self.updated_values))
            self._digest = h.hexdigest()
        return self._digest

    @property
    def is_empty(self) -> bool:
        return not (
            self.inserted_values.shape[0] or self.deleted_rows or self.updated_rows
        )

    @property
    def cells(self) -> int:
        """Total payload size in matrix cells (the store's smallness gate)."""
        return (
            (self.inserted_values.shape[0] + self.updated_values.shape[0]) * self.d
            + len(self.deleted_rows)
        )

    def payload(self) -> dict:
        """JSON-safe encoding of the patch-relevant delta content.

        What :class:`~repro.engine.store.PersistentStore` embeds in small
        lineage records so a cold process can patch a stored ancestor's
        prepared tables forward (ids are presentation-only and excluded,
        like everywhere else in the identity layer). Missing cells encode
        as ``None``. Inverse of :meth:`from_payload`.
        """

        def encode(matrix: np.ndarray) -> list:
            return [
                [None if np.isnan(value) else float(value) for value in row]
                for row in matrix
            ]

        return {
            "d": self.d,
            "inserts": encode(self.inserted_values),
            "deleted_rows": list(self.deleted_rows),
            "updated_rows": list(self.updated_rows),
            "updated_values": encode(self.updated_values),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "DatasetDelta":
        """Rebuild a (patching-grade) delta from :meth:`payload` output.

        The result carries values and row positions only — no ids — which
        is exactly what table patching and sentinel lowering consume.
        """

        def decode(rows, d: int) -> np.ndarray:
            matrix = np.empty((len(rows), d), dtype=np.float64)
            for i, row in enumerate(rows):
                matrix[i] = [np.nan if cell is None else float(cell) for cell in row]
            return matrix

        d = int(payload["d"])
        return cls(
            d,
            inserted_values=decode(payload.get("inserts", []), d),
            deleted_rows=[int(r) for r in payload.get("deleted_rows", [])],
            updated_rows=[int(r) for r in payload.get("updated_rows", [])],
            updated_values=decode(payload.get("updated_values", []), d),
        )

    @property
    def ops(self) -> dict:
        """Operation counts, e.g. for lineage records and plan costing."""
        return {
            "inserts": int(self.inserted_values.shape[0]),
            "deletes": len(self.deleted_rows),
            "updates": len(self.updated_rows),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = self.ops
        return (
            f"<DatasetDelta +{ops['inserts']} -{ops['deletes']} "
            f"~{ops['updates']} d={self.d}>"
        )


def _replacement_row(dataset: "IncompleteDataset", object_id: str, row) -> list:
    """Resolve one update payload to a full replacement row (user orientation)."""
    d = dataset.d
    if isinstance(row, Mapping):
        base = dataset.row_display(dataset.index_of(object_id), missing_token=None)
        for key, value in row.items():
            if isinstance(key, str):
                # Name lookup first: dimension names may themselves be
                # numeric strings (CSV year columns), and a name must
                # never be misread as a position.
                try:
                    dim = dataset.dim_names.index(key)
                except ValueError:
                    if not key.lstrip("-").isdigit():
                        raise InvalidParameterError(
                            f"unknown dimension {key!r}; have {dataset.dim_names}"
                        ) from None
                    dim = int(key)
            else:
                dim = int(key)
            if dim < 0 or dim >= d:
                raise InvalidParameterError(f"dimension {dim} outside [0, {d})")
            base[dim] = value
        return base
    row = list(row)
    if len(row) != d:
        raise DimensionMismatchError(
            f"update for {object_id!r} has {len(row)} cells, expected {d}"
        )
    return row


def _check_insert_ids(
    dataset: "IncompleteDataset", ids: list[str] | None, deleted_ids: Sequence[str]
) -> None:
    if ids is None:
        return
    if len(set(ids)) != len(ids):
        raise DuplicateObjectError("insert batch repeats an object id")
    surviving = set(dataset.ids) - set(deleted_ids)
    clashes = surviving & set(ids)
    if clashes:
        raise DuplicateObjectError(
            f"inserted ids collide with live objects: {sorted(clashes)[:5]}"
        )


def apply_delta(dataset: "IncompleteDataset", delta: DatasetDelta) -> "IncompleteDataset":
    """Materialise the child version of *dataset* under *delta*.

    Surviving parent rows keep their relative order (updates in place,
    deletions compacted out) and inserted rows are appended — the same
    ordering contract the engine's table patching relies on. The child
    carries a lineage-derived fingerprint (see module docstring); an
    empty delta returns *dataset* itself, unversioned.
    """
    from .dataset import IncompleteDataset  # deferred: dataset imports this module

    if delta.d != dataset.d:
        raise DimensionMismatchError(
            f"delta is bound to d={delta.d}, dataset has d={dataset.d}"
        )
    if delta.is_empty:
        return dataset
    for row in (*delta.deleted_rows, *delta.updated_rows):
        if row < 0 or row >= dataset.n:
            raise InvalidParameterError(f"delta references row {row} outside [0, {dataset.n})")

    if not delta.deleted_rows and delta.inserted_values.shape[0] == 0:
        # Update-only fast path: rows and ids are unchanged, so the child
        # is a three-matrix clone instead of a full re-validation build.
        child = dataset._with_replaced_rows(list(delta.updated_rows), delta.updated_values)
        parent_version = dataset.version
        child._lineage = (
            parent_version.fingerprint,
            delta.digest(),
            parent_version.depth + 1,
        )
        return child

    values = np.array(dataset.values, copy=True)
    if delta.updated_rows:
        values[list(delta.updated_rows)] = delta.updated_values

    keep = np.ones(dataset.n, dtype=bool)
    if delta.deleted_rows:
        keep[list(delta.deleted_rows)] = False
    if not keep.any() and delta.inserted_values.shape[0] == 0:
        raise EmptyDatasetError("delta deletes every object")

    surviving_ids = [label for label, ok in zip(dataset.ids, keep) if ok]
    insert_ids = delta.inserted_ids
    if insert_ids is None:
        taken = set(surviving_ids)
        insert_ids, counter = [], dataset.n
        for _ in range(delta.inserted_values.shape[0]):
            while f"o{counter}" in taken:
                counter += 1
            insert_ids.append(f"o{counter}")
            taken.add(f"o{counter}")
        insert_ids = tuple(insert_ids)

    child = IncompleteDataset(
        np.concatenate([values[keep], delta.inserted_values], axis=0),
        ids=[*surviving_ids, *insert_ids],
        dim_names=dataset.dim_names,
        directions=dataset.directions,
        name=dataset.name,
    )
    parent_version = dataset.version
    child._lineage = (parent_version.fingerprint, delta.digest(), parent_version.depth + 1)
    return child
