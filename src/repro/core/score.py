"""Score computation (paper Definition 2) and the ``Get-Score`` primitive.

``score(o) = |{o' ∈ S − {o} : o ≻ o'}|`` — the number of objects dominated
by ``o``. The naive route is exhaustive pairwise comparison; this module
provides

* :func:`score_one` — ``Get-Score`` for a single object, one vectorised
  ``O(n·d)`` pass (what UBB calls per candidate, Algorithm 2 line 6),
* :func:`score_many` / :func:`score_all` — blocked batch scoring used by the
  Naive baseline and by ESB's filtering step; both are thin fronts over the
  :mod:`repro.engine.kernels` broadcast kernels,
* :class:`ScoreCounter` — a tiny accounting helper so algorithms can report
  how many full score computations they performed (drives the Fig. 18-style
  effectiveness reporting).

Everything operates on an :class:`~repro.core.dataset.IncompleteDataset`'s
minimized orientation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..engine.kernels import dominated_counts
from .dataset import IncompleteDataset
from .dominance import dominated_mask

__all__ = ["score_one", "score_many", "score_all", "ScoreCounter"]


def score_one(dataset: IncompleteDataset, index: int) -> int:
    """Exact ``score(o)`` of one object via a vectorised pairwise pass."""
    return int(dominated_mask(dataset, index).sum())


def score_many(
    dataset: IncompleteDataset,
    indices: Sequence[int],
    *,
    block: int | None = None,
    prepared=None,
) -> np.ndarray:
    """Exact scores for a set of objects, blocked for cache friendliness.

    A thin front over :func:`repro.engine.kernels.dominated_counts`: large
    batches — or any batch once the engine session has cached this
    dataset's packed-bitset tables — ride the bitset route; the rest use
    one broadcast ``(block, n, d)`` boolean kernel per block, still
    substantially faster than ``score_one`` in a Python loop.
    ``block=None`` sizes the blocks automatically from ``(n, d)``; pass a
    :class:`~repro.engine.kernels.PreparedDataset` as *prepared* to pin
    specific cached structures.
    """
    return dominated_counts(dataset, indices, block=block, prepared=prepared)


def score_all(
    dataset: IncompleteDataset, *, block: int | None = None, prepared=None
) -> np.ndarray:
    """Exact scores of every object (the Naive algorithm's main loop).

    Repeated full scans of the same dataset reuse the engine's
    fingerprint-keyed bitset tables (built on the first scan), so a sweep
    pays the ``O(d·n²/64)`` table construction once.
    """
    return dominated_counts(dataset, None, block=block, prepared=prepared)


@dataclass
class ScoreCounter:
    """Counts exact-score computations and pairwise object comparisons.

    Algorithms thread one of these through their scoring calls so that the
    experiment harness can report work done, mirroring the paper's
    pruning-effectiveness analysis (Section 5.3).
    """

    scores_computed: int = 0
    comparisons: int = 0
    per_algorithm: dict = field(default_factory=dict)

    def record(self, n_scores: int, n_comparisons: int) -> None:
        """Add *n_scores* full score computations costing *n_comparisons*."""
        self.scores_computed += int(n_scores)
        self.comparisons += int(n_comparisons)

    def merge(self, other: "ScoreCounter") -> None:
        """Fold another counter into this one."""
        self.scores_computed += other.scores_computed
        self.comparisons += other.comparisons
