"""Score computation (paper Definition 2) and the ``Get-Score`` primitive.

``score(o) = |{o' ∈ S − {o} : o ≻ o'}|`` — the number of objects dominated
by ``o``. The naive route is exhaustive pairwise comparison; this module
provides

* :func:`score_one` — ``Get-Score`` for a single object, one vectorised
  ``O(n·d)`` pass (what UBB calls per candidate, Algorithm 2 line 6),
* :func:`score_many` / :func:`score_all` — blocked batch scoring used by the
  Naive baseline and by ESB's filtering step,
* :class:`ScoreCounter` — a tiny accounting helper so algorithms can report
  how many full score computations they performed (drives the Fig. 18-style
  effectiveness reporting).

Everything operates on an :class:`~repro.core.dataset.IncompleteDataset`'s
minimized orientation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import InvalidParameterError
from .dataset import IncompleteDataset
from .dominance import dominated_mask

__all__ = ["score_one", "score_many", "score_all", "ScoreCounter"]


def score_one(dataset: IncompleteDataset, index: int) -> int:
    """Exact ``score(o)`` of one object via a vectorised pairwise pass."""
    return int(dominated_mask(dataset, index).sum())


def score_many(
    dataset: IncompleteDataset,
    indices: Sequence[int],
    *,
    block: int = 64,
) -> np.ndarray:
    """Exact scores for a set of objects, blocked for cache friendliness.

    Compares *block* query objects against the full dataset at a time using
    a single broadcast ``(block, n, d)`` boolean kernel, which is
    substantially faster than ``score_one`` in a Python loop.
    """
    if block <= 0:
        raise InvalidParameterError(f"block must be >= 1, got {block}")
    idx = np.asarray(list(indices), dtype=np.intp)
    if idx.size == 0:
        return np.zeros(0, dtype=np.int64)

    observed = dataset.observed
    filled = np.where(observed, dataset.minimized, 0.0)
    n = dataset.n

    out = np.empty(idx.size, dtype=np.int64)
    for start in range(0, idx.size, block):
        chunk = idx[start : start + block]  # (b,)
        q_vals = filled[chunk][:, None, :]  # (b, 1, d)
        q_mask = observed[chunk][:, None, :]  # (b, 1, d)
        common = q_mask & observed[None, :, :]  # (b, n, d)
        le_all = np.all(~common | (q_vals <= filled[None, :, :]), axis=2)
        lt_any = np.any(common & (q_vals < filled[None, :, :]), axis=2)
        dominated = le_all & lt_any  # (b, n)
        # An object never dominates itself (all common dims equal), but be
        # explicit so ties in floating point can never sneak through.
        dominated[np.arange(chunk.size), chunk] = False
        out[start : start + chunk.size] = dominated.sum(axis=1)
    return out


def score_all(dataset: IncompleteDataset, *, block: int = 64) -> np.ndarray:
    """Exact scores of every object (the Naive algorithm's main loop)."""
    return score_many(dataset, range(dataset.n), block=block)


@dataclass
class ScoreCounter:
    """Counts exact-score computations and pairwise object comparisons.

    Algorithms thread one of these through their scoring calls so that the
    experiment harness can report work done, mirroring the paper's
    pruning-effectiveness analysis (Section 5.3).
    """

    scores_computed: int = 0
    comparisons: int = 0
    per_algorithm: dict = field(default_factory=dict)

    def record(self, n_scores: int, n_comparisons: int) -> None:
        """Add *n_scores* full score computations costing *n_comparisons*."""
        self.scores_computed += int(n_scores)
        self.comparisons += int(n_comparisons)

    def merge(self, other: "ScoreCounter") -> None:
        """Fold another counter into this one."""
        self.scores_computed += other.scores_computed
        self.comparisons += other.comparisons
