"""TKD queries on **complete** data.

Needed by the paper's Table 4 experiment: impute the missing values (the
"missing value inference" route the paper contrasts with), then answer the
TKD query on the completed dataset with classic complete-data dominance,
and compare both answers by Jaccard distance.

On complete data dominance is transitive, and a dominator always has a
strictly smaller coordinate sum — :func:`complete_scores` exploits that to
compare each object only against the objects whose sum is not larger.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .result import select_top_k, validate_k

__all__ = ["complete_scores", "complete_tkd_indices", "CompleteTKDResult", "complete_tkd"]


def _check_complete(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise InvalidParameterError(f"expected a 2-D matrix, got shape {values.shape}")
    if np.isnan(values).any():
        raise InvalidParameterError("matrix contains NaN; impute before complete-data TKD")
    return values


def complete_scores(values: np.ndarray) -> np.ndarray:
    """``score(o)`` of every row of a complete matrix (smaller is better).

    Sorts by coordinate sum so each object is compared only against the
    suffix it could possibly dominate.
    """
    values = _check_complete(values)
    n = values.shape[0]
    scores = np.zeros(n, dtype=np.int64)
    order = np.argsort(values.sum(axis=1), kind="stable")
    ranked = values[order]
    for pos in range(n):
        row = ranked[pos]
        tail = ranked[pos + 1 :]
        if tail.size:
            dominated = np.all(row <= tail, axis=1) & np.any(row < tail, axis=1)
            scores[order[pos]] = int(np.count_nonzero(dominated))
    return scores


def complete_tkd_indices(values: np.ndarray, k: int, *, tie_break: str = "index", rng=None) -> list[int]:
    """Indices of the top-k dominating rows of a complete matrix."""
    values = _check_complete(values)
    k = validate_k(k, values.shape[0])
    return select_top_k(complete_scores(values), k, tie_break=tie_break, rng=rng)


class CompleteTKDResult:
    """Minimal result wrapper for complete-data TKD (indices + scores)."""

    def __init__(self, indices: list[int], scores: list[int], ids: list[str]) -> None:
        self.indices = indices
        self.scores = scores
        self.ids = ids

    @property
    def id_set(self) -> frozenset:
        """Returned object labels as a set."""
        return frozenset(self.ids)


def complete_tkd(
    values: np.ndarray,
    k: int,
    *,
    ids: list[str] | None = None,
    tie_break: str = "index",
    rng=None,
) -> CompleteTKDResult:
    """TKD query over a complete matrix; the Table 4 comparator."""
    values = _check_complete(values)
    scores = complete_scores(values)
    k = validate_k(k, values.shape[0])
    selection = select_top_k(scores, k, tie_break=tie_break, rng=rng)
    if ids is None:
        ids = [f"o{i}" for i in range(values.shape[0])]
    return CompleteTKDResult(
        indices=selection,
        scores=[int(scores[i]) for i in selection],
        ids=[ids[i] for i in selection],
    )
