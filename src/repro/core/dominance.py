"""Dominance on incomplete data (paper Definition 1).

Given objects ``o`` and ``o'`` with observed-masks, ``o ≻ o'`` iff

1. for every dimension ``i`` observed in **both**, ``o[i] ≤ o'[i]``, and
2. at least one common observed dimension ``j`` has ``o[j] < o'[j]``.

Objects with no common observed dimension are *incomparable* and never
dominate each other. Unlike dominance on complete data, this relation is
**not transitive** and may contain cycles (paper Fig. 2: ``f ≻ e`` and
``e ≻ b`` yet ``f ⋡ b``); all algorithms in :mod:`repro.core` are designed
around that loss of transitivity.

All functions here operate on the *minimized* orientation (smaller is
better). :class:`~repro.core.dataset.IncompleteDataset` exposes that matrix
directly, so the dataset-level helpers below need no direction handling.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .dataset import IncompleteDataset

__all__ = [
    "dominates_rows",
    "comparable_rows",
    "dominates",
    "comparable",
    "dominated_mask",
    "dominator_mask",
    "dominance_matrix",
    "incomparable_mask",
]


def dominates_rows(
    a_values: np.ndarray,
    a_observed: np.ndarray,
    b_values: np.ndarray,
    b_observed: np.ndarray,
) -> bool:
    """Low-level Definition 1 check on two raw (minimized) rows.

    ``a_values``/``b_values`` are 1-D float rows (NaN allowed in missing
    slots); ``a_observed``/``b_observed`` the boolean masks.
    """
    common = a_observed & b_observed
    if not common.any():
        return False
    av = a_values[common]
    bv = b_values[common]
    return bool(np.all(av <= bv) and np.any(av < bv))


def comparable_rows(a_observed: np.ndarray, b_observed: np.ndarray) -> bool:
    """True iff two mask rows share at least one observed dimension."""
    return bool((a_observed & b_observed).any())


def dominates(dataset: IncompleteDataset, i: int, j: int) -> bool:
    """True iff object *i* dominates object *j* in *dataset* (``o_i ≻ o_j``)."""
    if i == j:
        return False
    return dominates_rows(
        dataset.minimized[i],
        dataset.observed[i],
        dataset.minimized[j],
        dataset.observed[j],
    )


def comparable(dataset: IncompleteDataset, i: int, j: int) -> bool:
    """True iff objects *i* and *j* are comparable (``b_i & b_j != 0``)."""
    return dataset.comparable(i, j)


def dominated_mask(dataset: IncompleteDataset, i: int) -> np.ndarray:
    """Boolean mask of the objects dominated by object *i*.

    Vectorised over the whole dataset: one ``O(n·d)`` pass. The result's
    ``sum()`` is exactly ``score(o_i)`` (Definition 2).
    """
    values = dataset.minimized
    observed = dataset.observed
    # Work on NaN-free copies; validity is controlled by the masks.
    filled = np.where(observed, values, 0.0)
    row = filled[i]
    row_mask = observed[i]

    common = observed & row_mask  # (n, d): dims observed in both i and each p
    le_all = np.all(~common | (row <= filled), axis=1)
    lt_any = np.any(common & (row < filled), axis=1)
    out = le_all & lt_any
    out[i] = False
    return out


def dominator_mask(dataset: IncompleteDataset, j: int) -> np.ndarray:
    """Boolean mask of the objects that dominate object *j*."""
    values = dataset.minimized
    observed = dataset.observed
    filled = np.where(observed, values, 0.0)
    row = filled[j]
    row_mask = observed[j]

    common = observed & row_mask
    ge_all = np.all(~common | (filled <= row), axis=1)
    gt_any = np.any(common & (filled < row), axis=1)
    out = ge_all & gt_any
    out[j] = False
    return out


def incomparable_mask(dataset: IncompleteDataset, i: int) -> np.ndarray:
    """Boolean mask of ``F(o_i)``: objects incomparable to object *i*.

    Paper Table 1 — used by BIG/IBIG to correct the ``G(o)``/``L(o)``
    partition and by Heuristic 3.
    """
    out = ~(dataset.observed & dataset.observed[i]).any(axis=1)
    out[i] = False
    return out


def dominance_matrix(
    dataset: IncompleteDataset, *, max_n: int = 4000, route: str = "auto"
) -> np.ndarray:
    """Full ``(n, n)`` boolean dominance matrix: ``M[i, j] = (o_i ≻ o_j)``.

    Intended for tests and small analyses; guarded by *max_n* because the
    result is quadratic in the dataset size. Served by the engine's
    mask-emitting kernels: the packed-bitset tables (cached per dataset
    fingerprint by the session layer) when available or worth building,
    the blocked broadcast otherwise; *route* forces one of
    ``"bitset"``/``"broadcast"`` explicitly.
    """
    n = dataset.n
    if n > max_n:
        raise InvalidParameterError(
            f"dominance_matrix on n={n} objects exceeds max_n={max_n}; "
            "raise max_n explicitly if you really want the quadratic matrix"
        )
    from ..engine.kernels import dominance_matrix_blocked

    return dominance_matrix_blocked(dataset, route=route)
