"""Query results and tie-breaking for TKD queries.

A TKD query (paper Definition 3) returns the ``k`` objects with highest
``score``. When several objects tie at the k-th score the paper "adopts
random selection as a tie breaker"; for reproducible pipelines the library
defaults to a deterministic lowest-index rule and offers seeded random
tie-breaking as an option.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from .._util import coerce_rng, format_table
from ..errors import InvalidParameterError
from .dataset import IncompleteDataset
from .stats import QueryStats

__all__ = ["TKDResult", "CandidateSet", "select_top_k", "validate_k"]

_TIE_BREAKS = ("index", "random")


def validate_k(k, n: int) -> int:
    """Validate a TKD ``k``; values above ``n`` are clamped to ``n``.

    The paper implicitly assumes ``k ≤ |S|``; clamping (rather than raising)
    matches what every reasonable engine does when asked for more rows than
    exist.
    """
    if isinstance(k, bool) or not isinstance(k, (int, np.integer)):
        raise InvalidParameterError(f"k must be a positive integer, got {k!r}")
    if k <= 0:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    return int(min(k, n))


def select_top_k(
    scores: np.ndarray,
    k: int,
    *,
    tie_break: str = "index",
    rng=None,
    eligible: np.ndarray | None = None,
) -> list[int]:
    """Pick ``k`` indices with the highest *scores* under a tie-break policy.

    Parameters
    ----------
    scores: integer scores per object index (higher is better).
    k: how many to select (must already be validated).
    tie_break: ``"index"`` (deterministic, lowest index wins among ties) or
        ``"random"`` (seeded by *rng*, the paper's stated policy).
    eligible: optional boolean mask restricting the selectable indices
        (used by ESB, whose candidates are a subset of the dataset).

    Returns the selected indices ordered by descending score (ties in the
    returned ordering follow the same policy).
    """
    if tie_break not in _TIE_BREAKS:
        raise InvalidParameterError(f"tie_break must be one of {_TIE_BREAKS}, got {tie_break!r}")
    scores = np.asarray(scores)
    candidates = np.flatnonzero(eligible) if eligible is not None else np.arange(scores.size)
    if k > candidates.size:
        k = candidates.size

    # Scores may be ints (Definition 2) or floats (MFD weighting) — never
    # truncate them in the ordering key.
    if tie_break == "index":
        order = sorted(candidates.tolist(), key=lambda i: (-float(scores[i]), i))
        return order[:k]

    rng = coerce_rng(rng)
    perm = rng.permutation(candidates.size)
    shuffled = candidates[perm]
    order = sorted(range(shuffled.size), key=lambda pos: (-float(scores[shuffled[pos]]), pos))
    return [int(shuffled[pos]) for pos in order[:k]]


class CandidateSet:
    """The ``S_C``/τ maintenance of Algorithm 2 (lines 7–11).

    Keeps at most ``k`` (index, score) candidates. ``tau`` is the paper's
    ``τ``: the minimum score in a *full* candidate set, or ``-1`` while the
    set holds fewer than ``k`` objects. When a better candidate arrives and
    the set is full, one object with score ``τ`` is evicted (the paper
    leaves the choice arbitrary; we evict the earliest-inserted one, which
    is deterministic).
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise InvalidParameterError(f"CandidateSet needs k >= 1, got {k}")
        self.k = int(k)
        self._heap: list[tuple[int, int, int]] = []  # (score, insertion_seq, index)
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        """True once ``k`` candidates are held."""
        return len(self._heap) >= self.k

    @property
    def tau(self) -> int:
        """Current pruning threshold ``τ`` (−1 while not full)."""
        if not self.full:
            return -1
        return self._heap[0][0]

    def offer(self, index: int, score: int) -> bool:
        """Apply Algorithm 2 lines 7–11 for one scored object.

        Returns True iff the object was enrolled into ``S_C``.
        """
        if not self.full:
            heapq.heappush(self._heap, (int(score), self._seq, int(index)))
            self._seq += 1
            return True
        if score > self.tau:
            heapq.heappushpop(self._heap, (int(score), self._seq, int(index)))
            self._seq += 1
            return True
        return False

    def items(self) -> list[tuple[int, int]]:
        """Current ``(index, score)`` pairs ordered by descending score."""
        ordered = sorted(self._heap, key=lambda t: (-t[0], t[2]))
        return [(idx, score) for score, _seq, idx in ordered]


@dataclass
class TKDResult:
    """Outcome of a top-k dominating query.

    Attributes
    ----------
    indices: selected object row indices, descending score order.
    scores: matching ``score(o)`` values.
    ids: matching object labels.
    k: the requested (validated) ``k``.
    algorithm: name of the algorithm that produced the result.
    stats: the run's :class:`~repro.core.stats.QueryStats`.
    """

    indices: list[int]
    scores: list[int]
    ids: list[str]
    k: int
    algorithm: str
    stats: QueryStats = field(default_factory=QueryStats)

    @classmethod
    def from_selection(
        cls,
        dataset: IncompleteDataset,
        selection: Sequence[int],
        scores: Sequence[int],
        *,
        k: int,
        algorithm: str,
        stats: QueryStats | None = None,
    ) -> "TKDResult":
        """Assemble a result, resolving ids from the dataset."""
        indices = [int(i) for i in selection]
        return cls(
            indices=indices,
            scores=[int(s) for s in scores],
            ids=[dataset.ids[i] for i in indices],
            k=int(k),
            algorithm=algorithm,
            stats=stats if stats is not None else QueryStats(algorithm=algorithm),
        )

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(index, score)`` pairs in rank order."""
        return iter(zip(self.indices, self.scores))

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def score_multiset(self) -> tuple[int, ...]:
        """Sorted (descending) tuple of returned scores.

        Because tie-breaking is arbitrary by design, *this* is the
        algorithm-independent invariant: every correct TKD algorithm must
        return the same score multiset for the same ``(S, k)``.
        """
        return tuple(sorted(self.scores, reverse=True))

    @property
    def id_set(self) -> frozenset:
        """The returned object labels as a set (order-insensitive)."""
        return frozenset(self.ids)

    def jaccard_distance(self, other: "TKDResult") -> float:
        """Jaccard distance ``1 − |A∩B| / |A∪B|`` between two results.

        Used by the paper's Table 4 to compare the incomplete-data answer
        with the answer on imputed (completed) data.
        """
        a, b = self.id_set, other.id_set
        union = a | b
        if not union:
            return 0.0
        return 1.0 - len(a & b) / len(union)

    def as_table(self) -> str:
        """Human-readable ranking table."""
        rows = [
            (rank + 1, self.ids[rank], self.indices[rank], self.scores[rank])
            for rank in range(len(self.indices))
        ]
        return format_table(["rank", "id", "row", "score"], rows)
