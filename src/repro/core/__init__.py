"""Core TKD-on-incomplete-data machinery (the paper's contribution).

Exposes the dataset model, the dominance relation, all five query
algorithms (Naive, ESB, UBB, BIG, IBIG), and supporting pieces
(``MaxScore``, results, statistics).
"""

from .dataset import IncompleteDataset
from .dominance import (
    comparable,
    dominance_matrix,
    dominated_mask,
    dominates,
    dominator_mask,
    incomparable_mask,
)
from .score import score_all, score_many, score_one
from .result import CandidateSet, TKDResult, select_top_k, validate_k
from .stats import QueryStats
from .base import TKDAlgorithm
from .naive import NaiveTKD, naive_tkd
from .esb import ESBTKD, esb_candidates, esb_tkd
from .maxscore import max_scores, max_scores_btree, maxscore_queue
from .ubb import UBBTKD, ubb_tkd
from .big import BIGTKD, big_tkd, max_bit_scores

__all__ = [
    "IncompleteDataset",
    "dominates",
    "comparable",
    "dominated_mask",
    "dominator_mask",
    "incomparable_mask",
    "dominance_matrix",
    "score_one",
    "score_many",
    "score_all",
    "CandidateSet",
    "TKDResult",
    "select_top_k",
    "validate_k",
    "QueryStats",
    "TKDAlgorithm",
    "NaiveTKD",
    "naive_tkd",
    "ESBTKD",
    "esb_tkd",
    "esb_candidates",
    "max_scores",
    "max_scores_btree",
    "maxscore_queue",
    "UBBTKD",
    "ubb_tkd",
    "BIGTKD",
    "big_tkd",
    "max_bit_scores",
]
