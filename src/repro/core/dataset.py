"""The incomplete-data model of Miao et al. (TKDE 2016), Section 3.

An :class:`IncompleteDataset` holds ``n`` objects over ``d`` dimensions where
any dimensional value may be *missing*. Missing values carry **zero prior
knowledge** — they are not probabilistic, merely absent — following the model
of Khalefa et al. (ICDE 2008) that the paper builds on.

Internally every object is represented by

* a row of a ``float64`` matrix (missing = ``NaN``) in the user's original
  orientation (:attr:`IncompleteDataset.values`),
* the same row re-oriented so that **smaller is better** on every dimension
  (:attr:`IncompleteDataset.minimized`) — the paper's Definition 1 assumes
  min-is-better, and per-dimension ``directions`` let callers keep natural
  units (e.g. MovieLens ratings where larger is better),
* a boolean observed-mask row (:attr:`IncompleteDataset.observed`), and
* a Python-int *bit pattern* ``b_o`` with bit ``i`` set iff dimension ``i``
  is observed (paper notation ``bo``); arbitrary-precision ints support any
  dimensionality, e.g. the 60-dimension MovieLens data.

Two objects are *comparable* iff their patterns share a set bit
(``b_o & b_o' != 0``), exactly the paper's bitwise-AND test.
"""

from __future__ import annotations

import csv
import hashlib
import io
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from .._util import is_missing_cell, parse_cell
from ..errors import (
    AllMissingObjectError,
    DimensionMismatchError,
    DuplicateObjectError,
    EmptyDatasetError,
    InvalidParameterError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .delta import DatasetDelta, DatasetVersion

__all__ = ["IncompleteDataset", "content_fingerprint", "pattern_of_row"]


def content_fingerprint(dataset) -> str:
    """Full content hash of a dataset's query-relevant state.

    The canonical identity the engine caches and the persistent store key
    on (ids and names are presentation-only and excluded; ``-0.0`` and NaN
    payload bits are canonicalised so equal-answer datasets share a
    fingerprint). Versioned datasets avoid recomputing this per update:
    :meth:`IncompleteDataset.fingerprint` derives a child's identity from
    its parent's fingerprint and the delta digest instead.
    """
    values = dataset.values
    observed = dataset.observed
    canonical = np.where(observed, values + 0.0, np.nan)
    digest = hashlib.sha256()
    digest.update(str(values.shape).encode())
    digest.update(canonical.tobytes())
    digest.update(observed.tobytes())
    digest.update(",".join(dataset.directions).encode())
    return digest.hexdigest()

_VALID_DIRECTIONS = ("min", "max")


def pattern_of_row(observed_row: np.ndarray) -> int:
    """Return the bit pattern ``b_o`` of one boolean observed-mask row.

    Bit ``i`` of the returned int is set iff ``observed_row[i]`` is True.
    """
    pattern = 0
    for i in np.flatnonzero(observed_row):
        pattern |= 1 << int(i)
    return pattern


class IncompleteDataset:
    """A set ``S`` of ``d``-dimensional objects with missing values.

    Parameters
    ----------
    values:
        An ``(n, d)`` array-like. Cells may be numbers, ``None``, ``NaN``,
        or strings (numeric strings are parsed; ``""``, ``"-"``, ``"na"``,
        ``"nan"``, ``"none"``, ``"null"``, ``"?"`` mean *missing*).
    ids:
        Optional object labels (length ``n``). Defaults to ``o0 … o{n-1}``.
    dim_names:
        Optional dimension names (length ``d``). Defaults to ``d1 … d{d}``
        mirroring the paper's notation.
    directions:
        Per-dimension preference, each ``"min"`` (smaller is better, the
        paper's convention) or ``"max"``. A single string applies to all
        dimensions. Internally ``"max"`` columns are negated so all query
        code can assume min-is-better.
    drop_all_missing:
        The paper only considers objects with at least one observed value.
        When False (default) such rows raise :class:`AllMissingObjectError`;
        when True they are silently dropped.
    name:
        Optional human-readable dataset name (used in reports).
    """

    def __init__(
        self,
        values,
        *,
        ids: Sequence[str] | None = None,
        dim_names: Sequence[str] | None = None,
        directions: str | Sequence[str] = "min",
        drop_all_missing: bool = False,
        name: str = "",
    ) -> None:
        matrix = _coerce_matrix(values)
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise EmptyDatasetError(
                f"dataset must have at least one object and one dimension, got shape {matrix.shape}"
            )
        observed = ~np.isnan(matrix)

        keep = observed.any(axis=1)
        if not keep.all():
            if not drop_all_missing:
                bad = np.flatnonzero(~keep)[:5].tolist()
                raise AllMissingObjectError(
                    f"objects at rows {bad} have no observed dimension; "
                    "pass drop_all_missing=True to drop them"
                )
            matrix = matrix[keep]
            observed = observed[keep]
            if ids is not None:
                ids = [label for label, ok in zip(ids, keep) if ok]
        if matrix.shape[0] == 0:
            raise EmptyDatasetError("all objects were dropped as fully missing")

        n, d = matrix.shape
        self._values = matrix
        self._observed = observed
        self._name = str(name)

        self._directions = _coerce_directions(directions, d)
        sign = np.ones(d)
        sign[[i for i, direc in enumerate(self._directions) if direc == "max"]] = -1.0
        self._minimized = matrix * sign

        if ids is None:
            ids = [f"o{i}" for i in range(n)]
        else:
            ids = [str(label) for label in ids]
            if len(ids) != n:
                raise DimensionMismatchError(f"expected {n} ids, got {len(ids)}")
        self._ids = list(ids)
        self._id_to_index = {label: i for i, label in enumerate(self._ids)}
        if len(self._id_to_index) != n:
            raise DuplicateObjectError("object ids must be unique")

        if dim_names is None:
            dim_names = [f"d{i + 1}" for i in range(d)]
        else:
            dim_names = [str(dn) for dn in dim_names]
            if len(dim_names) != d:
                raise DimensionMismatchError(f"expected {d} dim_names, got {len(dim_names)}")
        self._dim_names = tuple(dim_names)

        self._patterns: list[int] | None = None
        self._distinct_cache: dict[int, np.ndarray] = {}
        #: Memoised identity (datasets are immutable): either the full
        #: content hash, or — for versions built by ``apply_delta`` — the
        #: lineage-derived fingerprint.
        self._fingerprint: str | None = None
        #: ``(parent_fingerprint, delta_digest, depth)`` for delta-derived
        #: versions; ``None`` for root datasets. Set by ``apply_delta``.
        self._lineage: tuple[str, str, int] | None = None

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence], **kwargs) -> "IncompleteDataset":
        """Build a dataset from an iterable of per-object rows.

        Example
        -------
        >>> ds = IncompleteDataset.from_rows([[5, None, 3], [1, 2, "-"]])
        >>> ds.n, ds.d
        (2, 3)
        """
        materialised = [list(row) for row in rows]
        return cls(materialised, **kwargs)

    @classmethod
    def from_csv(
        cls,
        source,
        *,
        has_header: bool = True,
        id_column: str | int | None = None,
        **kwargs,
    ) -> "IncompleteDataset":
        """Read an incomplete dataset from a CSV file path or file object.

        Empty cells and the tokens ``-``, ``na``, ``nan``, ``none``,
        ``null``, ``?`` (case-insensitive) are treated as missing.

        Parameters
        ----------
        source: path or text file object.
        has_header: first row holds dimension names.
        id_column: optional column (name or position) holding object ids.
        """
        if hasattr(source, "read"):
            text = source.read()
        else:
            with open(source, "r", newline="") as handle:
                text = handle.read()
        reader = csv.reader(io.StringIO(text))
        rows = [row for row in reader if row]
        if not rows:
            raise EmptyDatasetError("CSV input contains no rows")

        header: list[str] | None = None
        if has_header:
            header = rows[0]
            rows = rows[1:]
        if not rows:
            raise EmptyDatasetError("CSV input contains a header but no data rows")

        id_idx: int | None = None
        if id_column is not None:
            if isinstance(id_column, str):
                if header is None:
                    raise InvalidParameterError("id_column by name requires has_header=True")
                try:
                    id_idx = header.index(id_column)
                except ValueError:
                    raise InvalidParameterError(f"id column {id_column!r} not in header {header}") from None
            else:
                id_idx = int(id_column)

        ids = None
        if id_idx is not None:
            ids = [row[id_idx] for row in rows]
            rows = [[cell for j, cell in enumerate(row) if j != id_idx] for row in rows]
            if header is not None:
                header = [h for j, h in enumerate(header) if j != id_idx]

        kwargs.setdefault("ids", ids)
        if header is not None:
            kwargs.setdefault("dim_names", header)
        return cls(rows, **kwargs)

    def to_csv(self, destination, *, missing_token: str = "") -> None:
        """Write the dataset (original orientation) as CSV with an id column."""
        own_handle = not hasattr(destination, "write")
        handle = open(destination, "w", newline="") if own_handle else destination
        try:
            writer = csv.writer(handle)
            writer.writerow(["id", *self._dim_names])
            for i in range(self.n):
                row = [self._ids[i]]
                for j in range(self.d):
                    if self._observed[i, j]:
                        value = self._values[i, j]
                        row.append(int(value) if float(value).is_integer() else value)
                    else:
                        row.append(missing_token)
                writer.writerow(row)
        finally:
            if own_handle:
                handle.close()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """``(n, d)`` float matrix in the user's orientation; missing = NaN."""
        return self._values

    @property
    def minimized(self) -> np.ndarray:
        """``(n, d)`` matrix re-oriented so smaller is better everywhere.

        All dominance/score computations in the library run on this matrix.
        """
        return self._minimized

    @property
    def observed(self) -> np.ndarray:
        """``(n, d)`` boolean observed-mask (True where a value exists)."""
        return self._observed

    @property
    def n(self) -> int:
        """Number of objects (paper: dataset cardinality ``N``)."""
        return self._values.shape[0]

    @property
    def d(self) -> int:
        """Number of dimensions (paper: ``d``)."""
        return self._values.shape[1]

    @property
    def ids(self) -> list[str]:
        """Object labels, index-aligned with the data matrix."""
        return list(self._ids)

    @property
    def dim_names(self) -> tuple[str, ...]:
        """Dimension names."""
        return self._dim_names

    @property
    def directions(self) -> tuple[str, ...]:
        """Per-dimension preference direction (``"min"`` or ``"max"``)."""
        return self._directions

    @property
    def name(self) -> str:
        """Human-readable dataset name (may be empty)."""
        return self._name

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<IncompleteDataset{label} n={self.n} d={self.d} "
            f"missing_rate={self.missing_rate:.3f}>"
        )

    # ------------------------------------------------------------------
    # Incomplete-data specifics
    # ------------------------------------------------------------------

    @property
    def patterns(self) -> list[int]:
        """Per-object bit patterns ``b_o`` (bit ``i`` set iff dim ``i`` observed)."""
        if self._patterns is None:
            weights = (1 << np.arange(self.d, dtype=object))
            self._patterns = [int(x) for x in (self._observed.astype(object) * weights).sum(axis=1)]
        return self._patterns

    def pattern(self, index: int) -> int:
        """Bit pattern of one object."""
        return self.patterns[index]

    @property
    def missing_rate(self) -> float:
        """Fraction of missing cells over the whole matrix (paper: σ)."""
        return float(1.0 - self._observed.mean())

    def index_of(self, object_id: str) -> int:
        """Map an object label back to its row index."""
        try:
            return self._id_to_index[object_id]
        except KeyError:
            raise InvalidParameterError(f"unknown object id {object_id!r}") from None

    def iset(self, index: int) -> tuple[int, ...]:
        """``Iset(o)``: observed dimension indices of object *index* (paper, Table 1)."""
        return tuple(int(j) for j in np.flatnonzero(self._observed[index]))

    def comparable(self, i: int, j: int) -> bool:
        """True iff objects *i* and *j* share at least one observed dimension."""
        return (self.patterns[i] & self.patterns[j]) != 0

    def observed_count(self, dim: int) -> int:
        """Number of objects with an observed value on *dim*."""
        return int(self._observed[:, dim].sum())

    def missing_count(self, dim: int) -> int:
        """``|S_i|``: number of objects whose value on *dim* is missing."""
        return self.n - self.observed_count(dim)

    def distinct_values(self, dim: int) -> np.ndarray:
        """Sorted distinct observed values of *dim* in minimized orientation.

        This is the domain the bitmap index enumerates; its length is the
        paper's dimensional cardinality ``C_i``.
        """
        if dim not in self._distinct_cache:
            col = self._minimized[:, dim]
            self._distinct_cache[dim] = np.unique(col[self._observed[:, dim]])
        return self._distinct_cache[dim]

    def dimension_cardinality(self, dim: int) -> int:
        """``C_i``: the number of distinct observed values on *dim*."""
        return int(self.distinct_values(dim).size)

    @property
    def dimension_cardinalities(self) -> tuple[int, ...]:
        """``(C_1, …, C_d)`` tuple."""
        return tuple(self.dimension_cardinality(j) for j in range(self.d))

    # ------------------------------------------------------------------
    # Versioning / deltas
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """This version's identity: content hash, or lineage-derived.

        Root datasets pay one full :func:`content_fingerprint` (memoised —
        instances are immutable); versions produced by
        :meth:`apply_delta` derive ``H(parent_fingerprint, delta_digest)``
        in ``O(|delta|·d)`` instead, which is what makes per-update engine
        caching viable. Deterministic across processes: replaying the same
        deltas from the same root always reproduces the same fingerprints.
        """
        if self._fingerprint is None:
            if self._lineage is not None:
                parent_fp, delta_digest, _depth = self._lineage
                digest = hashlib.sha256()
                digest.update(b"lineage:")
                digest.update(parent_fp.encode())
                digest.update(delta_digest.encode())
                self._fingerprint = digest.hexdigest()
            else:
                self._fingerprint = content_fingerprint(self)
        return self._fingerprint

    @property
    def version(self) -> "DatasetVersion":
        """This dataset's :class:`~repro.core.delta.DatasetVersion` identity."""
        from .delta import DatasetVersion  # deferred: delta imports this module

        if self._lineage is None:
            return DatasetVersion(fingerprint=self.fingerprint())
        parent_fp, delta_digest, depth = self._lineage
        return DatasetVersion(
            fingerprint=self.fingerprint(),
            parent=parent_fp,
            delta_digest=delta_digest,
            depth=depth,
        )

    def apply_delta(self, delta: "DatasetDelta") -> "IncompleteDataset":
        """New version of this dataset under one insert/delete/update batch."""
        from .delta import apply_delta  # deferred: delta imports this module

        return apply_delta(self, delta)

    def _with_replaced_rows(self, rows, values: np.ndarray) -> "IncompleteDataset":
        """Clone fast path for update-only deltas (same rows, same ids).

        Skips the generic constructor: only the three value matrices are
        copied (updated rows re-stamped); ids, the id index, and dimension
        metadata are shared with the parent — all immutable by contract.
        """
        clone = IncompleteDataset.__new__(IncompleteDataset)
        clone._values = np.array(self._values, copy=True)
        clone._values[rows] = values
        clone._observed = np.array(self._observed, copy=True)
        clone._observed[rows] = ~np.isnan(values)
        sign = np.array(
            [-1.0 if direction == "max" else 1.0 for direction in self._directions]
        )
        clone._minimized = np.array(self._minimized, copy=True)
        clone._minimized[rows] = values * sign
        clone._name = self._name
        clone._directions = self._directions
        clone._ids = self._ids
        clone._id_to_index = self._id_to_index
        clone._dim_names = self._dim_names
        clone._patterns = None
        clone._distinct_cache = {}
        clone._fingerprint = None
        clone._lineage = None
        return clone

    def with_inserted(
        self, rows, *, ids: Sequence[str] | None = None
    ) -> "IncompleteDataset":
        """New version with *rows* appended (``None``/NaN cells are missing)."""
        from .delta import DatasetDelta

        return self.apply_delta(DatasetDelta.inserting(self, rows, ids=ids))

    def with_deleted(self, ids: Sequence[str]) -> "IncompleteDataset":
        """New version with the given objects removed (order preserved)."""
        from .delta import DatasetDelta

        return self.apply_delta(DatasetDelta.deleting(self, ids))

    def with_updated(self, updates: Mapping[str, Sequence]) -> "IncompleteDataset":
        """New version with per-object replacements applied in place.

        Each value is either a full replacement row or a partial
        ``{dimension: value}`` mapping (dimension by name or index).
        """
        from .delta import DatasetDelta

        return self.apply_delta(DatasetDelta.updating(self, updates))

    # ------------------------------------------------------------------
    # Slicing / combining
    # ------------------------------------------------------------------

    def subset(self, indices: Sequence[int], *, name: str | None = None) -> "IncompleteDataset":
        """Return a new dataset containing only the given object rows."""
        idx = np.asarray(list(indices), dtype=np.intp)
        if idx.size == 0:
            raise EmptyDatasetError("subset would be empty")
        # Rebuild from the original orientation so directions are re-applied.
        return IncompleteDataset(
            self._values[idx],
            ids=[self._ids[i] for i in idx],
            dim_names=self._dim_names,
            directions=self._directions,
            name=self._name if name is None else name,
        )

    def project(self, dims: Sequence[int], *, drop_all_missing: bool = True) -> "IncompleteDataset":
        """Project onto a subset of dimensions (keeps ids; may drop rows)."""
        dims = [int(j) for j in dims]
        if not dims:
            raise EmptyDatasetError("projection needs at least one dimension")
        for j in dims:
            if j < 0 or j >= self.d:
                raise InvalidParameterError(f"dimension {j} outside [0, {self.d})")
        keep_rows = self._observed[:, dims].any(axis=1)
        values = self._values[np.ix_(np.flatnonzero(keep_rows), dims)]
        return IncompleteDataset(
            values,
            ids=[self._ids[i] for i in np.flatnonzero(keep_rows)],
            dim_names=[self._dim_names[j] for j in dims],
            directions=[self._directions[j] for j in dims],
            name=self._name,
            drop_all_missing=drop_all_missing,
        )

    def row_display(self, index: int, missing_token: str = "-") -> list:
        """Human-oriented row rendering (original orientation, ``-`` for missing)."""
        out = []
        for j in range(self.d):
            if self._observed[index, j]:
                value = self._values[index, j]
                out.append(int(value) if float(value).is_integer() else float(value))
            else:
                out.append(missing_token)
        return out


def _coerce_matrix(values) -> np.ndarray:
    """Turn arbitrary row input into a float64 matrix with NaN for missing."""
    if isinstance(values, np.ndarray) and values.dtype.kind in "fiu":
        matrix = np.asarray(values, dtype=np.float64)
        if matrix.ndim != 2:
            raise DimensionMismatchError(f"expected a 2-D array, got shape {matrix.shape}")
        return matrix.copy()

    rows = [list(row) for row in values]
    if not rows:
        raise EmptyDatasetError("dataset must have at least one object")
    width = len(rows[0])
    parsed = np.empty((len(rows), width), dtype=np.float64)
    for i, row in enumerate(rows):
        if len(row) != width:
            raise DimensionMismatchError(
                f"row {i} has {len(row)} cells, expected {width} (ragged input)"
            )
        for j, cell in enumerate(row):
            parsed[i, j] = float("nan") if is_missing_cell(cell) else parse_cell(cell)
    return parsed


def _coerce_directions(directions, d: int) -> tuple[str, ...]:
    """Normalise the ``directions`` argument to a length-``d`` tuple."""
    if isinstance(directions, str):
        directions = [directions] * d
    directions = [str(x).lower() for x in directions]
    if len(directions) != d:
        raise DimensionMismatchError(f"expected {d} directions, got {len(directions)}")
    for direc in directions:
        if direc not in _VALID_DIRECTIONS:
            raise InvalidParameterError(f"direction must be 'min' or 'max', got {direc!r}")
    return tuple(directions)
