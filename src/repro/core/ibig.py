"""IBIG — the Improved BIG algorithm (paper Section 4.4, Alg. 5).

IBIG trades query time for index space along two axes:

* **binning** — the index encodes value *bins* (Eqs. 3–4) instead of
  distinct values, shrinking storage from ``Σ(C_i+1)·N`` to
  ``Σ(ξ_i+1)·N`` bits; the Eq. 8 optimum ``ξ*`` balances the space × time
  product;
* **compression** — columns are kept CONCISE-compressed at rest (the
  paper picks CONCISE over WAH from the Fig. 10 comparison) and
  materialised on demand for query evaluation.

Because a same-bin neighbour may actually be *smaller* than ``o``, the
``Q − P`` rim needs value verification. IBIG-Score therefore gains
**Heuristic 3 (partial-score pruning)**: while collecting strictly-smaller
rim members into ``nonD(o)``, as soon as
``|nonD(o)| > |Q| − |F(o)| − τ`` the object's score provably cannot reach
``τ`` and evaluation aborts.

Two rim-verification backends are provided:

* vectorised NumPy comparisons (default), and
* per-dimension B+-tree bin scans (``use_btree=True``), the paper's own
  description, whose cost is the Eq. 6 model ``log(σN) + ⌈σN/ξ⌉ − 1``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..bitmap.binned import BinnedBitmapIndex
from ..bitmap.binning import optimal_bin_count
from ..bitmap.compression import CompressedColumnStore
from ..btree.bptree import BPlusTree
from ..skyband.buckets import BucketIndex
from .base import TKDAlgorithm
from .dataset import IncompleteDataset
from .maxscore import max_scores, maxscore_queue
from .result import CandidateSet, TKDResult
from .stats import QueryStats

__all__ = ["IBIGTKD", "ibig_tkd"]


class IBIGTKD(TKDAlgorithm):
    """Improved bitmap index guided TKD over incomplete data."""

    name = "ibig"

    def __init__(
        self,
        dataset: IncompleteDataset,
        *,
        bins: int | Sequence[int] | None = None,
        index: BinnedBitmapIndex | None = None,
        buckets: BucketIndex | None = None,
        compress: str | None = "concise",
        use_btree: bool = False,
        enable_h1: bool = True,
        enable_h2: bool = True,
        enable_h3: bool = True,
    ) -> None:
        super().__init__(dataset)
        self._bins = bins
        self._index = index
        self._buckets = buckets
        self._compress = compress
        self._use_btree = bool(use_btree)
        #: Ablation switches for the three heuristics (answers stay exact).
        self._enable_h1 = bool(enable_h1)
        self._enable_h2 = bool(enable_h2)
        self._enable_h3 = bool(enable_h3)
        self._store: CompressedColumnStore | None = None
        self._trees: list[BPlusTree] | None = None
        self._maxscore: np.ndarray | None = None
        self._queue: np.ndarray | None = None
        self._filled: np.ndarray | None = None

    def _prepare(self) -> None:
        dataset = self.dataset
        if self._index is None:
            bins = self._bins
            if bins is None:
                bins = optimal_bin_count(dataset.n, dataset.missing_rate)
            self._index = BinnedBitmapIndex(dataset, bins)
        if self._buckets is None:
            self._buckets = BucketIndex(dataset)
        if self._compress is not None:
            self._store = CompressedColumnStore(self._index, self._compress)
        if self._use_btree:
            self._trees = self._build_trees()
        self._maxscore = max_scores(dataset)
        self._queue = maxscore_queue(dataset, self._maxscore)
        self._filled = np.where(dataset.observed, dataset.minimized, 0.0)

    def _build_trees(self) -> list[BPlusTree]:
        dataset = self.dataset
        trees = []
        for dim in range(dataset.d):
            rows = np.flatnonzero(dataset.observed[:, dim])
            pairs = sorted(
                (float(dataset.minimized[row, dim]), int(row)) for row in rows
            )
            trees.append(BPlusTree.bulk_load(pairs))
        return trees

    # -- public surface --------------------------------------------------------

    @property
    def index(self) -> BinnedBitmapIndex:
        """The binned bitmap index."""
        self.prepare()
        return self._index

    @property
    def index_bytes(self) -> int:
        """Compressed at-rest size when compression is on, else logical size."""
        if self._store is not None:
            return self._store.compressed_bytes
        if self._index is None:
            return 0
        return self._index.size_bits // 8

    @property
    def compression_report(self):
        """The CONCISE/WAH compression report (None when uncompressed)."""
        self.prepare()
        return self._store.report if self._store is not None else None

    # -- IBIG-Score ---------------------------------------------------------------

    def _bit_score(self, row: int, candidates: CandidateSet, stats: QueryStats) -> int | None:
        """Algorithm 5. None = pruned (Heuristic 2 or 3)."""
        dataset = self.dataset
        q_vec = self._index.q_intersection(row)
        q_vec.set(row, False)
        max_bit_score = q_vec.count()
        if self._enable_h2 and candidates.full and max_bit_score <= candidates.tau:
            stats.pruned_h2 += 1
            return None

        p_vec = self._index.p_intersection(row)
        f_vec = self._buckets.incomparable_mask(dataset.patterns[row])
        g_count = p_vec.andnot(f_vec).count()  # |G(o)| = |P − F(o)|

        rim = q_vec.andnot(p_vec)
        rim_rows = rim.indices()
        l_count = 0
        if rim_rows.size:
            stats.comparisons += int(rim_rows.size)
            if self._use_btree:
                strictly_less = self._strictly_less_via_btree(row, rim_rows)
            else:
                strictly_less = self._strictly_less_vectorised(row, rim_rows)
            n_less = int(strictly_less.sum())
            if (
                self._enable_h3
                and candidates.full
                and n_less > max_bit_score - f_vec.count() - candidates.tau
            ):
                stats.pruned_h3 += 1  # Heuristic 3: score(o) < tau is certain
                return None
            common = dataset.observed[rim_rows] & dataset.observed[row]
            equal = common & (self._filled[rim_rows] == self._filled[row])
            all_equal = equal.sum(axis=1) == common.sum(axis=1)
            # nonD(o) = strictly-less members ∪ all-equal members (disjoint).
            l_count = int(rim_rows.size - n_less - all_equal.sum())
        return g_count + l_count

    def _strictly_less_vectorised(self, row: int, rim_rows: np.ndarray) -> np.ndarray:
        """Rim members with a common observed dim strictly below o's value."""
        dataset = self.dataset
        common = dataset.observed[rim_rows] & dataset.observed[row]
        return (common & (self._filled[rim_rows] < self._filled[row])).any(axis=1)

    def _strictly_less_via_btree(self, row: int, rim_rows: np.ndarray) -> np.ndarray:
        """Same predicate via per-dimension B+-tree bin scans (paper's route).

        For each observed dimension of ``o`` the candidates that might be
        smaller all sit inside o's bin, below o's value: scan
        ``[bin_lower_edge, o_value)`` and intersect with the rim.
        """
        dataset = self.dataset
        in_rim = np.zeros(dataset.n, dtype=bool)
        in_rim[rim_rows] = True
        out_mask = np.zeros(dataset.n, dtype=bool)
        for dim in range(dataset.d):
            if not dataset.observed[row, dim]:
                continue
            value = float(dataset.minimized[row, dim])
            lower = self._index.bin_lower_edge(row, dim)
            for _key, payload in self._trees[dim].range_scan(lower, value, include_high=False):
                if in_rim[payload]:
                    out_mask[payload] = True
        return out_mask[rim_rows]

    # -- main loop ----------------------------------------------------------------

    def _run(self, k: int, *, tie_break: str, rng, stats: QueryStats) -> tuple[Sequence[int], Sequence[int]]:
        del tie_break, rng  # boundary ties resolved by eviction order (paper: arbitrary)
        candidates = CandidateSet(k)
        n = self.dataset.n
        stats.extra["bin_counts"] = [self._index.bin_count(j) for j in range(self.dataset.d)]
        if self._store is not None:
            stats.extra["compression_ratio"] = self._store.report.ratio

        for position, index in enumerate(self._queue.tolist()):
            if self._enable_h1 and candidates.full and self._maxscore[index] <= candidates.tau:
                stats.pruned_h1 = n - position  # Heuristic 1
                break
            score = self._bit_score(index, candidates, stats)
            if score is None:
                continue  # Heuristic 2 or 3 pruned it
            stats.scores_computed += 1
            candidates.offer(index, score)

        items = candidates.items()
        return [idx for idx, _ in items], [score for _, score in items]


def ibig_tkd(
    dataset: IncompleteDataset,
    k: int,
    *,
    bins: int | Sequence[int] | None = None,
    tie_break: str = "index",
    rng=None,
) -> TKDResult:
    """One-shot IBIG TKD query (binned + compressed index built first)."""
    return IBIGTKD(dataset, bins=bins).query(k, tie_break=tie_break, rng=rng)
