"""``MaxScore`` — the upper bound score of Lemma 2 (paper Section 4.2).

For each object ``o`` and dimension ``i``::

    T_i(o) = { p ∈ S − {o} : o[i] ≤ p[i] } ∪ S_i     if i ∈ Iset(o)
    T_i(o) = S                                        otherwise

where ``S_i`` is the set of objects missing dimension ``i``. Every object
``o`` can possibly dominate only members of each ``T_i(o)``, hence

    MaxScore(o) = min_i |T_i(o)|

is a valid upper bound on ``score(o)``. The UBB/BIG/IBIG algorithms consume
objects in **descending MaxScore order** (the priority queue ``F``) so that
Heuristic 1 can stop the whole scan as soon as the head's bound falls to
the current threshold ``τ``.

Two implementations are provided:

* :func:`max_scores` — vectorised ``O(N·d·log N)`` via per-dimension sorted
  arrays and ``searchsorted`` (the default everywhere);
* :func:`max_scores_btree` — per-dimension B+-trees with order-statistic
  counts, matching the paper's "``O(N lg N)`` based on the B+-tree
  structure" description. Slower in Python, kept as an executable
  specification and exercised by tests for agreement.
"""

from __future__ import annotations

import numpy as np

from .dataset import IncompleteDataset

__all__ = ["max_scores", "max_scores_btree", "maxscore_queue"]


def max_scores(dataset: IncompleteDataset) -> np.ndarray:
    """``MaxScore(o)`` for every object, vectorised."""
    n, d = dataset.n, dataset.d
    values = dataset.minimized
    observed = dataset.observed

    # For dimensions missing in o, |T_i(o)| = |S| = n.
    out = np.full(n, n, dtype=np.int64)
    for dim in range(d):
        obs = observed[:, dim]
        col = values[obs, dim]
        n_obs = col.size
        if n_obs == 0:
            continue  # |T_i| = |S_i| = n for everyone; the init already covers it
        sorted_col = np.sort(col)
        missing = n - n_obs
        # #(p != o with p[dim] >= o[dim]) = n_obs - rank_lower(o[dim]) - 1
        ranks = np.searchsorted(sorted_col, col, side="left")
        t_sizes = (n_obs - ranks - 1) + missing
        rows = np.flatnonzero(obs)
        out[rows] = np.minimum(out[rows], t_sizes)
    return out


def max_scores_btree(dataset: IncompleteDataset) -> np.ndarray:
    """``MaxScore`` computed through per-dimension B+-trees.

    Builds one :class:`~repro.btree.bptree.BPlusTree` per dimension over the
    observed values and answers ``|T_i(o)|`` with order-statistic
    ``count_greater_equal`` queries.
    """
    from ..btree.bptree import BPlusTree

    n, d = dataset.n, dataset.d
    values = dataset.minimized
    observed = dataset.observed

    out = np.full(n, n, dtype=np.int64)
    for dim in range(d):
        rows = np.flatnonzero(observed[:, dim])
        if rows.size == 0:
            continue
        tree = BPlusTree.bulk_load(
            sorted((float(values[row, dim]), int(row)) for row in rows)
        )
        missing = n - rows.size
        for row in rows:
            at_least = tree.count_greater_equal(float(values[row, dim])) - 1
            out[row] = min(out[row], at_least + missing)
    return out


def maxscore_queue(dataset: IncompleteDataset, scores: np.ndarray | None = None) -> np.ndarray:
    """The priority queue ``F``: object indices by descending ``MaxScore``.

    Ties are broken by ascending row index (stable), which reproduces the
    paper's Fig. 5 ordering for the running example.
    """
    if scores is None:
        scores = max_scores(dataset)
    return np.argsort(-scores, kind="stable")
