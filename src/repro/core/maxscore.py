"""``MaxScore`` — the upper bound score of Lemma 2 (paper Section 4.2).

For each object ``o`` and dimension ``i``::

    T_i(o) = { p ∈ S − {o} : o[i] ≤ p[i] } ∪ S_i     if i ∈ Iset(o)
    T_i(o) = S                                        otherwise

where ``S_i`` is the set of objects missing dimension ``i``. Every object
``o`` can possibly dominate only members of each ``T_i(o)``, hence

    MaxScore(o) = min_i |T_i(o)|

is a valid upper bound on ``score(o)``. The UBB/BIG/IBIG algorithms consume
objects in **descending MaxScore order** (the priority queue ``F``) so that
Heuristic 1 can stop the whole scan as soon as the head's bound falls to
the current threshold ``τ``.

Two implementations are provided:

* :func:`max_scores` — vectorised ``O(N·d·log N)`` via per-dimension sorted
  arrays and ``searchsorted`` (the default everywhere);
* :func:`max_scores_btree` — per-dimension B+-trees with order-statistic
  counts, matching the paper's "``O(N lg N)`` based on the B+-tree
  structure" description. Slower in Python, kept as an executable
  specification and exercised by tests for agreement.
"""

from __future__ import annotations

import numpy as np

from .dataset import IncompleteDataset

__all__ = ["max_scores", "max_scores_btree", "maxscore_queue"]


def max_scores(dataset: IncompleteDataset) -> np.ndarray:
    """``MaxScore(o)`` for every object, vectorised.

    Thin front over :func:`repro.engine.kernels.upper_bound_scores` — the
    shared upper-bound phase of UBB, BIG and IBIG all runs on that kernel.
    """
    from ..engine.kernels import upper_bound_scores

    return upper_bound_scores(dataset)


def max_scores_btree(dataset: IncompleteDataset) -> np.ndarray:
    """``MaxScore`` computed through per-dimension B+-trees.

    Builds one :class:`~repro.btree.bptree.BPlusTree` per dimension over the
    observed values and answers ``|T_i(o)|`` with order-statistic
    ``count_greater_equal`` queries.
    """
    from ..btree.bptree import BPlusTree

    n, d = dataset.n, dataset.d
    values = dataset.minimized
    observed = dataset.observed

    out = np.full(n, n, dtype=np.int64)
    for dim in range(d):
        rows = np.flatnonzero(observed[:, dim])
        if rows.size == 0:
            continue
        tree = BPlusTree.bulk_load(
            sorted((float(values[row, dim]), int(row)) for row in rows)
        )
        missing = n - rows.size
        for row in rows:
            at_least = tree.count_greater_equal(float(values[row, dim])) - 1
            out[row] = min(out[row], at_least + missing)
    return out


def maxscore_queue(dataset: IncompleteDataset, scores: np.ndarray | None = None) -> np.ndarray:
    """The priority queue ``F``: object indices by descending ``MaxScore``.

    Ties are broken by ascending row index (stable), which reproduces the
    paper's Fig. 5 ordering for the running example.
    """
    if scores is None:
        scores = max_scores(dataset)
    return np.argsort(-scores, kind="stable")
