"""Common machinery shared by all TKD algorithms.

Every algorithm in the paper follows the same lifecycle:

1. **prepare** — build whatever auxiliary structure it needs (ESB: buckets;
   UBB: the ``MaxScore`` priority queue ``F``; BIG/IBIG: the (binned)
   bitmap index plus ``F``). The paper reports this separately as
   *preprocessing time* (Table 3).
2. **query** — answer a TKD query for a given ``k``.

:class:`TKDAlgorithm` captures that lifecycle, the timing of both phases,
and result assembly, so each concrete algorithm only implements
:meth:`TKDAlgorithm._prepare` and :meth:`TKDAlgorithm._run`.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..errors import InvalidParameterError
from .dataset import IncompleteDataset
from .result import TKDResult, validate_k
from .stats import QueryStats

__all__ = ["TKDAlgorithm"]


class TKDAlgorithm:
    """Abstract base for TKD query algorithms on incomplete data."""

    #: Registry name; concrete subclasses override this.
    name: str = "abstract"

    def __init__(self, dataset: IncompleteDataset) -> None:
        if not isinstance(dataset, IncompleteDataset):
            raise InvalidParameterError(
                f"dataset must be an IncompleteDataset, got {type(dataset).__name__}"
            )
        self.dataset = dataset
        self._prepared = False
        self._preprocess_seconds = 0.0

    # -- lifecycle ------------------------------------------------------

    def prepare(self) -> "TKDAlgorithm":
        """Build auxiliary structures once; safe to call repeatedly."""
        if not self._prepared:
            start = time.perf_counter()
            self._prepare()
            self._preprocess_seconds = time.perf_counter() - start
            self._prepared = True
        return self

    def query(self, k: int, *, tie_break: str = "index", rng=None) -> TKDResult:
        """Answer a TKD query: the ``k`` objects with the highest scores."""
        k = validate_k(k, self.dataset.n)
        self.prepare()
        stats = QueryStats(
            algorithm=self.name,
            n=self.dataset.n,
            d=self.dataset.d,
            k=k,
            preprocess_seconds=self._preprocess_seconds,
            index_bytes=self.index_bytes,
        )
        start = time.perf_counter()
        indices, scores = self._run(k, tie_break=tie_break, rng=rng, stats=stats)
        stats.query_seconds = time.perf_counter() - start
        return TKDResult.from_selection(
            self.dataset, indices, scores, k=k, algorithm=self.name, stats=stats
        )

    # -- to be provided by subclasses ------------------------------------

    def _prepare(self) -> None:
        """Build indexes/queues. Default: nothing to build."""

    def _run(
        self, k: int, *, tie_break: str, rng, stats: QueryStats
    ) -> tuple[Sequence[int], Sequence[int]]:
        """Return ``(indices, scores)`` of the answer set."""
        raise NotImplementedError

    # -- reporting --------------------------------------------------------

    @property
    def preprocess_seconds(self) -> float:
        """Wall-clock seconds the last :meth:`prepare` took (0 if pending)."""
        return self._preprocess_seconds

    @property
    def index_bytes(self) -> int:
        """Bytes of index storage this algorithm maintains (0 if none)."""
        return 0

    # -- shared helpers ---------------------------------------------------

    @staticmethod
    def _pairwise_cost(n_scored: int, n: int) -> int:
        """Comparisons implied by *n_scored* exhaustive Get-Score calls."""
        return int(n_scored) * max(0, int(n) - 1)

    def _full_scores(self) -> np.ndarray:
        """Exact scores of all objects (used by Naive and as test oracle)."""
        from .score import score_all

        return score_all(self.dataset)
