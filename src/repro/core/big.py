"""BIG — the Bitmap Index Guided algorithm (paper Section 4.3, Algs. 3–4).

BIG keeps UBB's frame (MaxScore queue + Heuristic 1) but replaces the
pairwise ``Get-Score`` with bitmap arithmetic:

1. ``Q = ∩_i [Qi] − {o}`` and ``P = ∩_i [Pi]`` come from packed ANDs over
   the range-encoded index columns.
2. ``MaxBitScore(o) = |Q|`` is a *tighter* upper bound than ``MaxScore``
   (Lemma 3); **Heuristic 2** discards ``o`` outright when the candidate
   set is full and ``|Q| ≤ τ``.
3. Otherwise the score is assembled as ``score(o) = |G(o)| + |L(o)|`` with
   ``G(o) = P − F(o)`` (strictly worse on every common dimension and
   comparable) and ``L(o) = (Q − P) − nonD(o)`` where ``nonD(o)`` holds the
   candidates whose common observed dimensions all *equal* o's (their
   ``tagT`` counter reaches ``|b_p & b_o|``) — those are not dominated.

Only the small ``Q − P`` rim requires real value comparisons.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..bitmap.index import BitmapIndex
from ..skyband.buckets import BucketIndex
from .base import TKDAlgorithm
from .dataset import IncompleteDataset
from .maxscore import max_scores, maxscore_queue
from .result import CandidateSet, TKDResult
from .stats import QueryStats

__all__ = ["BIGTKD", "big_tkd", "max_bit_scores"]


class BIGTKD(TKDAlgorithm):
    """Bitmap index guided TKD over incomplete data."""

    name = "big"

    def __init__(
        self,
        dataset: IncompleteDataset,
        *,
        index: BitmapIndex | None = None,
        buckets: BucketIndex | None = None,
        enable_h1: bool = True,
        enable_h2: bool = True,
    ) -> None:
        super().__init__(dataset)
        self._index = index
        self._buckets = buckets
        #: Ablation switches for Heuristics 1 (early termination) and 2
        #: (MaxBitScore pruning); the answer stays exact either way.
        self._enable_h1 = bool(enable_h1)
        self._enable_h2 = bool(enable_h2)
        self._maxscore: np.ndarray | None = None
        self._queue: np.ndarray | None = None
        self._filled: np.ndarray | None = None

    def _prepare(self) -> None:
        if self._index is None:
            self._index = BitmapIndex(self.dataset)
        if self._buckets is None:
            self._buckets = BucketIndex(self.dataset)
        self._maxscore = max_scores(self.dataset)
        self._queue = maxscore_queue(self.dataset, self._maxscore)
        self._filled = np.where(self.dataset.observed, self.dataset.minimized, 0.0)

    @property
    def index(self) -> BitmapIndex:
        """The underlying range-encoded bitmap index."""
        self.prepare()
        return self._index

    @property
    def index_bytes(self) -> int:
        if self._index is None:
            return 0
        return self._index.size_bits // 8

    # -- scoring --------------------------------------------------------------

    def _bit_score(
        self, row: int, candidates: CandidateSet, stats: QueryStats
    ) -> int | None:
        """BIG-Score (Algorithm 3). Returns None when Heuristic 2 prunes."""
        dataset = self.dataset
        q_vec = self._index.q_intersection(row)
        q_vec.set(row, False)  # Q = ∩ Qi − {o}
        max_bit_score = q_vec.count()
        if self._enable_h2 and candidates.full and max_bit_score <= candidates.tau:
            stats.pruned_h2 += 1
            return None

        p_vec = self._index.p_intersection(row)
        f_vec = self._buckets.incomparable_mask(dataset.patterns[row])
        g_count = p_vec.andnot(f_vec).count()  # |G(o)| = |P − F(o)|

        rim = q_vec.andnot(p_vec)  # Q − P: needs per-dimension verification
        rim_rows = rim.indices()
        if rim_rows.size:
            common = dataset.observed[rim_rows] & dataset.observed[row]
            equal = common & (self._filled[rim_rows] == self._filled[row])
            # nonD(o): tagT == |b_p & b_o| — all common dims equal (this also
            # absorbs incomparable objects, where both sides are zero).
            non_dominated = equal.sum(axis=1) == common.sum(axis=1)
            l_count = int(rim_rows.size - non_dominated.sum())
            stats.comparisons += int(rim_rows.size)
        else:
            l_count = 0
        return g_count + l_count

    def _run(self, k: int, *, tie_break: str, rng, stats: QueryStats) -> tuple[Sequence[int], Sequence[int]]:
        del tie_break, rng  # boundary ties resolved by eviction order (paper: arbitrary)
        candidates = CandidateSet(k)
        n = self.dataset.n

        for position, index in enumerate(self._queue.tolist()):
            if self._enable_h1 and candidates.full and self._maxscore[index] <= candidates.tau:
                stats.pruned_h1 = n - position  # Heuristic 1
                break
            score = self._bit_score(index, candidates, stats)
            if score is None:
                continue  # Heuristic 2 pruned it
            stats.scores_computed += 1
            candidates.offer(index, score)

        items = candidates.items()
        return [idx for idx, _ in items], [score for _, score in items]


def big_tkd(dataset: IncompleteDataset, k: int, *, tie_break: str = "index", rng=None) -> TKDResult:
    """One-shot BIG TKD query (builds the bitmap index first)."""
    return BIGTKD(dataset).query(k, tie_break=tie_break, rng=rng)


def max_bit_scores(dataset: IncompleteDataset, *, index: BitmapIndex | None = None) -> np.ndarray:
    """``MaxBitScore(o) = |Q|`` for every object (paper Heuristic 2, Fig. 8).

    Always ≤ ``MaxScore`` for the exact (unbinned) index — Lemma 3.

    Without an *index* the values come from the blocked broadcast kernel
    (:func:`repro.engine.kernels.max_bit_score_counts`) — no bitmap needed;
    pass an existing index to exercise the packed-AND route instead (both
    are property-tested to agree).
    """
    if index is None:
        from ..engine.kernels import max_bit_score_counts

        return max_bit_score_counts(dataset)
    out = np.empty(dataset.n, dtype=np.int64)
    for row in range(dataset.n):
        q_vec = index.q_intersection(row)
        q_vec.set(row, False)
        out[row] = q_vec.count()
    return out
