"""Execution statistics for TKD queries.

The paper's experimental section reports, beyond CPU time, the *pruning
effectiveness* of its three heuristics (Fig. 18):

* **Heuristic 1** — upper-bound-score pruning: once the priority queue's
  head has ``MaxScore(o) ≤ τ``, the head and every remaining object are
  pruned (early termination).
* **Heuristic 2** — bitmap pruning: an individual object with
  ``MaxBitScore(o) = |Q| ≤ τ`` is skipped before its exact score is formed.
* **Heuristic 3** — partial-score pruning (IBIG only): while verifying the
  same-bin candidates, as soon as ``|nonD(o)| > |Q| − |F(o)| − τ`` the
  object is abandoned.

:class:`QueryStats` carries those counters plus general work/timing
measurements; every algorithm fills in what applies to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueryStats"]


@dataclass
class QueryStats:
    """Counters and timings for one TKD query execution."""

    #: Name of the algorithm that produced these statistics.
    algorithm: str = ""
    #: Dataset cardinality and dimensionality at query time.
    n: int = 0
    d: int = 0
    #: The validated ``k`` of the query.
    k: int = 0

    #: Objects whose exact score was fully computed.
    scores_computed: int = 0
    #: Pairwise object-vs-object comparisons performed by exact scoring.
    comparisons: int = 0
    #: Size of the candidate set ESB produced (|S_C| after Lemma 1 pruning).
    candidates: int = 0

    #: Objects removed by Heuristic 1 (upper-bound-score early termination).
    pruned_h1: int = 0
    #: Objects removed by Heuristic 2 (MaxBitScore bitmap pruning).
    pruned_h2: int = 0
    #: Objects removed by Heuristic 3 (partial-score pruning, IBIG).
    pruned_h3: int = 0

    #: Wall-clock seconds spent in preparation (index/queue construction).
    preprocess_seconds: float = 0.0
    #: Wall-clock seconds spent answering the query itself.
    query_seconds: float = 0.0

    #: Bytes of index storage used by the algorithm (0 when index-free).
    index_bytes: int = 0

    #: Free-form extras (e.g. bin counts, compression ratios).
    extra: dict = field(default_factory=dict)

    @property
    def pruned_total(self) -> int:
        """Objects eliminated without a full score computation."""
        return self.pruned_h1 + self.pruned_h2 + self.pruned_h3

    def summary(self) -> str:
        """One-line human-readable digest."""
        parts = [
            f"{self.algorithm or '?'}: n={self.n} d={self.d} k={self.k}",
            f"scored={self.scores_computed}",
            f"pruned(h1/h2/h3)={self.pruned_h1}/{self.pruned_h2}/{self.pruned_h3}",
        ]
        if self.candidates:
            parts.append(f"candidates={self.candidates}")
        if self.index_bytes:
            parts.append(f"index={self.index_bytes}B")
        parts.append(f"query={self.query_seconds * 1e3:.2f}ms")
        return " ".join(parts)
