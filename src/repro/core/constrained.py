"""Constrained and group-by TKD queries on incomplete data.

The companion paper the running Lemma 1 comes from (Gao et al. [2])
studies *constrained* and *group-by* variants of its skyline queries;
this module lifts both variants to the TKD query, reusing the whole
algorithm registry:

* :func:`constrained_tkd` — answer a TKD query among only the objects
  whose **observed** values satisfy per-dimension range constraints
  (a missing value cannot violate a constraint — the zero-knowledge
  missing-data model has nothing to test). Scores are counted *within*
  the qualifying set: "which affordable listings dominate the most
  affordable listings", not the most listings overall.
* :func:`group_by_tkd` — partition objects on one dimension's raw value
  (missing values form their own group) and answer a per-group TKD query
  on the remaining dimensions.

Both delegate to :func:`repro.core.query.top_k_dominating` over derived
datasets, so every algorithm — paper or extension — supports them.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import InvalidParameterError
from .dataset import IncompleteDataset
from .query import top_k_dominating
from .result import TKDResult

__all__ = ["constrained_tkd", "group_by_tkd"]


def _resolve_dim(dataset: IncompleteDataset, dim) -> int:
    if isinstance(dim, str):
        try:
            return dataset.dim_names.index(dim)
        except ValueError:
            raise InvalidParameterError(
                f"unknown dimension {dim!r}; names: {dataset.dim_names}"
            ) from None
    dim = int(dim)
    if dim < 0 or dim >= dataset.d:
        raise InvalidParameterError(f"dimension {dim} outside [0, {dataset.d})")
    return dim


def _qualifying_rows(dataset: IncompleteDataset, constraints: Mapping) -> np.ndarray:
    from ..skyband.constrained import RangeConstraint

    keep = np.ones(dataset.n, dtype=bool)
    for dim, constraint in constraints.items():
        dim = _resolve_dim(dataset, dim)
        if isinstance(constraint, (tuple, list)):
            constraint = RangeConstraint(*constraint)
        elif not isinstance(constraint, RangeConstraint):
            raise InvalidParameterError(
                f"constraint for dim {dim} must be RangeConstraint or (low, high)"
            )
        observed = dataset.observed[:, dim]
        column = dataset.values[:, dim]
        ok = np.ones(dataset.n, dtype=bool)
        if constraint.low is not None:
            ok &= ~observed | (column >= constraint.low)
        if constraint.high is not None:
            ok &= ~observed | (column <= constraint.high)
        keep &= ok
    return keep


def constrained_tkd(
    dataset: IncompleteDataset,
    k: int,
    constraints: Mapping,
    *,
    algorithm: str = "big",
    tie_break: str = "index",
    rng=None,
    **options,
) -> TKDResult:
    """TKD among the objects satisfying per-dimension range constraints.

    *constraints* maps dimension (index or name) to a
    :class:`~repro.skyband.constrained.RangeConstraint` or ``(low, high)``
    tuple in the dataset's original (user-facing) units, e.g.::

        constrained_tkd(zillow, 5, {"price": (None, 500_000), "bedrooms": (3, None)})

    The result's ``indices`` refer to the **original** dataset's rows.
    Raises when no object qualifies — an empty search region is almost
    always a caller mistake, not an empty answer.
    """
    if not constraints:
        raise InvalidParameterError("constrained_tkd needs at least one constraint")
    rows = np.flatnonzero(_qualifying_rows(dataset, constraints))
    if rows.size == 0:
        raise InvalidParameterError("no object satisfies the given constraints")
    restricted = dataset.subset(rows.tolist(), name=f"{dataset.name or 'dataset'}|constrained")
    result = top_k_dominating(
        restricted, k, algorithm=algorithm, tie_break=tie_break, rng=rng, **options
    )
    # Lift row indices back to the original dataset (ids are preserved).
    result.indices = [int(rows[i]) for i in result.indices]
    return result


def group_by_tkd(
    dataset: IncompleteDataset,
    dim,
    k: int,
    *,
    algorithm: str = "big",
    missing_group: str = "<missing>",
    tie_break: str = "index",
    rng=None,
    **options,
) -> dict:
    """Per-group TKD results, grouping on one dimension's raw value.

    Returns ``{group_key: TKDResult}``. Objects missing the grouping
    dimension collect under *missing_group*. Dominance inside a group is
    judged on the **other** dimensions only (grouping on a value and then
    letting it dominate within the group would double-count it, following
    [2]); each result's ``indices`` refer to the original dataset's rows.
    Objects observing nothing outside the grouping dimension are excluded
    from their group's ranking (they are incomparable to every member
    there); a group consisting only of such objects is omitted.
    """
    dim = _resolve_dim(dataset, dim)
    if dataset.d < 2:
        raise InvalidParameterError("group-by TKD needs >= 2 dimensions")
    other_dims = [j for j in range(dataset.d) if j != dim]

    groups: dict = {}
    for row in range(dataset.n):
        if dataset.observed[row, dim]:
            value = dataset.values[row, dim]
            key = int(value) if float(value).is_integer() else float(value)
        else:
            key = missing_group
        groups.setdefault(key, []).append(row)

    out: dict = {}
    for key, rows in groups.items():
        member_set = dataset.subset(rows, name=f"{dataset.name or 'dataset'}|{key}")
        # Objects with nothing observed outside the grouping dimension
        # cannot participate in other-dims dominance; give them score 0.
        viewable = member_set.observed[:, other_dims].any(axis=1)
        if not viewable.any():
            continue
        projected = member_set.subset(np.flatnonzero(viewable).tolist()).project(
            other_dims, drop_all_missing=False
        )
        result = top_k_dominating(
            projected, min(k, projected.n), algorithm=algorithm,
            tie_break=tie_break, rng=rng, **options,
        )
        # Lift indices: projection preserves ids, so map through them.
        original_by_id = {dataset.ids[row]: row for row in rows}
        result.indices = [original_by_id[object_id] for object_id in result.ids]
        out[key] = result
    return out
