"""Answer verification: certify a TKD result against its dataset.

A downstream system trusting a pruning algorithm wants a cheap,
independent certificate. :func:`verify_result` re-derives everything the
exhaustive oracle would say about a returned answer:

1. every claimed score is re-computed exactly (``O(k·n·d)``),
2. the returned score multiset equals the true top-k multiset
   (``O(n²·d)`` unless ``full=False``),
3. structural sanity: k objects, unique, valid indices, ids aligned.

Used by the test-suite, the benches' assertions, and available to users
who want belt-and-braces checking of a production answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..errors import InvalidParameterError
from .dataset import IncompleteDataset
from .result import TKDResult
from .score import score_all, score_many

__all__ = ["VerificationReport", "verify_result"]


@dataclass
class VerificationReport:
    """Outcome of verifying one answer."""

    ok: bool
    #: Human-readable failure descriptions (empty when ok).
    problems: list[str] = field(default_factory=list)
    #: True scores of the returned objects (claim order).
    recomputed_scores: list[int] = field(default_factory=list)
    #: The exhaustive top-k score multiset (only when full=True).
    expected_multiset: tuple | None = None

    def raise_if_failed(self) -> None:
        """Raise ``InvalidParameterError`` describing the first problem."""
        if not self.ok:
            raise InvalidParameterError(f"answer verification failed: {self.problems[0]}")


def verify_result(
    dataset: IncompleteDataset,
    result: TKDResult,
    *,
    full: bool = True,
) -> VerificationReport:
    """Independently verify a :class:`TKDResult` against *dataset*.

    With ``full=True`` (default) the exhaustive score vector is computed
    and the top-k multiset compared; with ``full=False`` only the returned
    objects' claims are re-checked (linear in ``k·n``).
    """
    problems: list[str] = []
    n = dataset.n

    indices = list(result.indices)
    if len(indices) != len(set(indices)):
        problems.append("returned objects are not unique")
    for index in indices:
        if not (0 <= index < n):
            problems.append(f"index {index} outside dataset of {n} objects")
    if len(indices) != min(result.k, n):
        problems.append(
            f"returned {len(indices)} objects for k={result.k} over n={n}"
        )
    if [dataset.ids[i] for i in indices if 0 <= i < n] != [
        result.ids[pos] for pos, i in enumerate(indices) if 0 <= i < n
    ]:
        problems.append("ids are not aligned with indices")

    valid = [i for i in indices if 0 <= i < n]
    recomputed = score_many(dataset, valid).tolist() if valid else []
    for position, (index, claimed) in enumerate(zip(indices, result.scores)):
        if index in valid:
            actual = recomputed[valid.index(index)]
            if actual != claimed:
                problems.append(
                    f"object {dataset.ids[index]} claims score {claimed}, actual {actual}"
                )
    if sorted(result.scores, reverse=True) != list(result.scores):
        problems.append("scores are not in descending order")

    expected_multiset = None
    if full and not problems:
        all_scores = score_all(dataset)
        expected_multiset = tuple(
            sorted(all_scores.tolist(), reverse=True)[: len(indices)]
        )
        if tuple(sorted(result.scores, reverse=True)) != expected_multiset:
            problems.append(
                f"score multiset {tuple(sorted(result.scores, reverse=True))} "
                f"!= exhaustive top-k {expected_multiset}"
            )

    return VerificationReport(
        ok=not problems,
        problems=problems,
        recomputed_scores=[int(s) for s in recomputed],
        expected_multiset=expected_multiset,
    )
