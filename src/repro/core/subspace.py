"""Subspace TKD queries on incomplete data.

The related work the paper builds on includes *subspace dominating
queries* (Tiakas et al.): rank objects by dominance inside a chosen
subset of dimensions. On incomplete data this composes naturally with the
projection machinery — an object participates in a subspace query iff it
observes at least one of the chosen dimensions — and any of the five
algorithms answers the projected query.

Objects keep their original ids, so subspace answers can be compared
across subspaces (e.g. "is the full-space winner still on top when only
price and living area matter?").
"""

from __future__ import annotations

from typing import Sequence

from ..errors import InvalidParameterError
from .dataset import IncompleteDataset
from .query import top_k_dominating
from .result import TKDResult

__all__ = ["subspace_tkd"]


def subspace_tkd(
    dataset: IncompleteDataset,
    dims: Sequence[int | str],
    k: int,
    *,
    algorithm: str = "big",
    tie_break: str = "index",
    rng=None,
    **options,
) -> TKDResult:
    """Answer a TKD query restricted to a subspace of dimensions.

    *dims* may mix dimension indices and dimension names. Objects with no
    observed value inside the subspace are excluded (they are neither
    comparable to anything nor meaningful to rank there); the returned
    result's ids refer to the original dataset.
    """
    if not dims:
        raise InvalidParameterError("subspace needs at least one dimension")
    resolved: list[int] = []
    for dim in dims:
        if isinstance(dim, str):
            try:
                resolved.append(dataset.dim_names.index(dim))
            except ValueError:
                raise InvalidParameterError(
                    f"unknown dimension {dim!r}; names: {dataset.dim_names}"
                ) from None
        else:
            resolved.append(int(dim))
    if len(set(resolved)) != len(resolved):
        raise InvalidParameterError(f"duplicate dimensions in subspace: {dims}")

    projected = dataset.project(resolved)
    return top_k_dominating(
        projected, k, algorithm=algorithm, tie_break=tie_break, rng=rng, **options
    )
