"""The MFD (missing-flexible dominance) weighted operator (paper Section 3).

The paper sketches MFD as a fairness refinement — and names generalising
its algorithms to MFD as future work; this module implements that
generalisation in its direct form.

For two objects with ``o ≻ o'`` under Definition 1, MFD attaches a weight

    W(o, o') = Σ_{i ∈ D1} w_i  +  λ · Σ_{j ∈ D2} w_j

where ``D1`` holds the dimensions observed in *both* objects, ``D2`` those
observed in exactly one, and dimensions missing in both are ignored. The
MFD score of ``o`` is the sum of ``W(o, o')`` over everything it
dominates, so dominance asserted on many (heavily weighted) dimensions
counts for more than dominance established on a thin overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import require_fraction
from ..errors import InvalidParameterError
from .dataset import IncompleteDataset
from .result import select_top_k, validate_k

__all__ = [
    "mfd_weight",
    "mfd_scores",
    "mfd_max_scores",
    "MFDResult",
    "top_k_dominating_mfd",
]


def _coerce_weights(weights, d: int) -> np.ndarray:
    if weights is None:
        return np.full(d, 1.0 / d)
    arr = np.asarray(weights, dtype=np.float64)
    if arr.shape != (d,):
        raise InvalidParameterError(f"expected {d} weights, got shape {arr.shape}")
    if (arr < 0).any():
        raise InvalidParameterError("MFD weights must be non-negative")
    return arr


def mfd_weight(
    dataset: IncompleteDataset,
    i: int,
    j: int,
    *,
    weights=None,
    lam: float = 0.5,
) -> float:
    """``W(o_i, o_j)`` — the MFD recognition weight of the pair.

    Defined regardless of whether ``o_i ≻ o_j`` holds; scoring only sums it
    over dominated objects.
    """
    weights = _coerce_weights(weights, dataset.d)
    lam = require_fraction(lam, "lam", inclusive_low=False, inclusive_high=False)
    both = dataset.observed[i] & dataset.observed[j]
    one = dataset.observed[i] ^ dataset.observed[j]
    return float(weights[both].sum() + lam * weights[one].sum())


def mfd_scores(
    dataset: IncompleteDataset,
    *,
    weights=None,
    lam: float = 0.5,
    block: int | None = None,
) -> np.ndarray:
    """MFD score of every object: ``Σ_{o' : o ≻ o'} W(o, o')``.

    Blocked and fully vectorised: dominated-masks come from
    :func:`repro.engine.kernels.dominated_masks` a block at a time — the
    packed-bitset tables when the engine session has them cached (or the
    full scan justifies building them), the broadcast kernel otherwise —
    and the pairwise weights are assembled without materialising per-pair
    masks via

        ``W(o, p) = λ·(a_o + a_p) + (1 − 2λ)·b_op``

    where ``a_o = Σ_i w_i·[i ∈ Iset(o)]`` and ``b_op`` weights the shared
    observed dimensions (one matmul per block).
    """
    from ..engine.kernels import auto_block, dominated_masks, prepared_for_scan

    weights = _coerce_weights(weights, dataset.d)
    lam = require_fraction(lam, "lam", inclusive_low=False, inclusive_high=False)
    observed = dataset.observed
    n = dataset.n
    if block is None:
        block = auto_block(n, dataset.d)
    # One eligibility decision for the whole scan: the per-block batches
    # below are too small to trigger a table build on their own.
    prepared = prepared_for_scan(dataset)

    observed_weight = observed @ weights  # a_o per object, (n,)
    weighted_masks = observed * weights  # (n, d)
    out = np.zeros(n, dtype=np.float64)
    for start in range(0, n, block):
        rows = np.arange(start, min(start + block, n), dtype=np.intp)
        dominated = dominated_masks(dataset, rows, prepared=prepared)  # (b, n)
        shared_weight = weighted_masks[rows] @ observed.T  # b_op, (b, n)
        pair_weights = lam * (
            observed_weight[rows][:, None] + observed_weight[None, :]
        ) + (1.0 - 2.0 * lam) * shared_weight
        out[rows] = (dominated * pair_weights).sum(axis=1)
    return out


def _mfd_score_one(
    dataset: IncompleteDataset, row: int, weights: np.ndarray, lam: float, prepared=None
) -> float:
    """Exact MFD score of a single object (one vectorised pass).

    With cached bitset tables (*prepared*) the dominated-mask costs
    ``2·d`` packed row gathers instead of an ``O(n·d)`` broadcast — the
    fast path of the UBB-style candidate loop below.
    """
    from ..engine.kernels import dominated_masks

    dominated = dominated_masks(dataset, [row], prepared=prepared)[0]
    if not dominated.any():
        return 0.0
    observed = dataset.observed
    both = observed[dominated] & observed[row]
    one = observed[dominated] ^ observed[row]
    return float((both @ weights + lam * (one @ weights)).sum())


def mfd_max_scores(
    dataset: IncompleteDataset,
    *,
    weights=None,
    lam: float = 0.5,
) -> np.ndarray:
    """Upper bound on each object's MFD score (the Lemma 2 generalisation).

    For any dominated ``p``: dimensions in ``Iset(o)`` contribute at most
    ``w_i`` (full credit when ``p`` also observes them, ``λ·w_i``
    otherwise), and dimensions outside ``Iset(o)`` at most ``λ·w_i`` —
    so ``W(o, p) ≤ Wmax(o)`` and ``mfd_score(o) ≤ MaxScore(o) · Wmax(o)``.
    This is the bound that lets the paper's "easily generalized" UBB-style
    evaluation carry over to MFD (and it is property-tested).
    """
    from .maxscore import max_scores

    weights = _coerce_weights(weights, dataset.d)
    lam = require_fraction(lam, "lam", inclusive_low=False, inclusive_high=False)
    observed = dataset.observed
    w_max = observed @ weights + lam * ((~observed) @ weights)
    return max_scores(dataset) * w_max


@dataclass
class MFDResult:
    """Answer of an MFD-weighted TKD query (scores are real-valued)."""

    indices: list[int]
    scores: list[float]
    ids: list[str]
    k: int
    lam: float
    #: Objects whose exact MFD score was evaluated (n for method="naive").
    evaluated: int = 0

    @property
    def id_set(self) -> frozenset:
        """Returned labels as a set."""
        return frozenset(self.ids)

    @property
    def score_multiset(self) -> tuple[float, ...]:
        """Scores sorted descending (the tie-break-independent invariant)."""
        return tuple(sorted((round(s, 9) for s in self.scores), reverse=True))


def top_k_dominating_mfd(
    dataset: IncompleteDataset,
    k: int,
    *,
    weights=None,
    lam: float = 0.5,
    method: str = "ubb",
    tie_break: str = "index",
    rng=None,
) -> MFDResult:
    """TKD query under the MFD operator (paper's future-work extension).

    ``method="naive"`` scores everything; ``method="ubb"`` (default)
    generalises the paper's UBB: objects are visited in descending
    ``MaxScore(o) · Wmax(o)`` order and evaluation stops as soon as the
    bound drops to the current k-th best weighted score.
    """
    k = validate_k(k, dataset.n)
    weights_arr = _coerce_weights(weights, dataset.d)
    lam = require_fraction(lam, "lam", inclusive_low=False, inclusive_high=False)

    if method not in ("naive", "ubb"):
        raise InvalidParameterError(f"method must be 'naive' or 'ubb', got {method!r}")

    if method == "naive":
        scores = mfd_scores(dataset, weights=weights_arr, lam=lam)
        selection = select_top_k(scores, k, tie_break=tie_break, rng=rng)
        evaluated = dataset.n
        chosen_scores = [float(scores[i]) for i in selection]
    else:
        from ..engine.kernels import prepared_for_scan

        bounds = mfd_max_scores(dataset, weights=weights_arr, lam=lam)
        order = np.argsort(-bounds, kind="stable")
        # The candidate loop scores objects one at a time. Ride bitset
        # tables that are already cached, but don't build them upfront —
        # Heuristic 1 may prune the loop to ~k evaluations, where the
        # O(d·n²/64) build would dominate. If evaluation count proves the
        # bounds loose, build once and let the tail of the loop fly.
        prepared = prepared_for_scan(dataset, batch=1)
        kept: list[tuple[int, float]] = []
        tau = -1.0
        evaluated = 0
        for index in order.tolist():
            if len(kept) == k and bounds[index] <= tau:
                break  # Heuristic 1, weighted form
            if evaluated == 256 and prepared is not None:
                prepared.warm()  # loose bounds: the scan now justifies tables
            score = _mfd_score_one(dataset, index, weights_arr, lam, prepared=prepared)
            evaluated += 1
            if len(kept) < k:
                kept.append((index, score))
            elif score > tau:
                kept.remove(min(kept, key=lambda item: (item[1], -item[0])))
                kept.append((index, score))
            if len(kept) == k:
                tau = min(score for _, score in kept)
        kept.sort(key=lambda item: (-item[1], item[0]))
        selection = [index for index, _ in kept]
        chosen_scores = [float(score) for _, score in kept]

    return MFDResult(
        indices=list(selection),
        scores=chosen_scores,
        ids=[dataset.ids[i] for i in selection],
        k=k,
        lam=float(lam),
        evaluated=evaluated,
    )
