"""UBB — the Upper Bound Based algorithm (paper Section 4.2, Alg. 2).

UBB folds ranking into evaluation: objects are visited in descending
``MaxScore`` order (the precomputed priority queue ``F``); each visited
object's exact score is obtained by pairwise comparison (``Get-Score``) and
a k-slot candidate set with threshold ``τ`` is maintained. **Heuristic 1**
terminates the scan the moment the queue head satisfies
``MaxScore(o) ≤ τ`` — every unvisited object is then provably outside the
answer, because queue order bounds all remaining scores by ``τ``.

With ``block=`` set, exact scores are precomputed for whole queue chunks
through the :func:`repro.engine.kernels.score_block` broadcast instead of
one ``Get-Score`` call per object. Scoring has no side effects, so the
visit order, Heuristic 1 decisions, answers *and statistics* are
bit-identical to the per-object walk — at most ``block − 1`` scores past
the termination point are computed speculatively and discarded.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import TKDAlgorithm
from .dataset import IncompleteDataset
from .maxscore import max_scores, maxscore_queue
from .result import CandidateSet, TKDResult
from .score import score_one
from .stats import QueryStats

__all__ = ["UBBTKD", "ubb_tkd"]


class UBBTKD(TKDAlgorithm):
    """Upper bound based TKD over incomplete data."""

    name = "ubb"

    def __init__(
        self,
        dataset: IncompleteDataset,
        *,
        enable_h1: bool = True,
        block: int | None = None,
    ) -> None:
        super().__init__(dataset)
        #: Ablation switch: with Heuristic 1 off, the whole queue is scored
        #: (the candidate-set maintenance still yields the exact answer).
        self._enable_h1 = bool(enable_h1)
        #: When set, exact scores come from blocked kernel sweeps over queue
        #: chunks of this size (identical answers and statistics).
        self._block = None if block is None else int(block)
        self._maxscore: np.ndarray | None = None
        self._queue: np.ndarray | None = None

    def _prepare(self) -> None:
        self._maxscore = max_scores(self.dataset)
        self._queue = maxscore_queue(self.dataset, self._maxscore)

    @property
    def maxscores(self) -> np.ndarray:
        """Per-object ``MaxScore`` bounds (Lemma 2)."""
        self.prepare()
        return self._maxscore

    @property
    def queue(self) -> np.ndarray:
        """The priority queue ``F`` (indices by descending ``MaxScore``)."""
        self.prepare()
        return self._queue

    def _run(self, k: int, *, tie_break: str, rng, stats: QueryStats) -> tuple[Sequence[int], Sequence[int]]:
        del tie_break, rng  # boundary ties are resolved by eviction order (paper: arbitrary)
        dataset = self.dataset
        candidates = CandidateSet(k)
        n = dataset.n

        if self._block is not None:
            self._run_blocked(candidates, stats)
        else:
            for position, index in enumerate(self._queue.tolist()):
                if self._enable_h1 and candidates.full and self._maxscore[index] <= candidates.tau:
                    stats.pruned_h1 = n - position  # Heuristic 1: head + everything behind it
                    break
                score = score_one(dataset, index)
                stats.scores_computed += 1
                candidates.offer(index, score)
        stats.comparisons = self._pairwise_cost(stats.scores_computed, n)

        items = candidates.items()
        return [idx for idx, _ in items], [score for _, score in items]

    def _run_blocked(self, candidates: CandidateSet, stats: QueryStats) -> None:
        """Chunked queue walk: one kernel sweep per chunk, same semantics.

        The Heuristic 1 check still runs per object *before* its score is
        consumed; precomputed scores behind a termination point are simply
        dropped (speculative work, never visible in results or counters).
        """
        from ..engine.kernels import dominated_counts

        n = self.dataset.n
        for start in range(0, n, self._block):
            chunk = self._queue[start : start + self._block]
            chunk_scores = dominated_counts(self.dataset, chunk, block=chunk.size)
            for offset, index in enumerate(chunk.tolist()):
                if self._enable_h1 and candidates.full and self._maxscore[index] <= candidates.tau:
                    stats.pruned_h1 = n - (start + offset)  # Heuristic 1
                    return
                stats.scores_computed += 1
                candidates.offer(index, int(chunk_scores[offset]))


def ubb_tkd(dataset: IncompleteDataset, k: int, *, tie_break: str = "index", rng=None) -> TKDResult:
    """One-shot UBB TKD query."""
    return UBBTKD(dataset).query(k, tie_break=tie_break, rng=rng)
