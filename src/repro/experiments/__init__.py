"""Experiment harness regenerating every figure/table of the paper."""

from .harness import PAPER, DatasetCache, PaperDefaults, env_scale, time_algorithm
from .figures import EXPERIMENTS, run_experiment

__all__ = [
    "PAPER",
    "PaperDefaults",
    "DatasetCache",
    "env_scale",
    "time_algorithm",
    "EXPERIMENTS",
    "run_experiment",
]
