"""One entry point per paper figure/table (the per-experiment index).

Every public function regenerates one experiment of the paper's Section 5
and returns its rows; the CLI prints paper-style series::

    python -m repro.experiments.figures --experiment fig12
    python -m repro.experiments.figures --experiment all --scale 0.1

Absolute times differ from the paper (Python vs the authors' testbed);
the reproduced targets are the *shapes*: algorithm ordering, growth
directions, crossovers, and pruning behaviour. EXPERIMENTS.md records
measured-vs-paper for each entry.
"""

from __future__ import annotations

import argparse
import time

from ..bitmap.binned import BinnedBitmapIndex
from ..bitmap.compression import compress_index
from ..bitmap.index import BitmapIndex
from ..core.complete import complete_tkd
from ..core.ibig import IBIGTKD
from ..core.maxscore import max_scores, maxscore_queue
from ..core.query import top_k_dominating
from ..engine.session import QueryEngine
from ..imputation.factorization import FactorizationImputer
from ..skyband.buckets import BucketIndex
from .harness import PAPER, DatasetCache, time_algorithm
from .reporting import format_series, print_rows, rows_to_csv

__all__ = [
    "fig10_compression",
    "fig11_bins",
    "table3_preprocessing",
    "fig12_real_k",
    "table4_jaccard",
    "fig13_synthetic_k",
    "fig14_cardinality",
    "fig15_dimensionality",
    "fig16_missing_rate",
    "fig17_dim_cardinality",
    "fig18_heuristics",
    "EXPERIMENTS",
    "run_experiment",
    "main",
]

REAL_DATASETS = ("movielens", "nba", "zillow")
SYNTHETIC_DATASETS = ("ind", "ac")
ALL_DATASETS = REAL_DATASETS + SYNTHETIC_DATASETS
PRUNING_ALGORITHMS = ("esb", "ubb", "big", "ibig")


def _ibig_options(name: str) -> dict:
    """The paper's per-dataset IBIG bin configuration (Section 5.1)."""
    return {"bins": PAPER.ibig_bins.get(name, 32)}


def _query_rows(
    cache: DatasetCache, dataset_name: str, algorithms, k: int, *, engine=None, **dataset_kw
) -> list[dict]:
    dataset = cache.get(dataset_name, **dataset_kw)
    rows = []
    for algorithm in algorithms:
        options = _ibig_options(dataset_name) if algorithm == "ibig" else {}
        row = time_algorithm(dataset, algorithm, k, engine=engine, **options)
        row["dataset"] = dataset_name
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 10 — WAH vs CONCISE on the real datasets
# ---------------------------------------------------------------------------

def fig10_compression(scale: float | None = None, seed: int = 0) -> list[dict]:
    """CPU time and compression ratio of WAH vs CONCISE (paper Fig. 10)."""
    cache = DatasetCache(scale, seed)
    rows = []
    for name in REAL_DATASETS:
        dataset = cache.get(name)
        index = BitmapIndex(dataset)
        for scheme in ("wah", "concise"):
            report = compress_index(index, scheme)
            rows.append(
                {
                    "dataset": name,
                    "scheme": scheme,
                    "cpu_s": report.seconds,
                    "ratio": report.ratio,
                    "original_bytes": report.original_bytes,
                    "compressed_bytes": report.compressed_bytes,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 11 — BIG vs IBIG across bin counts ξ
# ---------------------------------------------------------------------------

def fig11_bins(
    scale: float | None = None,
    seed: int = 0,
    k: int | None = None,
    bin_counts=(2, 4, 8, 16, 32, 64),
) -> list[dict]:
    """TKD cost and index size vs the number of bins (paper Fig. 11)."""
    k = PAPER.default_k if k is None else k
    cache = DatasetCache(scale, seed)
    rows = []
    for name in ALL_DATASETS:
        dataset = cache.get(name)
        big_row = time_algorithm(dataset, "big", k)
        rows.append({"dataset": name, "algorithm": "big", "bins": "C+1", **_strip(big_row)})
        for xi in bin_counts:
            ibig_row = time_algorithm(dataset, "ibig", k, bins=xi)
            rows.append({"dataset": name, "algorithm": "ibig", "bins": xi, **_strip(ibig_row)})
    return rows


def _strip(row: dict) -> dict:
    return {
        "k": row["k"],
        "n": row["n"],
        "query_s": row["query_s"],
        "preprocess_s": row["preprocess_s"],
        "index_bytes": row["index_bytes"],
    }


# ---------------------------------------------------------------------------
# Table 3 — preprocessing time of the three structures
# ---------------------------------------------------------------------------

def table3_preprocessing(scale: float | None = None, seed: int = 0) -> list[dict]:
    """MaxScore+F, bitmap-index, and binned-index build times (Table 3)."""
    cache = DatasetCache(scale, seed)
    rows = []
    for name in ALL_DATASETS:
        dataset = cache.get(name)

        start = time.perf_counter()
        scores = max_scores(dataset)
        maxscore_queue(dataset, scores)
        BucketIndex(dataset)
        maxscore_seconds = time.perf_counter() - start

        start = time.perf_counter()
        BitmapIndex(dataset)
        bitmap_seconds = time.perf_counter() - start

        start = time.perf_counter()
        BinnedBitmapIndex(dataset, PAPER.ibig_bins.get(name, 32))
        binned_seconds = time.perf_counter() - start

        rows.append(
            {
                "dataset": name,
                "n": dataset.n,
                "d": dataset.d,
                "maxscore_s": maxscore_seconds,
                "bitmap_s": bitmap_seconds,
                "binned_s": binned_seconds,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 12 / Fig. 13 — CPU time vs k
# ---------------------------------------------------------------------------

def fig12_real_k(
    scale: float | None = None,
    seed: int = 0,
    ks=PAPER.k_values,
    include_naive: bool = True,
) -> list[dict]:
    """CPU time vs k on the real datasets, Naive included (paper Fig. 12)."""
    algorithms = (("naive",) if include_naive else ()) + PRUNING_ALGORITHMS
    cache = DatasetCache(scale, seed)
    # One engine for the whole sweep: each (dataset, algorithm) pair builds
    # its indexes/queues once and every k in the ladder reuses them.
    engine = QueryEngine(max_prepared=len(REAL_DATASETS) * (len(algorithms) + 1))
    rows = []
    for name in REAL_DATASETS:
        for k in ks:
            rows.extend(_query_rows(cache, name, algorithms, k, engine=engine))
    return rows


def fig13_synthetic_k(scale: float | None = None, seed: int = 0, ks=PAPER.k_values) -> list[dict]:
    """CPU time vs k on IND/AC (paper Fig. 13; Naive dropped as in paper)."""
    cache = DatasetCache(scale, seed)
    engine = QueryEngine(max_prepared=len(SYNTHETIC_DATASETS) * (len(PRUNING_ALGORITHMS) + 1))
    rows = []
    for name in SYNTHETIC_DATASETS:
        for k in ks:
            rows.extend(_query_rows(cache, name, PRUNING_ALGORITHMS, k, engine=engine))
    return rows


# ---------------------------------------------------------------------------
# Table 4 — incomplete-data answer vs imputation-based answer
# ---------------------------------------------------------------------------

def table4_jaccard(scale: float | None = None, seed: int = 0, ks=(4, 16, 32, 64)) -> list[dict]:
    """Jaccard distance between the two answer philosophies (Table 4).

    Incomplete-data TKD (this paper) vs TKD over data completed with an
    8-factor L2-regularised factorization model (≤ 50 iterations) — the
    GraphLab Create configuration the paper used, reimplemented in
    :mod:`repro.imputation.factorization`.
    """
    cache = DatasetCache(scale, seed)
    dataset = cache.get("nba")
    imputer = FactorizationImputer(n_factors=8, l2=0.1, max_iter=50, seed=seed)
    completed = imputer.impute_dataset(dataset)
    rows = []
    for k in ks:
        incomplete_answer = top_k_dominating(dataset, k, algorithm="big")
        complete_answer = complete_tkd(completed, k, ids=dataset.ids)
        a, b = incomplete_answer.id_set, set(complete_answer.ids)
        union = a | b
        jaccard = 1.0 - len(a & set(b)) / len(union) if union else 0.0
        rows.append(
            {
                "dataset": "nba",
                "k": k,
                "jaccard_distance": jaccard,
                "shared": len(a & b),
                "threshold_2_3": 2.0 / 3.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figs. 14–17 — synthetic parameter sweeps
# ---------------------------------------------------------------------------

def fig14_cardinality(scale: float | None = None, seed: int = 0, ns=PAPER.n_values) -> list[dict]:
    """CPU time vs dataset cardinality N (paper Fig. 14)."""
    cache = DatasetCache(scale, seed)
    rows = []
    for name in SYNTHETIC_DATASETS:
        for paper_n in ns:
            n = max(500, int(round(paper_n * cache.scale)))
            for row in _query_rows(cache, name, PRUNING_ALGORITHMS, PAPER.default_k, n=n):
                row["paper_n"] = paper_n
                rows.append(row)
    return rows


def fig15_dimensionality(scale: float | None = None, seed: int = 0, dims=PAPER.dim_values) -> list[dict]:
    """CPU time vs dimensionality (paper Fig. 15)."""
    cache = DatasetCache(scale, seed)
    rows = []
    for name in SYNTHETIC_DATASETS:
        for dim in dims:
            rows.extend(_query_rows(cache, name, PRUNING_ALGORITHMS, PAPER.default_k, dim=dim))
    return rows


def fig16_missing_rate(scale: float | None = None, seed: int = 0, rates=PAPER.missing_rates) -> list[dict]:
    """CPU time vs missing rate σ (paper Fig. 16) — cost *drops* with σ."""
    cache = DatasetCache(scale, seed)
    rows = []
    for name in SYNTHETIC_DATASETS:
        for rate in rates:
            for row in _query_rows(
                cache, name, PRUNING_ALGORITHMS, PAPER.default_k, missing_rate=rate
            ):
                row["missing_rate"] = rate
                rows.append(row)
    return rows


def fig17_dim_cardinality(scale: float | None = None, seed: int = 0, cs=PAPER.cardinalities) -> list[dict]:
    """CPU time vs per-dimension cardinality c (paper Fig. 17; near-flat)."""
    cache = DatasetCache(scale, seed)
    rows = []
    for name in SYNTHETIC_DATASETS:
        for cardinality in cs:
            for row in _query_rows(
                cache, name, PRUNING_ALGORITHMS, PAPER.default_k, cardinality=cardinality
            ):
                row["cardinality"] = cardinality
                rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 18 — pruning heuristic effectiveness
# ---------------------------------------------------------------------------

def fig18_heuristics(scale: float | None = None, seed: int = 0, ks=PAPER.k_values) -> list[dict]:
    """Objects pruned by Heuristics 1/2/3 under IBIG (paper Fig. 18).

    As in the paper the three counters are exclusive: an object pruned by
    Heuristic 1 is not re-counted by 2 or 3, and so on.
    """
    cache = DatasetCache(scale, seed)
    rows = []
    for name in ALL_DATASETS:
        dataset = cache.get(name)
        algorithm = IBIGTKD(dataset, **_ibig_options(name))
        algorithm.prepare()
        for k in ks:
            stats = algorithm.query(k).stats
            rows.append(
                {
                    "dataset": name,
                    "k": k,
                    "n": dataset.n,
                    "pruned_h1": stats.pruned_h1,
                    "pruned_h2": stats.pruned_h2,
                    "pruned_h3": stats.pruned_h3,
                    "scored": stats.scores_computed,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Registry + CLI
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "fig10": (fig10_compression, dict(x="dataset", series="scheme", y="ratio")),
    "fig11": (fig11_bins, dict(x="bins", series="dataset", y="query_s")),
    "table3": (table3_preprocessing, dict(x="dataset", series="n", y="bitmap_s")),
    "fig12": (fig12_real_k, dict(x="k", series="algorithm", y="query_s")),
    "table4": (table4_jaccard, dict(x="k", series="dataset", y="jaccard_distance")),
    "fig13": (fig13_synthetic_k, dict(x="k", series="algorithm", y="query_s")),
    "fig14": (fig14_cardinality, dict(x="n", series="algorithm", y="query_s")),
    "fig15": (fig15_dimensionality, dict(x="d", series="algorithm", y="query_s")),
    "fig16": (fig16_missing_rate, dict(x="missing_rate", series="algorithm", y="query_s")),
    "fig17": (fig17_dim_cardinality, dict(x="cardinality", series="algorithm", y="query_s")),
    "fig18": (fig18_heuristics, dict(x="k", series="dataset", y="pruned_h3")),
}


def _all_experiments() -> dict:
    """Paper experiments plus the EXT-* extensions (lazy import)."""
    from .extensions import EXTENSION_EXPERIMENTS

    return {**EXPERIMENTS, **EXTENSION_EXPERIMENTS}


def run_experiment(name: str, *, scale: float | None = None, seed: int = 0, csv_path=None) -> list[dict]:
    """Run one experiment by id, print its table + series, return rows."""
    function, series_spec = _all_experiments()[name]
    rows = function(scale=scale, seed=seed)
    print_rows(rows, title=f"{name} ({function.__doc__.strip().splitlines()[0]})")
    try:
        print(format_series(rows, **series_spec))
    except KeyError:
        pass
    if csv_path:
        rows_to_csv(rows, csv_path)
    return rows


def main(argv=None) -> int:
    """CLI: regenerate any paper experiment."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--experiment",
        default="all",
        choices=["all", "ext-all", *_all_experiments()],
        help="which paper figure/table (or EXT-* extension) to regenerate; "
        "'all' = every paper experiment, 'ext-all' = every extension",
    )
    parser.add_argument("--scale", type=float, default=None, help="fraction of paper-scale N")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--csv", default=None, help="also write rows to this CSV path")
    args = parser.parse_args(argv)

    if args.experiment == "all":
        names = list(EXPERIMENTS)
    elif args.experiment == "ext-all":
        names = [name for name in _all_experiments() if name.startswith("ext-")]
    else:
        names = [args.experiment]
    for name in names:
        run_experiment(name, scale=args.scale, seed=args.seed, csv_path=args.csv)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
