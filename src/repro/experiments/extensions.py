"""Regenerators for the extension experiments (EXPERIMENTS.md "EXT-*").

These quantify the design choices the paper makes implicitly — which
incomplete-data index family, which codec, which imputer — and its
future-work directions (massive data, answer quality). Each function
mirrors the :mod:`repro.experiments.figures` contract: keyword ``scale``
and ``seed``, rows of plain dicts back. They are registered in the same
CLI::

    python -m repro.experiments.figures --experiment ext-idx
"""

from __future__ import annotations

import time

import numpy as np

from ..analysis.stability import missingness_sensitivity, perturbation_stability
from ..bitmap.compression import compress_index
from ..bitmap.index import BitmapIndex
from ..core.complete import complete_tkd
from ..core.partitioned import PartitionedTKD
from ..core.query import top_k_dominating
from ..core.score import score_all
from ..imputation import EMImputer, FactorizationImputer, KNNImputer, SimpleImputer
from ..indexes import INDEX_BACKENDS
from ..rtree import ARTree, counting_guided_tkd, skyline_based_tkd
from .harness import PAPER, DatasetCache, time_algorithm

__all__ = [
    "ext_indexes",
    "ext_sigma0",
    "ext_imputers",
    "ext_roaring",
    "ext_partitioned",
    "ext_stability",
    "ext_stream",
    "EXTENSION_EXPERIMENTS",
]


def ext_indexes(scale: float | None = None, seed: int = 0, k: int | None = None) -> list[dict]:
    """Bitmap vs MOSAIC/BR-tree/quantization: build, storage, bounds, query."""
    k = PAPER.default_k if k is None else k
    cache = DatasetCache(scale, seed)
    dataset = cache.get("ind")
    oracle = score_all(dataset)
    sample = range(0, dataset.n, max(1, dataset.n // 100))

    rows = [dict(time_algorithm(dataset, "big", k), backend="bitmap(big)", bound_slack=None)]
    for backend, cls in INDEX_BACKENDS.items():
        index = cls(dataset).build()
        slack = float(
            np.mean([index.upper_bound_score(row) - int(oracle[row]) for row in sample])
        )
        row = time_algorithm(dataset, backend, k)
        row["backend"] = backend
        row["build_s"] = index.build_seconds
        row["bound_slack"] = slack
        rows.append(row)
    for row in rows:
        row.pop("stats", None), row.pop("result", None)
    return rows


def ext_sigma0(scale: float | None = None, seed: int = 0, k: int | None = None) -> list[dict]:
    """σ = 0: the paper's algorithms vs the classic aR-tree baselines."""
    k = PAPER.default_k if k is None else k
    cache = DatasetCache(scale, seed)
    complete = cache.get("ind", missing_rate=0.0)
    values = complete.minimized

    rows = []
    for algorithm in ("ubb", "big", "ibig"):
        row = time_algorithm(complete, algorithm, k)
        row.pop("stats", None), row.pop("result", None)
        row["method"] = algorithm
        rows.append(row)

    tree = ARTree(values)
    for method, run in (("counting", counting_guided_tkd), ("skyline", skyline_based_tkd)):
        start = time.perf_counter()
        _, scores = run(values, k, tree=tree)
        rows.append(
            {
                "dataset": complete.name or "ind",
                "method": f"artree-{method}",
                "k": k,
                "n": complete.n,
                "query_s": time.perf_counter() - start,
                "top_score": scores[0],
            }
        )
    return rows


def ext_imputers(scale: float | None = None, seed: int = 0, k: int = 16) -> list[dict]:
    """Table 4 across imputers: fit cost + answer distance (NBA-like)."""
    cache = DatasetCache(scale, seed)
    dataset = cache.get("nba")
    incomplete = top_k_dominating(dataset, k, algorithm="big")

    imputers = {
        "factorization": FactorizationImputer(n_factors=8, max_iter=50, seed=seed),
        "em": EMImputer(max_iter=50),
        "knn": KNNImputer(n_neighbors=5),
        "mean": SimpleImputer("mean"),
    }
    rows = []
    for name, imputer in imputers.items():
        start = time.perf_counter()
        completed = imputer.impute_dataset(dataset)
        fit_s = time.perf_counter() - start
        answer = complete_tkd(completed, k, ids=dataset.ids)
        a, b = incomplete.id_set, set(answer.ids)
        rows.append(
            {
                "dataset": "nba",
                "imputer": name,
                "k": k,
                "fit_s": fit_s,
                "jaccard_distance": 1.0 - len(a & b) / len(a | b),
                "shared": len(a & b),
            }
        )
    return rows


def ext_roaring(scale: float | None = None, seed: int = 0) -> list[dict]:
    """Fig. 10 with the Roaring extension codec alongside WAH/CONCISE."""
    cache = DatasetCache(scale, seed)
    rows = []
    for name in ("movielens", "nba", "zillow"):
        index = BitmapIndex(cache.get(name))
        for scheme in ("wah", "concise", "roaring"):
            report = compress_index(index, scheme)
            rows.append(
                {
                    "dataset": name,
                    "scheme": scheme,
                    "cpu_s": report.seconds,
                    "ratio": report.ratio,
                }
            )
    return rows


def ext_partitioned(
    scale: float | None = None,
    seed: int = 0,
    k: int | None = None,
    budgets=(128, 512, 2048),
) -> list[dict]:
    """Bounded-memory TKD across partition budgets (TDEP-inspired)."""
    k = PAPER.default_k if k is None else k
    cache = DatasetCache(scale, seed)
    dataset = cache.get("ind")
    rows = []
    for budget in budgets:
        algorithm = PartitionedTKD(dataset, partition_rows=budget)
        algorithm.prepare()
        result = algorithm.query(k)
        rows.append(
            {
                "dataset": dataset.name or "ind",
                "partition_rows": budget,
                "partitions": result.stats.extra.get("partitions"),
                "skipped": result.stats.extra.get("partitions_skipped", 0),
                "query_s": result.stats.query_seconds,
                "synopsis_bytes": algorithm.index_bytes,
            }
        )
    return rows


def ext_stability(scale: float | None = None, seed: int = 0, k: int | None = None) -> list[dict]:
    """Answer drift under injected missingness + bootstrap churn."""
    k = PAPER.default_k if k is None else k
    cache = DatasetCache(scale, seed)
    # Ground truth: a complete IND matrix of the cache's scaled size.
    complete = cache.get("ind", missing_rate=0.0)
    rows = missingness_sensitivity(
        complete.minimized, k, rates=(0.1, 0.2, 0.4), trials=2, rng=seed
    )
    incomplete = cache.get("ind")
    churn = perturbation_stability(incomplete, k, trials=5, rng=seed)
    rows.append(
        {
            "mechanism": "bootstrap-5%drop",
            "rate": churn["drop_fraction"],
            "k": k,
            "trials": churn["trials"],
            "jaccard_mean": churn["jaccard_mean"],
            "jaccard_max": churn["jaccard_max"],
            "oracle_kept_mean": float(
                np.mean(list(churn["persistence"].values())) if churn["persistence"] else 0.0
            ),
        }
    )
    return rows


def ext_stream(scale: float | None = None, seed: int = 0, k: int | None = None) -> list[dict]:
    """Incremental maintenance vs rebuild-per-change on an update stream.

    The continuous-query scenario the paper's related work leaves open
    for incomplete data: a workload of single-row updates arrives and the
    top-k must stay current. Three maintenance strategies are timed on
    identical update sequences — per-change re-preparation (tables +
    score sweep rebuilt from scratch), the engine's versioned
    copy-on-write path (:meth:`~repro.engine.session.QueryEngine.apply_delta`),
    and the owned continuous handle
    (:meth:`~repro.engine.session.QueryEngine.continuous`, in-place table
    splices). All three answer identically; the row reports seconds per
    update.
    """
    from ..engine.kernels import PreparedDataset, dominated_counts
    from ..engine.session import PreparedDatasetCache, QueryEngine

    k = PAPER.default_k if k is None else k
    cache = DatasetCache(scale, seed)
    dataset = cache.get("ind")
    rng = np.random.default_rng(seed)
    updates = [
        (dataset.ids[int(rng.integers(0, dataset.n))], {0: float(rng.integers(0, 100))})
        for _ in range(16)
    ]

    rows = []
    # Strategy 1: rebuild everything per change (the pre-delta engine).
    current = dataset
    start = time.perf_counter()
    for object_id, cells in updates:
        current = current.with_updated({object_id: cells})
        prepared = PreparedDataset(current)
        prepared.tables(build=True)
        dominated_counts(current, prepared=prepared)
    rows.append(
        {
            "strategy": "reprepare",
            "n": dataset.n,
            "updates": len(updates),
            "seconds_per_update": (time.perf_counter() - start) / len(updates),
        }
    )

    # Strategy 2: versioned copy-on-write deltas through the engine.
    engine = QueryEngine(dataset_cache=PreparedDatasetCache())
    engine.prepare_dataset(dataset).tables(build=True)
    engine.scores(dataset)
    current = dataset
    start = time.perf_counter()
    for object_id, cells in updates:
        current = engine.update(current, {object_id: cells})
    rows.append(
        {
            "strategy": "versioned",
            "n": dataset.n,
            "updates": len(updates),
            "seconds_per_update": (time.perf_counter() - start) / len(updates),
        }
    )

    # Strategy 3: the owned continuous handle (in-place splices).
    live = engine.continuous(dataset, k=k)
    start = time.perf_counter()
    for object_id, cells in updates:
        live.update({object_id: cells})
        live.top_k(k)
    rows.append(
        {
            "strategy": "continuous",
            "n": dataset.n,
            "updates": len(updates),
            "seconds_per_update": (time.perf_counter() - start) / len(updates),
        }
    )
    return rows


#: Registry consumed by :mod:`repro.experiments.figures` (id → function +
#: default series spec for the printed pivot).
EXTENSION_EXPERIMENTS = {
    "ext-idx": (ext_indexes, dict(x="backend", series="k", y="query_s")),
    "ext-sigma0": (ext_sigma0, dict(x="method", series="k", y="query_s")),
    "ext-imp": (ext_imputers, dict(x="imputer", series="k", y="jaccard_distance")),
    "ext-roar": (ext_roaring, dict(x="dataset", series="scheme", y="ratio")),
    "ext-part": (ext_partitioned, dict(x="partition_rows", series="dataset", y="query_s")),
    "ext-stab": (ext_stability, dict(x="rate", series="mechanism", y="jaccard_mean")),
    "ext-stream": (ext_stream, dict(x="strategy", series="n", y="seconds_per_update")),
}
