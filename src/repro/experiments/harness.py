"""Experiment harness: paper parameters, scaling, dataset cache, timers.

The paper's Table 2 fixes the experimental grid; :class:`PaperDefaults`
records it verbatim. Absolute sizes (N up to 250K on a Java/C testbed)
are impractical for a pure-Python reproduction's default runs, so every
experiment takes a ``scale`` factor (default from the ``REPRO_SCALE``
environment variable, falling back to laptop-friendly values) that
multiplies the object counts while preserving every *relative* shape the
paper reports.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.dataset import IncompleteDataset
from ..core.query import make_algorithm
from ..datasets.loader import load_dataset

__all__ = ["PaperDefaults", "PAPER", "env_scale", "DatasetCache", "time_algorithm", "run_query_series"]


@dataclass(frozen=True)
class PaperDefaults:
    """Table 2 — parameter ranges and default values (defaults in bold there)."""

    k_values: tuple[int, ...] = (4, 8, 16, 32, 64)
    default_k: int = 8

    n_values: tuple[int, ...] = (50_000, 100_000, 150_000, 200_000, 250_000)
    default_n: int = 100_000

    dim_values: tuple[int, ...] = (5, 10, 15, 20, 25)
    default_dim: int = 10

    missing_rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.20, 0.30, 0.40)
    default_missing_rate: float = 0.10

    cardinalities: tuple[int, ...] = (50, 100, 200, 400, 800)
    default_cardinality: int = 100

    #: IBIG bin counts the paper settles on per dataset (Section 5.1).
    ibig_bins: dict = field(
        default_factory=lambda: {
            "movielens": 2,
            "nba": 64,
            "zillow": [6, 10, 35, 3000, 1000],
            "ind": 32,
            "ac": 32,
        }
    )

    #: Real-dataset shapes (Section 5 descriptions).
    real_shapes: dict = field(
        default_factory=lambda: {
            "movielens": {"n": 3700, "d": 60, "missing": 0.95},
            "nba": {"n": 16000, "d": 4, "missing": 0.20},
            "zillow": {"n": 200000, "d": 5, "missing": 0.142},
        }
    )


#: The canonical Table 2 instance.
PAPER = PaperDefaults()


def env_scale(default: float = 0.04) -> float:
    """The global experiment scale factor (``REPRO_SCALE`` env override).

    ``scale=1.0`` is paper scale; the default keeps a full figure sweep in
    seconds-to-minutes territory on a laptop.
    """
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


#: Floors keeping tiny scales meaningful per dataset. MovieLens needs a
#: few thousand objects before per-object pruning amortises against the
#: vectorised Naive baseline (its 95% missingness weakens every bound —
#: the paper's own Fig. 18a observation).
_MIN_OBJECTS = {"movielens": 1200, "nba": 1600, "zillow": 2000, "ind": 1000, "ac": 1000}


class DatasetCache:
    """Memoising dataset factory for experiment sweeps."""

    def __init__(self, scale: float | None = None, seed: int = 0) -> None:
        self.scale = env_scale() if scale is None else float(scale)
        self.seed = int(seed)
        self._cache: dict[tuple, IncompleteDataset] = {}

    def get(
        self,
        name: str,
        *,
        n: int | None = None,
        dim: int | None = None,
        cardinality: int | None = None,
        missing_rate: float | None = None,
    ) -> IncompleteDataset:
        """Fetch (and cache) one dataset with Table 2 defaults filled in."""
        dim = PAPER.default_dim if dim is None else dim
        cardinality = PAPER.default_cardinality if cardinality is None else cardinality
        missing_rate = PAPER.default_missing_rate if missing_rate is None else missing_rate
        key = (name, n, dim, cardinality, missing_rate)
        if key not in self._cache:
            if n is None:
                # Derive from the paper-scale size; the floor only guards
                # this derived path — an explicit n is taken literally.
                paper_n = {"ind": PAPER.default_n, "ac": PAPER.default_n}.get(
                    name, PAPER.real_shapes.get(name, {}).get("n", PAPER.default_n)
                )
                n = max(int(round(paper_n * self.scale)), _MIN_OBJECTS.get(name, 500))
            n = max(n, 2)
            effective_scale = n / {"movielens": 3700, "nba": 16000, "zillow": 200000}.get(name, n)
            if name in ("ind", "ac"):
                self._cache[key] = load_dataset(
                    name,
                    scale=n / PAPER.default_n,
                    seed=self.seed,
                    dim=dim,
                    cardinality=cardinality,
                    missing_rate=missing_rate,
                )
            else:
                self._cache[key] = load_dataset(name, scale=effective_scale, seed=self.seed)
        return self._cache[key]


def time_algorithm(
    dataset: IncompleteDataset,
    algorithm: str,
    k: int,
    *,
    repeats: int = 1,
    engine=None,
    **options,
) -> dict:
    """Prepare once, run the query *repeats* times, report both timings.

    Returns a row dict with preprocessing seconds, best query seconds, and
    the run's :class:`~repro.core.stats.QueryStats` (from the last run).

    Pass a :class:`repro.engine.QueryEngine` to share preparations across
    an entire sweep: the first point of a series pays the index build, the
    remaining points reuse it (exactly the paper's Table 3 vs Figs. 12–17
    separation, now enforced by the session instead of by discipline).
    The engine also pre-warms the kernel-level
    :class:`~repro.engine.kernels.PreparedDataset` (sentinel arrays and,
    where eligible, packed bitset tables) so those builds land in the
    preparation phase rather than inside the first timed query.

    When the engine has a :class:`~repro.engine.store.PersistentStore`
    (``REPRO_CACHE_DIR``, or ``QueryEngine(store=...)``), each measured
    point is persisted — result *and* measured timings — and a re-run of
    the same sweep in a later process returns the stored row without
    executing anything (``row["stored"] = True``), so regenerating a
    figure is near-free and reports the originally measured timings
    rather than a distorted warm-cache re-measurement.
    """
    store = engine.store if engine is not None else None
    key = None
    if store is not None:
        key = engine.result_key(dataset, k, algorithm, **options)
        entry = store.get_entry(*key)
        if entry is not None and "query_s" in entry[1]:
            result, meta = entry
            return {
                "dataset": dataset.name or "?",
                "algorithm": algorithm,
                "k": k,
                "n": dataset.n,
                "d": dataset.d,
                "preprocess_s": float(meta.get("preprocess_s", 0.0)),
                "query_s": float(meta["query_s"]),
                "index_bytes": int(meta.get("index_bytes", 0)),
                "stats": result.stats,
                "result": result,
                "stored": True,
            }
    if engine is not None:
        engine.prepare_dataset(dataset).warm()
        instance = engine.prepared(dataset, algorithm, **options)
    else:
        instance = make_algorithm(dataset, algorithm, **options)
        instance.prepare()
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = instance.query(k)
        best = min(best, time.perf_counter() - start)
    if store is not None:
        store.put_result(
            *key,
            result,
            rebuild_seconds=instance.preprocess_seconds + best,
            meta={
                "preprocess_s": instance.preprocess_seconds,
                "query_s": best,
                "index_bytes": instance.index_bytes,
            },
        )
    return {
        "dataset": dataset.name or "?",
        "algorithm": algorithm,
        "k": k,
        "n": dataset.n,
        "d": dataset.d,
        "preprocess_s": instance.preprocess_seconds,
        "query_s": best,
        "index_bytes": instance.index_bytes,
        "stats": result.stats,
        "result": result,
    }


def run_query_series(
    dataset: IncompleteDataset,
    algorithms: Sequence[str],
    k: int,
    *,
    options_for: Callable[[str], dict] | None = None,
    repeats: int = 1,
    engine=None,
) -> list[dict]:
    """One figure point per algorithm on a fixed dataset/k.

    With an *engine*, preparations are cached across the series (and any
    other series sharing the same engine and dataset).
    """
    rows = []
    for algorithm in algorithms:
        options = options_for(algorithm) if options_for else {}
        rows.append(
            time_algorithm(dataset, algorithm, k, repeats=repeats, engine=engine, **options)
        )
    return rows
