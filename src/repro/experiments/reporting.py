"""Row/series rendering for experiment output.

The harness produces lists of plain dict rows; this module renders them as
the paper renders its figures — one series per algorithm across the swept
parameter — plus CSV export for downstream plotting.
"""

from __future__ import annotations

import csv
from typing import Sequence

from .._util import format_table

__all__ = ["print_rows", "rows_to_csv", "pivot_series", "format_series"]


def print_rows(rows: Sequence[dict], columns: Sequence[str] | None = None, *, title: str = "") -> None:
    """Print rows as an aligned table (skips non-scalar cells)."""
    if not rows:
        print(f"{title}: (no rows)")
        return
    if columns is None:
        columns = [key for key, value in rows[0].items() if isinstance(value, (int, float, str))]
    table = format_table(columns, [[row.get(col, "") for col in columns] for row in rows])
    if title:
        print(f"== {title} ==")
    print(table)


def rows_to_csv(rows: Sequence[dict], path, columns: Sequence[str] | None = None) -> None:
    """Write rows to CSV (scalar columns only)."""
    if not rows:
        return
    if columns is None:
        columns = [key for key, value in rows[0].items() if isinstance(value, (int, float, str))]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({col: row.get(col, "") for col in columns})


def pivot_series(
    rows: Sequence[dict],
    *,
    x: str,
    series: str = "algorithm",
    y: str = "query_s",
) -> dict[str, list[tuple]]:
    """Group rows into per-series ``(x, y)`` point lists (a paper figure)."""
    out: dict[str, list[tuple]] = {}
    for row in rows:
        out.setdefault(str(row[series]), []).append((row[x], row[y]))
    for points in out.values():
        # x values may mix numbers with labels like "C+1" (Fig. 11); group
        # numbers first, labels last, each internally ordered.
        points.sort(key=lambda pair: (isinstance(pair[0], str), pair[0]))
    return out


def format_series(
    rows: Sequence[dict],
    *,
    x: str,
    series: str = "algorithm",
    y: str = "query_s",
    y_format: str = "{:.4g}",
) -> str:
    """Render a figure as one line per series: ``name: x=y, x=y, …``."""
    pivoted = pivot_series(rows, x=x, series=series, y=y)
    lines = []
    for name in sorted(pivoted):
        points = ", ".join(f"{xv}={y_format.format(yv)}" for xv, yv in pivoted[name])
        lines.append(f"{name:>8}: {points}")
    return "\n".join(lines)
