#!/usr/bin/env python
"""SIMD dispatch + native threading acceptance benchmark.

Measures the fused gather+AND+popcount accumulator pass (the universal
hot loop behind ``dominated_counts`` and ``foreign_dominated_counts``)
under every SIMD route the host supports, single-threaded and at
``--threads``, against two references: the *genuinely scalar* native
route (auto-vectorisation is disabled on the scalar twins, so this is
the honest pre-SIMD baseline) and numpy.

Three floors, each enforced:

1. ``--min-simd-speedup`` — best vector route at 1 thread over scalar at
   1 thread.  Pure ISA win; independent of core count.
2. ``--min-total-speedup`` — best route at ``--threads`` over scalar at
   1 thread.  SIMD x threading combined; the default floor is
   host-aware (multicore hosts must clear 2.5x, a single-core container
   can only demonstrate the SIMD term).
3. ``--min-numpy-speedup`` — best route at ``--threads`` over numpy.
   Host-aware for the same reason (15x multicore, 4x single-core).

Every measured combination is gated on **bit-identical parity** with
numpy; any disagreement exits 2.  The report records the host shape
(CPU count, build mode, routes) and the floors actually enforced, so a
committed ``BENCH_simd.json`` is interpretable on its own.

Run:  PYTHONPATH=src python benchmarks/bench_engine_simd.py
      PYTHONPATH=src python benchmarks/bench_engine_simd.py \
          --n 4096 --repeats 1 --min-simd-speedup 0.8 \
          --min-total-speedup 0.8 --min-numpy-speedup 0.8  # CI smoke

Writes ``--json`` (default ``benchmarks/BENCH_simd.json``). Exits 1 when
a floor is missed, 2 on a parity mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.engine.backend import (
    _cpu_count,
    native_available,
    native_build_error,
    native_build_mode,
    set_simd_route,
    simd_routes,
    use_backend,
    use_native_threads,
    use_simd_route,
)
from repro.datasets.synthetic import independent_dataset
from repro.engine.kernels import PreparedDataset, _BitsetTables

_CHUNK = 8192  # the kernels' bitset batch granularity


def _best_of(repeats, fn):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _accumulator_pass(backend, tables, lo, hi, n):
    out = np.empty(n, dtype=np.int64)
    for start in range(0, n, _CHUNK):
        idx = np.arange(start, min(start + _CHUNK, n), dtype=np.intp)
        out[idx] = backend.accumulator_counts(
            tables, lo, hi, idx, direction="dominated", live=None
        )
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000, help="dataset size")
    parser.add_argument("--d", type=int, default=4, help="dimensions")
    parser.add_argument("--missing-rate", type=float, default=0.2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--threads",
        type=int,
        default=4,
        help="native thread count for the threaded measurement",
    )
    parser.add_argument(
        "--min-simd-speedup",
        type=float,
        default=None,
        help="floor for scalar-1T / best-vector-1T (default 1.3 when a "
        "vector route exists, else 1.0)",
    )
    parser.add_argument(
        "--min-total-speedup",
        type=float,
        default=None,
        help="floor for scalar-1T / best-route-at---threads (default 2.5 "
        "with >=4 usable cores, else 1.3)",
    )
    parser.add_argument(
        "--min-numpy-speedup",
        type=float,
        default=None,
        help="floor for numpy / best-route-at---threads (default 15.0 "
        "with >=4 usable cores, else 4.0)",
    )
    parser.add_argument(
        "--json",
        default=os.path.join(os.path.dirname(__file__), "BENCH_simd.json"),
    )
    args = parser.parse_args()

    if not native_available():
        print(f"native backend unavailable: {native_build_error()}", file=sys.stderr)
        return 1

    routes = simd_routes()
    vector_routes = [r for r in routes if r != "scalar"]
    best_route = set_simd_route("auto")
    cpus = _cpu_count()
    multicore = cpus >= max(4, args.threads)
    min_simd = (
        args.min_simd_speedup
        if args.min_simd_speedup is not None
        else (1.3 if vector_routes else 1.0)
    )
    min_total = (
        args.min_total_speedup
        if args.min_total_speedup is not None
        else (2.5 if multicore else 1.3)
    )
    min_numpy = (
        args.min_numpy_speedup
        if args.min_numpy_speedup is not None
        else (15.0 if multicore else 4.0)
    )

    dataset = independent_dataset(args.n, args.d, missing_rate=args.missing_rate, seed=0)
    n = dataset.n
    prepared = PreparedDataset(dataset)
    print(
        f"workload: n={n} d={dataset.d} σ={args.missing_rate} | host: {cpus} "
        f"cpu(s), build '{native_build_mode()}', routes {'/'.join(routes)}, "
        f"auto -> {best_route}"
    )
    tables = _BitsetTables(prepared.lo, prepared.hi)
    print(f"bitset tables: {tables.nbytes / 1e6:.0f}MB")

    with use_backend("numpy") as backend:
        numpy_s, reference = _best_of(
            args.repeats,
            lambda b=backend: _accumulator_pass(b, tables, prepared.lo, prepared.hi, n),
        )
    print(f"numpy reference: {numpy_s * 1e3:.0f}ms")

    # every route at 1 thread, plus the best route at --threads
    combos = [(route, 1) for route in routes]
    if (best_route, args.threads) not in combos:
        combos.append((best_route, args.threads))
    measured: dict[str, float] = {}
    with use_backend("native") as backend:
        for route, count in combos:
            with use_simd_route(route), use_native_threads(count) as effective:
                seconds, counts = _best_of(
                    args.repeats,
                    lambda b=backend: _accumulator_pass(
                        b, tables, prepared.lo, prepared.hi, n
                    ),
                )
            if not np.array_equal(counts, reference):
                print(
                    f"FAIL: {route} x {count} thread(s) disagrees with numpy",
                    file=sys.stderr,
                )
                return 2
            key = f"{route}:t{count}"
            measured[key] = seconds
            print(
                f"  {route:>7} x {effective} thread(s): {seconds * 1e3:6.1f}ms "
                f"({numpy_s / seconds:5.2f}x numpy)"
            )

    scalar_s = measured["scalar:t1"]
    best_1t = min(measured[f"{r}:t1"] for r in routes)
    threaded_key = f"{best_route}:t{args.threads}"
    threaded_s = measured.get(threaded_key, measured[f"{best_route}:t1"])
    simd_speedup = scalar_s / best_1t if vector_routes else 1.0
    total_speedup = scalar_s / threaded_s
    numpy_speedup = numpy_s / threaded_s
    print(
        f"simd {simd_speedup:.2f}x (floor {min_simd:.1f}x) | "
        f"simd+threads {total_speedup:.2f}x (floor {min_total:.1f}x) | "
        f"vs numpy {numpy_speedup:.2f}x (floor {min_numpy:.1f}x)"
    )

    payload = {
        "n": n,
        "d": dataset.d,
        "missing_rate": args.missing_rate,
        "chunk": _CHUNK,
        "table_bytes": tables.nbytes,
        "cpu_count": cpus,
        "build_mode": native_build_mode(),
        "routes": routes,
        "best_route": best_route,
        "threads": args.threads,
        "numpy_seconds": numpy_s,
        "seconds": measured,
        "simd_speedup": simd_speedup,
        "total_speedup": total_speedup,
        "numpy_speedup": numpy_speedup,
        "min_simd_speedup": min_simd,
        "min_total_speedup": min_total,
        "min_numpy_speedup": min_numpy,
    }
    with open(args.json, "w") as out:
        json.dump(payload, out, indent=2)
    print(f"wrote {args.json}")

    failed = False
    for label, value, floor in (
        ("simd", simd_speedup, min_simd),
        ("simd+threads", total_speedup, min_total),
        ("numpy", numpy_speedup, min_numpy),
    ):
        if value < floor:
            print(
                f"FAIL: {label} speedup {value:.2f}x below the {floor:.1f}x floor",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
