"""Extension of Table 4: how much does the choice of imputer matter?

The paper compares its incomplete-data TKD answer against one inference
route (GraphLab factorization). Its Section 3 names EM and other
inference methods as future work — here all four imputers in
:mod:`repro.imputation` run through the same pipeline, measuring both
the fit cost and the Jaccard distance of the resulting TKD answer from
the incomplete-data answer. Expected shape: the model-based imputers
(factorization, EM) land closer to each other than to the column-mean
baseline, and every one of them costs more than the incomplete-data
query it replaces.
"""

from __future__ import annotations

import pytest

from repro import top_k_dominating
from repro.core.complete import complete_tkd
from repro.imputation import EMImputer, FactorizationImputer, KNNImputer, SimpleImputer

K = 16

IMPUTERS = {
    "factorization": lambda: FactorizationImputer(n_factors=8, max_iter=50, seed=0),
    "em": lambda: EMImputer(max_iter=50),
    "knn": lambda: KNNImputer(n_neighbors=5),
    "mean": lambda: SimpleImputer("mean"),
}


@pytest.mark.parametrize("name", tuple(IMPUTERS))
def test_imputer_fit_cost(benchmark, nba_ds, name):
    benchmark.group = "imputer comparison: fit cost (NBA)"
    imputer = IMPUTERS[name]()
    completed = benchmark.pedantic(
        imputer.impute_dataset, args=(nba_ds,), rounds=1, iterations=1
    )
    assert completed.shape == (nba_ds.n, nba_ds.d)


@pytest.mark.parametrize("name", tuple(IMPUTERS))
def test_imputer_answer_distance(benchmark, nba_ds, name):
    """Jaccard distance of the imputed-data answer from the incomplete one."""
    completed = IMPUTERS[name]().impute_dataset(nba_ds)
    incomplete = top_k_dominating(nba_ds, K, algorithm="big")
    benchmark.group = f"imputer comparison: answer distance k={K} (NBA)"

    imputed = benchmark(lambda: complete_tkd(completed, K, ids=nba_ds.ids))

    a, b = incomplete.id_set, set(imputed.ids)
    jaccard = 1.0 - len(a & b) / len(a | b)
    benchmark.extra_info["jaccard_distance"] = round(jaccard, 4)
    benchmark.extra_info["shared"] = len(a & b)
