#!/usr/bin/env python
"""Out-of-core partitioned-execution acceptance benchmark.

The claim under test: a query whose prepared bitset tables are **far
larger than RAM** (monolithic n=1M, d=4 needs ~1TB) completes on one
box by sharding the data, spilling every shard's tables to
memory-mapped files, and keeping only a byte-budgeted *resident set* of
attachments hot — with peak RSS tracking the budget, not the table sum.

Measured and enforced:

1. **Completion under budget** — ``QueryEngine.query(partitions=P)``
   with ``memory_budget`` ≤ ``--budget-fraction`` of the total prepared
   shard-table bytes must finish and report ``spill=True``.
2. **Peak RSS** — ``resource.getrusage`` high-water mark must stay
   under budget + a fixed process overhead allowance (``--max-rss`` to
   override, 0 disables the gate).
3. **Exactness** — at ``--check-n`` (where a monolithic reference is
   feasible) the out-of-core answer must be bit-identical to ``naive``.

Reported (not gated): wall time, phase split, resident-set hit rate,
phase-2 candidate survival, spill file count/bytes, and the monolithic
table estimate that makes the direct route impossible.

Run:  PYTHONPATH=src python benchmarks/bench_engine_outofcore.py            # full 1M
      PYTHONPATH=src python benchmarks/bench_engine_outofcore.py \
          --n 30000 --partitions 16 --check-n 3000                          # CI smoke

Writes measurements to ``--json`` (default
``benchmarks/BENCH_outofcore.json``). Exits 1 on a floor violation, 2
when the out-of-core answer disagrees with the reference.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import shutil
import sys
import tempfile
import time

from repro.datasets.synthetic import independent_dataset
from repro.engine.kernels import _bitset_table_bytes
from repro.engine.session import PreparedDatasetCache, QueryEngine


def peak_rss_bytes() -> int:
    """Process high-water resident set (ru_maxrss is KB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss * 1024 if sys.platform != "darwin" else rss


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1_000_000, help="dataset size")
    parser.add_argument("--d", type=int, default=4, help="dimensions")
    parser.add_argument("--k", type=int, default=10, help="answer size")
    parser.add_argument("--missing-rate", type=float, default=0.3)
    parser.add_argument(
        "--partitions",
        type=int,
        default=0,
        help="shard count (default 0: smallest power of two giving "
        "shards of ≤4096 rows, the sweet spot for per-shard tables)",
    )
    parser.add_argument(
        "--budget-fraction",
        type=float,
        default=0.25,
        help="resident budget as a fraction of total spilled table bytes "
        "(default 0.25 — the engine may keep at most a quarter hot)",
    )
    parser.add_argument(
        "--rss-overhead",
        type=int,
        default=1_500_000_000,
        help="allowance added to the budget for the RSS gate: dataset "
        "arrays, interpreter, and kernel temporaries (default 1.5GB)",
    )
    parser.add_argument(
        "--max-rss",
        type=int,
        default=-1,
        help="absolute peak-RSS cap in bytes (-1: budget + overhead; 0: no gate)",
    )
    parser.add_argument(
        "--check-n",
        type=int,
        default=20_000,
        help="size of the n-reduced bit-identity check against naive "
        "(0 disables; the full n has no feasible reference)",
    )
    parser.add_argument(
        "--spill-dir",
        default=None,
        help="directory for the spill store (default: a fresh temp dir, "
        "removed afterwards)",
    )
    parser.add_argument(
        "--json",
        default=os.path.join(os.path.dirname(__file__), "BENCH_outofcore.json"),
    )
    args = parser.parse_args()

    partitions = args.partitions
    if partitions <= 0:
        partitions = 1
        while -(-args.n // partitions) > 4096:
            partitions *= 2
    shard_n = -(-args.n // partitions)
    table_total = partitions * _bitset_table_bytes(shard_n, args.d)
    budget = max(int(table_total * args.budget_fraction), 1)
    mono_bytes = _bitset_table_bytes(args.n, args.d)
    print(
        f"workload: n={args.n} d={args.d} k={args.k} σ={args.missing_rate} "
        f"P={partitions} (shards of ~{shard_n} rows)"
    )
    print(
        f"monolithic tables would need ~{mono_bytes / 1e9:.0f}GB; "
        f"sharded spill total ~{table_total / 1e6:.0f}MB, "
        f"resident budget {budget / 1e6:.0f}MB "
        f"({args.budget_fraction:.0%} of the spill)"
    )

    dataset = independent_dataset(args.n, args.d, missing_rate=args.missing_rate, seed=0)

    spill_dir = args.spill_dir
    own_spill = spill_dir is None
    if own_spill:
        spill_dir = tempfile.mkdtemp(prefix="repro-outofcore-")
    rss_before = peak_rss_bytes()
    try:
        engine = QueryEngine(
            dataset_cache=PreparedDatasetCache(), store=spill_dir, memory_budget=budget
        )
        start = time.perf_counter()
        result = engine.query(dataset, args.k, partitions=partitions)
        wall = time.perf_counter() - start
        cache = engine.dataset_cache
        extra = result.stats.extra
        spill_files = list(engine.store.shard_entries())
        spill_bytes = sum(e.get("bytes", 0) for e in spill_files)
    finally:
        if own_spill:
            shutil.rmtree(spill_dir, ignore_errors=True)

    peak = peak_rss_bytes()
    hit_rate = cache.resident_hit_rate
    survival = extra.get("survival", 1.0)
    print(
        f"out-of-core query: {wall:.1f}s wall "
        f"(phase 1 {extra.get('phase1_seconds', 0.0):.1f}s, "
        f"phase 2 {extra.get('phase2_seconds', 0.0):.1f}s), spill={extra.get('spill')}"
    )
    print(
        f"resident set: {cache.resident_hits} hits / {cache.resident_misses} misses "
        f"({hit_rate:.1%} hit rate), {cache.resident_evictions} evictions, "
        f"{len(spill_files)} spill files / {spill_bytes / 1e6:.0f}MB"
    )
    print(
        f"phase-2 survival {survival:.2%} ({result.stats.candidates} of {args.n}), "
        f"merge={extra.get('merge')} ({extra.get('merge_groups', 0)} groups), "
        f"tau={extra.get('tau')}"
    )
    print(f"peak RSS {peak / 1e9:.2f}GB (was {rss_before / 1e9:.2f}GB before the query)")

    failures = []
    if not extra.get("spill"):
        failures.append("query did not take the out-of-core path (spill=False)")
    max_rss = args.max_rss if args.max_rss >= 0 else budget + args.rss_overhead
    if max_rss and peak > max_rss:
        failures.append(f"peak RSS {peak / 1e9:.2f}GB exceeds the {max_rss / 1e9:.2f}GB cap")

    check = None
    if args.check_n:
        from repro.core.query import top_k_dominating

        small = independent_dataset(
            args.check_n, args.d, missing_rate=args.missing_rate, seed=0
        )
        # A quarter of the check query's own 8-shard table total, so the
        # reference-sized run is forced down the spill path too.
        small_budget = max(
            8 * _bitset_table_bytes(-(-args.check_n // 8), args.d) // 4, 1
        )
        small_engine = QueryEngine(
            dataset_cache=PreparedDatasetCache(), memory_budget=small_budget
        )
        ooc = small_engine.query(small, args.k, partitions=8)
        reference = top_k_dominating(small, args.k, algorithm="naive")
        check = {
            "n": args.check_n,
            "spill": bool(ooc.stats.extra.get("spill")),
            "identical": ooc.indices == reference.indices
            and ooc.scores == reference.scores,
        }
        if not check["spill"]:
            failures.append("bit-identity check did not exercise the spill path")
        if not check["identical"]:
            print(
                "FAIL: out-of-core answer is not bit-identical to naive "
                f"at n={args.check_n}",
                file=sys.stderr,
            )
            return 2
        print(f"exactness: bit-identical to naive at n={args.check_n} (spilled)")

    payload = {
        "n": args.n,
        "d": args.d,
        "k": args.k,
        "missing_rate": args.missing_rate,
        "partitions": partitions,
        "monolithic_table_bytes": mono_bytes,
        "spill_table_bytes": table_total,
        "memory_budget_bytes": budget,
        "budget_fraction": args.budget_fraction,
        "wall_seconds": wall,
        "phase1_seconds": extra.get("phase1_seconds", 0.0),
        "phase2_seconds": extra.get("phase2_seconds", 0.0),
        "peak_rss_bytes": peak,
        "max_rss_bytes": max_rss,
        "resident_hits": cache.resident_hits,
        "resident_misses": cache.resident_misses,
        "resident_evictions": cache.resident_evictions,
        "resident_hit_rate": hit_rate,
        "spill_files": len(spill_files),
        "spill_bytes": spill_bytes,
        "candidate_survival": survival,
        "candidates": result.stats.candidates,
        "merge": extra.get("merge"),
        "merge_groups": extra.get("merge_groups", 0),
        "tau": extra.get("tau"),
        "bit_identity_check": check,
    }
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
