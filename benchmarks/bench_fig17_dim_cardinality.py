"""Fig. 17 — TKD cost vs per-dimension cardinality c (IND/AC).

Paper series: CPU time of ESB, UBB, BIG, IBIG for c ∈ {50..800}.
Expected shape: near-flat — c moves index size, not query cost (the
paper notes "CPU time is not very sensitive to c").
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro import make_algorithm
from repro.datasets import anticorrelated_dataset, independent_dataset

K = 8
CARDINALITY_SWEEP = (50, 200, 800)
ALGORITHMS = ("esb", "ubb", "big", "ibig")

_CACHE = {}


def _dataset(kind: str, cardinality: int):
    key = (kind, cardinality)
    if key not in _CACHE:
        factory = independent_dataset if kind == "ind" else anticorrelated_dataset
        _CACHE[key] = factory(
            scaled(1500), 10, cardinality=cardinality, missing_rate=0.1, seed=0
        )
    return _CACHE[key]


@pytest.mark.parametrize("cardinality", CARDINALITY_SWEEP)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kind", ["ind", "ac"])
def test_fig17_query(benchmark, kind, algorithm, cardinality):
    dataset = _dataset(kind, cardinality)
    options = {"bins": 32} if algorithm == "ibig" else {}
    instance = make_algorithm(dataset, algorithm, **options).prepare()
    benchmark.group = f"fig17 {kind} c={cardinality}"

    result = benchmark(instance.query, K)
    assert len(result) == K
