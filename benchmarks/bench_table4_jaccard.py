"""Table 4 — incomplete-data answer vs imputation-based answer on NBA.

Paper rows: Jaccard distance D_J between the TKD answer on incomplete
data and the answer after GraphLab-style factorization imputation, for
k ∈ {4, 16, 32, 64}. Expected shape: D_J < 2/3 (the two answers share
more than half their objects) and the imputation pipeline costs far more
than the incomplete-data query it replaces.
"""

from __future__ import annotations

import pytest

from repro import top_k_dominating
from repro.core.complete import complete_tkd
from repro.imputation import FactorizationImputer

KS = (4, 16, 32, 64)

_COMPLETED = {}


def _completed_matrix(dataset):
    if "matrix" not in _COMPLETED:
        imputer = FactorizationImputer(n_factors=8, max_iter=50, seed=0)
        _COMPLETED["matrix"] = imputer.impute_dataset(dataset)
    return _COMPLETED["matrix"]


def test_table4_imputation_cost(benchmark, nba_ds):
    """The one-off factorization fit the inference route has to pay."""
    benchmark.group = "table4 pipeline"
    imputer = FactorizationImputer(n_factors=8, max_iter=50, seed=0)

    completed = benchmark.pedantic(
        imputer.impute_dataset, args=(nba_ds,), rounds=1, iterations=1
    )
    assert completed.shape == (nba_ds.n, nba_ds.d)


@pytest.mark.parametrize("k", KS)
def test_table4_jaccard(benchmark, nba_ds, k):
    completed = _completed_matrix(nba_ds)
    benchmark.group = "table4 jaccard"

    def both_answers():
        incomplete = top_k_dominating(nba_ds, k, algorithm="big")
        imputed = complete_tkd(completed, k, ids=nba_ds.ids)
        return incomplete, imputed

    incomplete, imputed = benchmark(both_answers)

    a, b = incomplete.id_set, set(imputed.ids)
    jaccard = 1.0 - len(a & b) / len(a | b)
    benchmark.extra_info["jaccard_distance"] = round(jaccard, 4)
    benchmark.extra_info["shared"] = len(a & b)
    # Paper Table 4: the answers share more than half their objects.
    assert jaccard <= 2.0 / 3.0 + 1e-9
