"""Ablation: the paper's bitmap index vs the Section 2.2 alternatives.

The paper adopts a bitmap index for BIG/IBIG without benchmarking the
other incomplete-data index families it cites (MOSAIC, BR-tree,
quantization). This bench makes that design choice measurable: all four
answer the same TKD queries, so build time, storage, and query time are
directly comparable. Expected shape: the bitmap algebra wins on query
time; quantization wins on storage; MOSAIC/BR-tree pay Python-level tree
traversal costs.
"""

from __future__ import annotations

import pytest

from repro import make_algorithm
from repro.indexes import INDEX_BACKENDS

ALGORITHMS = ("big", "mosaic", "brtree", "quantization")
K = 8


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_index_backend_query(benchmark, ind_ds, algorithm):
    instance = make_algorithm(ind_ds, algorithm)
    instance.prepare()
    benchmark.group = f"index backends: query k={K} (IND)"
    result = benchmark(instance.query, K)
    benchmark.extra_info["top_score"] = result.scores[0]
    benchmark.extra_info["index_bytes"] = instance.index_bytes
    benchmark.extra_info["scored"] = result.stats.scores_computed


@pytest.mark.parametrize("backend", tuple(INDEX_BACKENDS))
def test_index_backend_build(benchmark, ind_ds, backend):
    benchmark.group = "index backends: build (IND)"
    index = benchmark(lambda: INDEX_BACKENDS[backend](ind_ds).build())
    benchmark.extra_info["index_bytes"] = index.index_bytes


@pytest.mark.parametrize("backend", tuple(INDEX_BACKENDS))
def test_index_bound_tightness(benchmark, ind_ds, backend):
    """Mean slack of the backend bound over the exact score (lower = tighter)."""
    from repro.core.score import score_all

    index = INDEX_BACKENDS[backend](ind_ds).build()
    oracle = score_all(ind_ds)
    sample = range(0, ind_ds.n, max(1, ind_ds.n // 200))

    def mean_slack() -> float:
        slacks = [index.upper_bound_score(row) - int(oracle[row]) for row in sample]
        return sum(slacks) / len(slacks)

    benchmark.group = "index backends: bound tightness (IND)"
    slack = benchmark(mean_slack)
    benchmark.extra_info["mean_slack"] = slack
