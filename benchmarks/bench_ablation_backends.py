"""Ablation — IBIG implementation backends (DESIGN.md design choices).

Two independent axes, neither affecting answers (asserted):

* rim verification: vectorised NumPy comparisons vs the paper's
  per-dimension B+-tree bin scans (whose cost is the Eq. 6 model);
* column storage: uncompressed vs CONCISE/WAH compressed-at-rest
  (compression trades preparation time + decompress-on-demand for
  storage; the query path itself uses materialised columns).
"""

from __future__ import annotations

import pytest

from repro.core.ibig import IBIGTKD
from repro.core.naive import naive_tkd

K = 8


@pytest.mark.parametrize("backend", ["vectorised", "btree"])
def test_ablation_rim_verification(benchmark, ind_ds, backend):
    instance = IBIGTKD(
        ind_ds, bins=32, use_btree=(backend == "btree"), compress=None
    ).prepare()
    benchmark.group = "ablation IBIG rim verification (ind)"

    result = benchmark(instance.query, K)

    assert result.score_multiset == naive_tkd(ind_ds, K).score_multiset


@pytest.mark.parametrize("compress", [None, "concise", "wah"])
def test_ablation_compression_prepare(benchmark, ind_ds, compress):
    """Index preparation cost across storage codecs."""
    benchmark.group = "ablation IBIG storage codec (ind)"

    def build():
        return IBIGTKD(ind_ds, bins=32, compress=compress).prepare()

    instance = benchmark.pedantic(build, rounds=3, iterations=1)

    benchmark.extra_info["index_bytes"] = instance.index_bytes
    benchmark.extra_info["codec"] = compress or "none"
