"""Fig. 15 — TKD cost vs dimensionality (IND/AC).

Paper series: CPU time of ESB, UBB, BIG, IBIG for dim ∈ {5..25}.
Expected shape: cost rises with dim for every algorithm (each score
computation touches more columns) and the BIG/IBIG advantage persists.
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro import make_algorithm
from repro.datasets import anticorrelated_dataset, independent_dataset

K = 8
DIM_SWEEP = (5, 15, 25)
ALGORITHMS = ("esb", "ubb", "big", "ibig")

_CACHE = {}


def _dataset(kind: str, dim: int):
    key = (kind, dim)
    if key not in _CACHE:
        factory = independent_dataset if kind == "ind" else anticorrelated_dataset
        _CACHE[key] = factory(scaled(1500), dim, cardinality=100, missing_rate=0.1, seed=0)
    return _CACHE[key]


@pytest.mark.parametrize("dim", DIM_SWEEP)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kind", ["ind", "ac"])
def test_fig15_query(benchmark, kind, algorithm, dim):
    dataset = _dataset(kind, dim)
    options = {"bins": 32} if algorithm == "ibig" else {}
    instance = make_algorithm(dataset, algorithm, **options).prepare()
    benchmark.group = f"fig15 {kind} dim={dim}"

    result = benchmark(instance.query, K)
    assert len(result) == K
