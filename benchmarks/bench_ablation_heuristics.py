"""Ablation — what each pruning heuristic buys (DESIGN.md design choices).

Not a paper figure: isolates the contribution of Heuristic 1
(MaxScore early termination), Heuristic 2 (MaxBitScore), and Heuristic 3
(partial score) by switching each off. Answers stay exact in every
configuration (asserted); only the work changes. Expected shape on IND:
disabling H2 hurts most (it does the bulk of the per-object pruning,
Fig. 18d), disabling H1 matters on correlated data.
"""

from __future__ import annotations

import pytest

from repro.core.big import BIGTKD
from repro.core.ibig import IBIGTKD
from repro.core.naive import naive_tkd

K = 8

BIG_VARIANTS = {
    "h1+h2 (full BIG)": dict(),
    "h2 only": dict(enable_h1=False),
    "h1 only": dict(enable_h2=False),
    "no pruning": dict(enable_h1=False, enable_h2=False),
}

IBIG_VARIANTS = {
    "h1+h2+h3 (full IBIG)": dict(),
    "no h3": dict(enable_h3=False),
    "no h2": dict(enable_h2=False),
    "no h1": dict(enable_h1=False),
}


@pytest.mark.parametrize("variant", list(BIG_VARIANTS))
def test_ablation_big(benchmark, ind_ds, variant):
    instance = BIGTKD(ind_ds, **BIG_VARIANTS[variant]).prepare()
    benchmark.group = "ablation BIG heuristics (ind)"

    result = benchmark(instance.query, K)

    benchmark.extra_info["scored"] = result.stats.scores_computed
    assert result.score_multiset == naive_tkd(ind_ds, K).score_multiset


@pytest.mark.parametrize("variant", list(IBIG_VARIANTS))
def test_ablation_ibig(benchmark, ind_ds, variant):
    instance = IBIGTKD(ind_ds, bins=32, **IBIG_VARIANTS[variant]).prepare()
    benchmark.group = "ablation IBIG heuristics (ind)"

    result = benchmark(instance.query, K)

    benchmark.extra_info["scored"] = result.stats.scores_computed
    assert result.score_multiset == naive_tkd(ind_ds, K).score_multiset
