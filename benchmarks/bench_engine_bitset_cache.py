#!/usr/bin/env python
"""Bitset-cache and mask-route acceptance benchmark for the engine layer.

Three claims, each measured and enforced:

1. **Warm-cache scoring** — ``dominated_counts`` against a cached
   :class:`~repro.engine.kernels.PreparedDataset` (tables built once per
   dataset fingerprint, the PR's session-level cache) must beat the PR 1
   behaviour of rebuilding the ``O(d·n²/64)`` tables on every call by at
   least 3x at n=4000, d=4.
2. **Mask route** — ``dominance_matrix_blocked(route="bitset")`` (packed
   rows + unpack adapter) must beat ``route="broadcast"`` (the ``(b, n,
   d)`` kernel) by at least 2x at the same size, with identical output.
3. **Parallel batches** — ``query_many(workers=2)`` must return
   bit-identical answers to ``workers=1`` on a Fig. 13-style sweep
   (synthetic datasets x pruning algorithms x the paper's k-ladder).

Run:  PYTHONPATH=src python benchmarks/bench_engine_bitset_cache.py
      PYTHONPATH=src python benchmarks/bench_engine_bitset_cache.py \
          --n 700 --min-warm-speedup 0.5 --min-matrix-speedup 0.5   # CI smoke

Writes the measured ratios to ``--json`` (default
``benchmarks/BENCH_engine.json``). Exits 1 when a speedup floor is
missed, 2 when any route disagrees with another.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.datasets.synthetic import anticorrelated_dataset, independent_dataset
from repro.engine.kernels import (
    PreparedDataset,
    _BitsetTables,
    dominance_matrix_blocked,
    dominated_counts,
)
from repro.engine.session import QueryEngine


def best_of(repeats: int, fn, *args, **kwargs):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, value


def cold_counts(dataset) -> np.ndarray:
    """The PR 1 behaviour: build the bitset tables, use them, drop them."""
    prepared = PreparedDataset(dataset)
    tables = _BitsetTables(prepared.lo, prepared.hi)
    idx = np.arange(dataset.n, dtype=np.intp)
    out = np.empty(dataset.n, dtype=np.int64)
    step = 8192
    for start in range(0, idx.size, step):
        chunk = idx[start : start + step]
        out[start : start + chunk.size] = tables.dominated_counts(prepared.lo, prepared.hi, chunk)
    return out


def check_workers_parity(scale_n: int) -> bool:
    """query_many(workers=2) == workers=1 on a Fig. 13-style sweep."""
    datasets = [
        independent_dataset(scale_n, 10, cardinality=100, missing_rate=0.1, seed=0),
        anticorrelated_dataset(scale_n, 10, cardinality=100, missing_rate=0.1, seed=0),
    ]
    requests = [
        (ds, k, algorithm)
        for ds in datasets
        for algorithm in ("esb", "ubb", "big", "ibig")
        for k in (4, 8, 16, 32, 64)
    ]
    sequential = QueryEngine().query_many(requests, workers=1)
    parallel = QueryEngine().query_many(requests, workers=2)
    return all(
        a.indices == b.indices and a.scores == b.scores and a.ids == b.ids
        for a, b in zip(sequential, parallel)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=4000, help="objects (default 4000)")
    parser.add_argument("--d", type=int, default=4, help="dimensions (default 4)")
    parser.add_argument("--missing-rate", type=float, default=0.1)
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=3.0,
        help="fail below this warm-cache vs per-call-rebuild ratio (default 3.0)",
    )
    parser.add_argument(
        "--min-matrix-speedup",
        type=float,
        default=2.0,
        help="fail below this bitset-route vs broadcast dominance_matrix ratio (default 2.0)",
    )
    parser.add_argument(
        "--workers-n",
        type=int,
        default=800,
        help="dataset size of the Fig. 13-style workers parity sweep (0 skips it)",
    )
    parser.add_argument(
        "--json",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_engine.json"),
        help="write measured ratios to this path (default benchmarks/BENCH_engine.json)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    dataset = independent_dataset(
        args.n, args.d, cardinality=100, missing_rate=args.missing_rate, seed=args.seed
    )
    print(
        f"engine bitset cache on n={dataset.n} d={dataset.d} "
        f"missing_rate={dataset.missing_rate:.2f}"
    )

    # -- 1. cold (per-call table rebuild) vs warm (fingerprint-keyed cache)
    cold_seconds, cold_scores = best_of(args.repeats, cold_counts, dataset)
    warm_prepared = PreparedDataset(dataset)
    warm_prepared.tables(build=True)  # paid once, as the session cache does
    warm_seconds, warm_scores = best_of(
        args.repeats, dominated_counts, dataset, prepared=warm_prepared
    )
    if cold_scores.tolist() != warm_scores.tolist():
        print("FAIL: warm-cache counts disagree with per-call rebuild", file=sys.stderr)
        return 2
    warm_speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(f"  dominated_counts, rebuild per call : {cold_seconds * 1e3:9.1f} ms")
    print(f"  dominated_counts, warm cache       : {warm_seconds * 1e3:9.1f} ms")
    print(f"  warm-cache speedup                 : {warm_speedup:9.1f}x  (floor {args.min_warm_speedup:.1f}x)")

    # -- 2. dominance_matrix: packed mask route vs broadcast route
    broadcast_seconds, broadcast_matrix = best_of(
        args.repeats, dominance_matrix_blocked, dataset, route="broadcast"
    )
    bitset_seconds, bitset_matrix = best_of(
        args.repeats, dominance_matrix_blocked, dataset, route="bitset", prepared=warm_prepared
    )
    if not (bitset_matrix == broadcast_matrix).all():
        print("FAIL: bitset-route dominance matrix disagrees with broadcast", file=sys.stderr)
        return 2
    matrix_speedup = broadcast_seconds / bitset_seconds if bitset_seconds > 0 else float("inf")
    print(f"  dominance_matrix, broadcast route  : {broadcast_seconds * 1e3:9.1f} ms")
    print(f"  dominance_matrix, bitset route     : {bitset_seconds * 1e3:9.1f} ms")
    print(f"  mask-route speedup                 : {matrix_speedup:9.1f}x  (floor {args.min_matrix_speedup:.1f}x)")

    # -- 3. query_many workers parity (Fig. 13-style sweep)
    workers_identical = None
    if args.workers_n > 0:
        workers_identical = check_workers_parity(args.workers_n)
        verdict = "bit-identical" if workers_identical else "MISMATCH"
        print(f"  query_many workers=2 vs workers=1  : {verdict} (n={args.workers_n} sweep)")

    report = {
        "n": dataset.n,
        "d": dataset.d,
        "missing_rate": dataset.missing_rate,
        "cold_counts_s": cold_seconds,
        "warm_counts_s": warm_seconds,
        "warm_cache_speedup": warm_speedup,
        "matrix_broadcast_s": broadcast_seconds,
        "matrix_bitset_s": bitset_seconds,
        "matrix_speedup": matrix_speedup,
        "workers_parity": workers_identical,
        "floors": {
            "warm_cache_speedup": args.min_warm_speedup,
            "matrix_speedup": args.min_matrix_speedup,
        },
    }
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  wrote {args.json}")

    if workers_identical is False:
        print("FAIL: parallel query_many differs from sequential", file=sys.stderr)
        return 2
    failed = False
    if warm_speedup < args.min_warm_speedup:
        print(
            f"FAIL: warm-cache speedup {warm_speedup:.2f}x below floor {args.min_warm_speedup}x",
            file=sys.stderr,
        )
        failed = True
    if matrix_speedup < args.min_matrix_speedup:
        print(
            f"FAIL: mask-route speedup {matrix_speedup:.2f}x below floor {args.min_matrix_speedup}x",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
