#!/usr/bin/env python
"""Telemetry overhead acceptance benchmark.

Instrumentation that changes what it measures is worse than none, so
both telemetry states carry an enforced budget at the paper-scale
workload (n=20000, d=4):

1. **Disabled is near-free** — the spans stay compiled into every hot
   path, so the disabled fast path (one module-flag check, a shared
   no-op singleton, no allocation) must cost at most
   ``--max-disabled-overhead`` (default 2%) of a query: measured as the
   per-call cost of a disabled ``trace()`` times the number of span
   sites one traced query actually passes through, over the untraced
   query's wall time.
2. **Enabled stays cheap** — running the same query with full span
   collection on must add at most ``--max-enabled-overhead`` (default
   15%) over the untraced baseline.

Both arms are also checked for bit-identical answers, and the traced
run's per-phase attribution (the ``repro trace summary`` number) is
reported alongside.

Run:  PYTHONPATH=src python benchmarks/bench_engine_telemetry.py
      PYTHONPATH=src python benchmarks/bench_engine_telemetry.py \
          --n 4000 --repeats 2  # CI smoke (budgets still enforced)

Writes the measurements to ``--json`` (default
``benchmarks/BENCH_telemetry.json``). Exits 1 when a budget is blown,
2 if tracing changed the answer.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.datasets.synthetic import independent_dataset
from repro.engine import telemetry
from repro.engine.session import QueryEngine
from repro.engine.telemetry import trace


def _best_of(repeats, fn):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _disabled_span_cost(iters: int = 200_000) -> float:
    """Per-call seconds of the disabled ``trace()`` fast path."""
    start = time.perf_counter()
    for _ in range(iters):
        with trace("bench.noop"):
            pass
    return (time.perf_counter() - start) / iters


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000, help="dataset size")
    parser.add_argument("--d", type=int, default=4, help="dimensions")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--missing-rate", type=float, default=0.2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-disabled-overhead",
        type=float,
        default=0.02,
        help="budget for disabled-telemetry overhead as a fraction of query time",
    )
    parser.add_argument(
        "--max-enabled-overhead",
        type=float,
        default=0.15,
        help="budget for enabled-telemetry overhead as a fraction of query time",
    )
    parser.add_argument(
        "--min-attribution",
        type=float,
        default=0.95,
        help="floor for the fraction of root wall time attributed to named phases",
    )
    parser.add_argument(
        "--json",
        default=os.path.join(os.path.dirname(__file__), "BENCH_telemetry.json"),
    )
    args = parser.parse_args()

    dataset = independent_dataset(args.n, args.d, missing_rate=args.missing_rate, seed=0)
    print(f"workload: n={dataset.n} d={dataset.d} k={args.k} σ={args.missing_rate}")

    # Warm the process-wide prepared-table cache once so both arms time
    # the same execute path, not a one-off table build.
    telemetry.set_enabled(False)
    QueryEngine().query(dataset, args.k)

    # -- baseline: telemetry disabled (the shipped default) ----------------
    baseline_s, baseline = _best_of(
        args.repeats, lambda: QueryEngine().query(dataset, args.k)
    )

    # -- enabled arm -------------------------------------------------------
    telemetry.reset()
    telemetry.set_enabled(True)
    enabled_s, traced = _best_of(
        args.repeats, lambda: QueryEngine().query(dataset, args.k)
    )
    telemetry.set_enabled(False)
    spans = telemetry.drain_spans()
    span_sites = max(len(spans) // args.repeats, 1)
    summary = telemetry.phase_summary(spans)

    if traced.ids != baseline.ids or traced.scores != baseline.scores:
        print("FAIL: tracing changed the answer", file=sys.stderr)
        return 2

    per_call = _disabled_span_cost()
    disabled_overhead = per_call * span_sites / max(baseline_s, 1e-9)
    enabled_overhead = max(enabled_s / max(baseline_s, 1e-9) - 1.0, 0.0)

    print(
        f"baseline query: {baseline_s * 1e3:.1f}ms; traced: {enabled_s * 1e3:.1f}ms "
        f"({span_sites} span sites/query, attribution {summary['attribution']:.1%})"
    )
    print(
        f"disabled fast path: {per_call * 1e9:.0f}ns/call -> "
        f"{disabled_overhead:.4%} of a query (budget {args.max_disabled_overhead:.0%})"
    )
    print(
        f"enabled overhead: {enabled_overhead:.2%} (budget {args.max_enabled_overhead:.0%})"
    )

    payload = {
        "n": dataset.n,
        "d": dataset.d,
        "k": args.k,
        "missing_rate": args.missing_rate,
        "baseline_seconds": baseline_s,
        "enabled_seconds": enabled_s,
        "noop_span_seconds": per_call,
        "span_sites_per_query": span_sites,
        "attribution_rate": summary["attribution"],
        "min_attribution_rate": args.min_attribution,
        "disabled_overhead_fraction": disabled_overhead,
        "enabled_overhead_fraction": enabled_overhead,
        "max_disabled_overhead": args.max_disabled_overhead,
        "max_enabled_overhead": args.max_enabled_overhead,
    }
    with open(args.json, "w") as out:
        json.dump(payload, out, indent=2)
    print(f"wrote {args.json}")

    failed = False
    if summary["attribution"] < args.min_attribution:
        print(
            f"FAIL: only {summary['attribution']:.1%} of wall time attributed to "
            f"named phases (floor {args.min_attribution:.0%})",
            file=sys.stderr,
        )
        failed = True
    if disabled_overhead > args.max_disabled_overhead:
        print(
            f"FAIL: disabled-telemetry overhead {disabled_overhead:.2%} over the "
            f"{args.max_disabled_overhead:.0%} budget",
            file=sys.stderr,
        )
        failed = True
    if enabled_overhead > args.max_enabled_overhead:
        print(
            f"FAIL: enabled-telemetry overhead {enabled_overhead:.2%} over the "
            f"{args.max_enabled_overhead:.0%} budget",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
