#!/usr/bin/env python
"""Incremental-update acceptance benchmark for the versioned engine.

Two claims, each measured and enforced:

1. **Patch beats re-prepare** — advancing a prepared dataset by a
   single-row update through :meth:`QueryEngine.update` (delta apply +
   lineage fingerprint + table splice + incremental score maintenance)
   must beat a full re-prepare of the same engine state (fresh
   sentinels + cold ``O(d·n²/64)`` bitset-table build + one full score
   sweep) by at least 10x at n=4000, d=4.
2. **Exactness** — the patched tables must answer ``dominated_counts``
   bit-identically to a cold rebuild of the child version, and the
   incrementally maintained score vector must equal ``score_all``.

A streaming mix (inserts + tombstoned deletes + updates through
:meth:`QueryEngine.continuous`) is also timed and reported, without a
floor — CI runners are too noisy to gate on throughput.

Run:  PYTHONPATH=src python benchmarks/bench_engine_incremental.py
      PYTHONPATH=src python benchmarks/bench_engine_incremental.py \
          --n 700 --min-speedup 0.5          # CI smoke (tiny size)

Writes the measurements to ``--json`` (default
``benchmarks/BENCH_incremental.json``). Exits 1 when the speedup floor
is missed, 2 when the incremental path disagrees with a cold rebuild.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.score import score_all
from repro.datasets.synthetic import independent_dataset
from repro.engine.kernels import PreparedDataset, dominated_counts
from repro.engine.session import PreparedDatasetCache, QueryEngine


def best_of(repeats: int, fn, *args, **kwargs):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, value


def full_reprepare(dataset) -> PreparedDataset:
    """What a fingerprint-invalidating update costs without the delta path.

    The incremental path maintains *both* the packed tables and the full
    score vector, so the fair baseline rebuilds both: fresh sentinels,
    cold table build, and one full ``dominated_counts`` sweep.
    """
    prepared = PreparedDataset(dataset)
    prepared.tables(build=True)
    dominated_counts(dataset, prepared=prepared)
    return prepared


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=4000, help="dataset size")
    parser.add_argument("--d", type=int, default=4, help="dimensions")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--stream-ops", type=int, default=200)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="floor for re-prepare seconds / incremental-update seconds",
    )
    parser.add_argument(
        "--json",
        default=os.path.join(os.path.dirname(__file__), "BENCH_incremental.json"),
    )
    args = parser.parse_args()

    dataset = independent_dataset(args.n, args.d, missing_rate=0.15, seed=0)
    engine = QueryEngine(dataset_cache=PreparedDatasetCache())
    engine.prepare_dataset(dataset).tables(build=True)
    engine.scores(dataset)  # seed incremental maintenance

    # -- claim 1: single-row update, patch vs full re-prepare ---------------
    # The owned continuous handle is the engine's designed update fast
    # path: in-place table splices, no copy-on-write spawn per version.
    target = dataset.ids[args.n // 2]
    live = engine.continuous(dataset, k=8)
    counter = [0]

    def continuous_update():
        counter[0] += 1
        live.update({target: {0: float(counter[0] % 97)}})
        return live.dataset

    patch_s, child = best_of(args.repeats, continuous_update)
    reprepare_s, cold = best_of(args.repeats, full_reprepare, child)
    speedup = reprepare_s / patch_s if patch_s > 0 else float("inf")
    print(
        f"single-row update at n={args.n}, d={args.d}: "
        f"incremental {patch_s * 1e3:.2f}ms vs re-prepare {reprepare_s * 1e3:.2f}ms "
        f"-> {speedup:.1f}x (floor {args.min_speedup:.1f}x)"
    )

    # The copy-on-write versioned path (every parent version stays
    # queryable in the shared cache) is reported but not gated.
    versioned_s, vchild = best_of(
        args.repeats,
        lambda: engine.update(dataset, {target: {0: float(counter[0] % 89)}}),
    )
    print(f"versioned (copy-on-write) update: {versioned_s * 1e3:.2f}ms "
          f"({reprepare_s / versioned_s:.1f}x vs re-prepare)")

    # -- claim 2: exactness --------------------------------------------------
    patched = live.prepared
    if not patched.tables_ready:
        print("FAIL: continuous handle lost its tables", file=sys.stderr)
        return 2
    via_patch = dominated_counts(child, prepared=patched)
    via_cold = dominated_counts(child, prepared=cold)
    if not np.array_equal(via_patch, via_cold):
        print("FAIL: patched tables disagree with a cold rebuild", file=sys.stderr)
        return 2
    maintained = live.scores
    if not np.array_equal(maintained, score_all(child)):
        print("FAIL: maintained scores disagree with score_all", file=sys.stderr)
        return 2
    if not np.array_equal(engine.scores(vchild), score_all(vchild)):
        print("FAIL: versioned-path scores disagree with score_all", file=sys.stderr)
        return 2
    print(f"exactness: patched tables and maintained scores match cold recompute "
          f"(n={child.n})")

    # -- streaming mix (reported, not gated) --------------------------------
    live = engine.continuous(dataset, k=8)
    rng = np.random.default_rng(1)
    start = time.perf_counter()
    for step in range(args.stream_ops):
        live.insert(rng.integers(0, 100, size=(1, args.d)).astype(float))
        if step % 3 == 0:
            live.delete([live.ids[int(rng.integers(0, live.n))]])
        if step % 5 == 0:
            live.update({live.ids[int(rng.integers(0, live.n))]: {0: float(step % 89)}})
        live.top_k(8)
    stream_s = time.perf_counter() - start
    ops = args.stream_ops + args.stream_ops // 3 + args.stream_ops // 5 + args.stream_ops
    print(
        f"streaming mix: {ops} ops+queries in {stream_s:.2f}s "
        f"({ops / stream_s:.0f}/s, debt {live.prepared.tombstone_debt:.0%})"
    )
    if not np.array_equal(live.scores, score_all(live.dataset)):
        print("FAIL: streaming scores disagree with score_all", file=sys.stderr)
        return 2

    payload = {
        "n": args.n,
        "d": args.d,
        "incremental_update_seconds": patch_s,
        "versioned_update_seconds": versioned_s,
        "reprepare_seconds": reprepare_s,
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "stream_ops_per_second": ops / stream_s,
        "engine": engine.stats.summary(),
    }
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.json}")

    if speedup < args.min_speedup:
        print(
            f"FAIL: incremental update speedup {speedup:.2f}x below the "
            f"{args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
