"""Complete-data TKD baselines vs the incomplete algorithms at σ = 0.

Fig. 16's missing-rate axis starts at σ = 0, where the incomplete-data
model degenerates to classic TKD. There the aR-tree algorithms the paper
cites (Papadias et al.; Yiu & Mamoulis) become applicable — this bench
runs them head-to-head with the paper's algorithms on the same complete
dataset, grounding the claim that the R-tree machinery is the thing being
given up when data goes incomplete.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import IncompleteDataset, make_algorithm
from repro.rtree import ARTree, counting_guided_tkd, skyline_based_tkd

K = 8
N = 2000
D = 4


@pytest.fixture(scope="module")
def complete_values():
    rng = np.random.default_rng(0)
    return rng.integers(0, 100, size=(N, D)).astype(float)


@pytest.fixture(scope="module")
def complete_ds(complete_values):
    return IncompleteDataset.from_rows(complete_values.tolist())


@pytest.fixture(scope="module")
def artree(complete_values):
    return ARTree(complete_values)


@pytest.mark.parametrize("algorithm", ("ubb", "big", "ibig"))
def test_incomplete_algorithm_on_complete_data(benchmark, complete_ds, algorithm):
    instance = make_algorithm(complete_ds, algorithm)
    instance.prepare()
    benchmark.group = f"sigma=0: incomplete vs aR-tree (k={K})"
    result = benchmark(instance.query, K)
    benchmark.extra_info["top_score"] = result.scores[0]


def test_artree_counting_guided(benchmark, complete_values, artree):
    benchmark.group = f"sigma=0: incomplete vs aR-tree (k={K})"
    _, scores = benchmark(
        lambda: counting_guided_tkd(complete_values, K, tree=artree)
    )
    benchmark.extra_info["top_score"] = scores[0]


def test_artree_skyline_based(benchmark, complete_values, artree):
    benchmark.group = f"sigma=0: incomplete vs aR-tree (k={K})"
    _, scores = benchmark(
        lambda: skyline_based_tkd(complete_values, K, tree=artree)
    )
    benchmark.extra_info["top_score"] = scores[0]


def test_all_agree_at_sigma_zero(complete_values, complete_ds, artree):
    """Correctness gate for the group: same score multiset everywhere."""
    _, counting = counting_guided_tkd(complete_values, K, tree=artree)
    _, skyline = skyline_based_tkd(complete_values, K, tree=artree)
    big = make_algorithm(complete_ds, "big").query(K)
    assert tuple(counting) == tuple(skyline) == big.score_multiset
