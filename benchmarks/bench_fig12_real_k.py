"""Fig. 12 — TKD cost vs k on the real datasets (Naive included).

Paper series: CPU time of Naive, ESB, UBB, BIG, IBIG for k ∈ {4..64} on
MovieLens, NBA, Zillow. Expected shape: BIG/IBIG fastest, then UBB, then
ESB, Naive slowest; all grow with k; the UBB-vs-BIG gap nearly closes on
NBA (tight MaxScore under correlated stats).
"""

from __future__ import annotations

import pytest

from conftest import IBIG_BINS
from repro import make_algorithm

KS = (4, 16, 64)
ALGORITHMS = ("naive", "esb", "ubb", "big", "ibig")


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("dataset_name", ["movielens", "nba", "zillow"])
def test_fig12_query(benchmark, real_datasets, dataset_name, algorithm, k):
    dataset = real_datasets[dataset_name]
    options = {"bins": IBIG_BINS[dataset_name]} if algorithm == "ibig" else {}
    instance = make_algorithm(dataset, algorithm, **options).prepare()
    benchmark.group = f"fig12 {dataset_name} k={k}"

    result = benchmark(instance.query, k)

    benchmark.extra_info["top_score"] = result.scores[0]
    benchmark.extra_info["scored"] = result.stats.scores_computed
    assert len(result) == k
