"""Benchmarks for the beyond-the-paper extensions.

* Streaming maintenance: one insert into a live :class:`StreamingTKD` vs
  recomputing all scores from scratch — the O(n·d) vs O(n²·d) gap that
  justifies the incremental design.
* MFD evaluation: the UBB-style bound-pruned method vs naive full
  scoring (the paper's "easily generalized" claim, quantified).
* Partitioned (massive-data) TKD: query time across working-memory
  budgets, with synopsis skips standing in for saved I/O.
"""

from __future__ import annotations

import pytest

from repro.core.mfd import top_k_dominating_mfd
from repro.core.partitioned import PartitionedTKD
from repro.core.score import score_all
from repro.core.streaming import StreamingTKD

K = 8


@pytest.fixture(scope="module")
def stream(ind_ds):
    return StreamingTKD.from_dataset(ind_ds)


def test_streaming_insert_delete(benchmark, stream):
    benchmark.group = "extensions streaming (ind)"
    counter = iter(range(10**9))

    def insert_then_delete():
        object_id = stream.insert([1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
        stream.delete(object_id)
        next(counter)

    benchmark(insert_then_delete)
    assert stream.n > 0


def test_streaming_full_recompute_baseline(benchmark, stream, ind_ds):
    """What each update would cost without incremental maintenance."""
    benchmark.group = "extensions streaming (ind)"

    scores = benchmark.pedantic(score_all, args=(ind_ds,), rounds=2, iterations=1)
    assert scores.size == ind_ds.n


@pytest.mark.parametrize("method", ["naive", "ubb"])
def test_mfd_methods(benchmark, nba_ds, method):
    benchmark.group = "extensions MFD (nba)"

    result = benchmark.pedantic(
        top_k_dominating_mfd, args=(nba_ds, K), kwargs={"method": method},
        rounds=2, iterations=1,
    )

    benchmark.extra_info["evaluated"] = result.evaluated
    assert len(result.indices) == K


def test_answer_stability_probe(benchmark, ind_ds):
    """Bootstrap churn of the IND answer under 5% extra missingness."""
    from repro.analysis import perturbation_stability

    benchmark.group = "extensions stability (ind)"
    report = benchmark.pedantic(
        perturbation_stability, args=(ind_ds, K),
        kwargs={"trials": 5, "drop_fraction": 0.05, "rng": 0},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["jaccard_mean"] = round(report["jaccard_mean"], 4)
    assert 0.0 <= report["jaccard_mean"] <= 1.0


@pytest.mark.parametrize("partition_rows", [128, 512, 2048])
def test_partitioned_memory_budget(benchmark, ind_ds, partition_rows):
    """Bounded-memory TKD across partition sizes (TDEP-inspired variant)."""
    instance = PartitionedTKD(ind_ds, partition_rows=partition_rows)
    instance.prepare()
    benchmark.group = f"extensions partitioned (ind) k={K}"

    result = benchmark(instance.query, K)

    benchmark.extra_info["partitions"] = result.stats.extra.get("partitions")
    benchmark.extra_info["skipped"] = result.stats.extra.get("partitions_skipped", 0)
    benchmark.extra_info["synopsis_bytes"] = instance.index_bytes
    assert len(result.indices) == K
