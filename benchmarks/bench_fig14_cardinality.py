"""Fig. 14 — TKD cost vs dataset cardinality N (IND/AC).

Paper series: CPU time of ESB, UBB, BIG, IBIG as N sweeps 50K→250K
(scaled here). Expected shape: every algorithm grows with N; BIG/IBIG
stay well below ESB/UBB across the sweep.
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro import make_algorithm
from repro.datasets import anticorrelated_dataset, independent_dataset

K = 8
N_SWEEP = (1000, 2000, 4000)
ALGORITHMS = ("esb", "ubb", "big", "ibig")

_CACHE = {}


def _dataset(kind: str, n: int):
    key = (kind, n)
    if key not in _CACHE:
        factory = independent_dataset if kind == "ind" else anticorrelated_dataset
        _CACHE[key] = factory(scaled(n), 10, cardinality=100, missing_rate=0.1, seed=0)
    return _CACHE[key]


@pytest.mark.parametrize("n", N_SWEEP)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kind", ["ind", "ac"])
def test_fig14_query(benchmark, kind, algorithm, n):
    dataset = _dataset(kind, n)
    options = {"bins": 32} if algorithm == "ibig" else {}
    instance = make_algorithm(dataset, algorithm, **options).prepare()
    benchmark.group = f"fig14 {kind} n={n}"

    result = benchmark(instance.query, K)
    assert len(result) == K
