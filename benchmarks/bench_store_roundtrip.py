#!/usr/bin/env python
"""Persistent-store round-trip smoke: populate → new process → warm hits.

Drives the acceptance scenario of the store layer end to end, across
real process boundaries:

1. **Process A** runs ``repro query data.csv --sweep-k ... --store DIR``
   and must report every answer written to the store (cold run).
2. **Process B** repeats the identical invocation and must report every
   answer served warm from the store (no algorithm re-execution for the
   cached keys) with *bit-identical* answer lines.
3. **Process C** runs ``repro cache stats`` and must see the persisted
   entries and planner calibration.

Run:  PYTHONPATH=src python benchmarks/bench_store_roundtrip.py
      PYTHONPATH=src python benchmarks/bench_store_roundtrip.py --n 300

Exits 1 when the warm run missed the store, 2 when the answers differ
between processes.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.datasets.synthetic import independent_dataset


def run_cli(argv: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


def answer_lines(stdout: str) -> list[str]:
    return [line for line in stdout.splitlines() if line.startswith("k=")]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=600, help="dataset size")
    parser.add_argument("--dim", type=int, default=4)
    parser.add_argument("--sweep", default="4,8,16,32")
    args = parser.parse_args()

    sweep = [int(token) for token in args.sweep.split(",")]
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "data.csv"
        store_dir = Path(tmp) / "store"
        dataset = independent_dataset(args.n, args.dim, missing_rate=0.15, seed=0)
        dataset.to_csv(csv_path)

        argv = [
            "query",
            str(csv_path),
            "--id-column",
            "id",
            "--sweep-k",
            args.sweep,
            "--store",
            str(store_dir),
        ]

        cold = run_cli(argv)
        print(cold.stdout, end="")
        if cold.returncode != 0:
            print(cold.stderr, file=sys.stderr)
            return cold.returncode
        expected_cold = f"store 0/{len(sweep)} warm ({len(sweep)} written)"
        if expected_cold not in cold.stdout:
            print(f"FAIL: cold run did not report {expected_cold!r}", file=sys.stderr)
            return 1

        warm = run_cli(argv)
        print(warm.stdout, end="")
        if warm.returncode != 0:
            print(warm.stderr, file=sys.stderr)
            return warm.returncode
        expected_warm = f"store {len(sweep)}/{len(sweep)} warm (0 written)"
        if expected_warm not in warm.stdout:
            print(f"FAIL: warm run did not report {expected_warm!r}", file=sys.stderr)
            return 1

        if answer_lines(cold.stdout) != answer_lines(warm.stdout):
            print("FAIL: warm answers differ from cold answers", file=sys.stderr)
            return 2

        stats = run_cli(["cache", "stats", "--dir", str(store_dir)])
        print(stats.stdout, end="")
        if stats.returncode != 0 or f"{len(sweep)} result entries" not in stats.stdout:
            print("FAIL: cache stats did not see the persisted entries", file=sys.stderr)
            return 1
        if "planner calibration present" not in stats.stdout:
            print("FAIL: planner calibration was not persisted", file=sys.stderr)
            return 1

    print(f"OK: {len(sweep)}-point sweep round-tripped warm across processes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
