"""Shared fixtures for the per-figure benchmark suite.

Dataset sizes here are laptop-scale by default; set ``REPRO_SCALE`` to
raise them toward the paper's Table 2 sizes. Every benchmark times the
**query phase only** (indexes and queues are prepared in the fixture),
mirroring how the paper separates Table 3 preprocessing from the
Fig. 12–17 query costs.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import (
    anticorrelated_dataset,
    independent_dataset,
    movielens_like,
    nba_like,
    zillow_like,
)


def pytest_configure(config):
    """Default to single-round timing so the full figure suite stays fast.

    ``pytest benchmarks/ --benchmark-only`` exercises 200+ parameter points;
    with pytest-benchmark's 5-round calibration that takes hours on the
    slower sweeps. One round per point is plenty for shape reproduction.
    Explicit command-line values still win.
    """
    opts = config.option
    if getattr(opts, "benchmark_min_rounds", None) == 5:
        opts.benchmark_min_rounds = 1
    # pytest-benchmark stores max-time as a string ("1.0" is the default).
    if str(getattr(opts, "benchmark_max_time", "")) == "1.0":
        opts.benchmark_max_time = "0.2"


def _scale() -> float:
    try:
        return max(float(os.environ.get("REPRO_SCALE", "1.0")), 0.01)
    except ValueError:
        return 1.0


def scaled(base: int, minimum: int = 200) -> int:
    """Scale a benchmark-default object count by REPRO_SCALE."""
    return max(int(round(base * _scale())), minimum)


@pytest.fixture(scope="session")
def movielens_ds():
    return movielens_like(scaled(400), 60, seed=0)


@pytest.fixture(scope="session")
def nba_ds():
    return nba_like(scaled(1600), seed=0)


@pytest.fixture(scope="session")
def zillow_ds():
    return zillow_like(scaled(2500), seed=0)


@pytest.fixture(scope="session")
def ind_ds():
    return independent_dataset(scaled(2000), 10, cardinality=100, missing_rate=0.1, seed=0)


@pytest.fixture(scope="session")
def ac_ds():
    return anticorrelated_dataset(scaled(2000), 10, cardinality=100, missing_rate=0.1, seed=0)


@pytest.fixture(scope="session")
def real_datasets(movielens_ds, nba_ds, zillow_ds):
    return {"movielens": movielens_ds, "nba": nba_ds, "zillow": zillow_ds}


@pytest.fixture(scope="session")
def synthetic_datasets(ind_ds, ac_ds):
    return {"ind": ind_ds, "ac": ac_ds}


#: The paper's per-dataset IBIG bin budgets (scaled-down Zillow variant).
IBIG_BINS = {
    "movielens": 2,
    "nba": 64,
    "zillow": [6, 10, 35, 32, 64],
    "ind": 32,
    "ac": 32,
}
