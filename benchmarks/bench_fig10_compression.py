"""Fig. 10 — WAH vs CONCISE: compression CPU time and ratio.

Paper series: per real dataset, the CPU time to compress the bitmap
index (Fig. 10a) and the compression ratio (Fig. 10b). Expected shape:
CONCISE ratio ≤ WAH ratio everywhere; NBA barely compresses (ratio ≈ 1);
range encoding limits both codecs.

Extension series: Roaring (not in the paper) on the same indexes — the
structurally different challenger to "range encoding is not amenable to
compression". Measured outcome: the claim survives. Run containers do
collapse the all-ones missing-value columns, but the scattered dense
columns dominating a range-encoded index cost Roaring's array/bitmap
containers far more than the packed 1-bit representation (ratios > 1
everywhere, up to ~5x on NBA/Zillow-like data).
"""

from __future__ import annotations

import pytest

from repro.bitmap.compression import compress_index
from repro.bitmap.index import BitmapIndex

_INDEX_CACHE: dict[str, BitmapIndex] = {}


def _index_for(name: str, dataset) -> BitmapIndex:
    if name not in _INDEX_CACHE:
        _INDEX_CACHE[name] = BitmapIndex(dataset)
    return _INDEX_CACHE[name]


@pytest.mark.parametrize("scheme", ["wah", "concise", "roaring"])
@pytest.mark.parametrize("dataset_name", ["movielens", "nba", "zillow"])
def test_fig10_compress(benchmark, real_datasets, dataset_name, scheme):
    index = _index_for(dataset_name, real_datasets[dataset_name])
    benchmark.group = f"fig10 {dataset_name}"

    report = benchmark(compress_index, index, scheme)

    benchmark.extra_info["compression_ratio"] = round(report.ratio, 4)
    benchmark.extra_info["original_bytes"] = report.original_bytes
    benchmark.extra_info["compressed_bytes"] = report.compressed_bytes
    # Word-aligned codecs hover around ratio 1 (the paper's finding);
    # Roaring inflates dense range-encoded columns — up to ~5x.
    limit = 8.0 if scheme == "roaring" else 2.0
    assert 0 < report.ratio < limit
