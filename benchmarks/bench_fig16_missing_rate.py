"""Fig. 16 — TKD cost vs missing rate σ (IND/AC).

Paper series: CPU time of ESB, UBB, BIG, IBIG for σ ∈ {0..40%}.
Expected shape: CPU time *drops* as σ grows — fewer comparable pairs
mean cheaper score computations — the paper's counter-intuitive finding.
"""

from __future__ import annotations

import pytest

from conftest import scaled
from repro import make_algorithm
from repro.datasets import anticorrelated_dataset, independent_dataset

K = 8
RATE_SWEEP = (0.0, 0.1, 0.4)
ALGORITHMS = ("esb", "ubb", "big", "ibig")

_CACHE = {}


def _dataset(kind: str, rate: float):
    key = (kind, rate)
    if key not in _CACHE:
        factory = independent_dataset if kind == "ind" else anticorrelated_dataset
        _CACHE[key] = factory(scaled(1500), 10, cardinality=100, missing_rate=rate, seed=0)
    return _CACHE[key]


@pytest.mark.parametrize("rate", RATE_SWEEP)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kind", ["ind", "ac"])
def test_fig16_query(benchmark, kind, algorithm, rate):
    dataset = _dataset(kind, rate)
    options = {"bins": 32} if algorithm == "ibig" else {}
    instance = make_algorithm(dataset, algorithm, **options).prepare()
    benchmark.group = f"fig16 {kind} sigma={rate:.0%}"

    result = benchmark(instance.query, K)
    assert len(result) == K
