#!/usr/bin/env python
"""Blocked engine kernels vs the seed per-object scoring path.

The acceptance benchmark for the engine layer: ``score_all`` through
:func:`repro.engine.kernels.dominated_counts` (one ``(b, n, d)`` broadcast
per block) must beat the seed's per-object loop (one ``dominated_mask``
call per object — exactly what Naive, ESB's filtering step and the MFD
operator used to do) by at least 5x at n=5000, d=6.

Run:  PYTHONPATH=src python benchmarks/bench_engine_kernels.py
      PYTHONPATH=src python benchmarks/bench_engine_kernels.py --n 800 --d 4 --min-speedup 1.0   # CI smoke

Exits non-zero when the speedup floor is missed or the two paths disagree.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.dominance import dominated_mask
from repro.core.mfd import mfd_scores
from repro.datasets.synthetic import independent_dataset
from repro.engine.kernels import auto_block, dominated_counts


def per_object_score_all(dataset) -> np.ndarray:
    """The seed hot path: one vectorised mask per object, Python loop over n."""
    return np.asarray(
        [int(dominated_mask(dataset, i).sum()) for i in range(dataset.n)],
        dtype=np.int64,
    )


def best_of(repeats: int, fn, *args):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=5000, help="objects (default 5000)")
    parser.add_argument("--d", type=int, default=6, help="dimensions (default 6)")
    parser.add_argument("--missing-rate", type=float, default=0.1)
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail below this blocked-vs-per-object ratio (default 5.0)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    dataset = independent_dataset(
        args.n, args.d, cardinality=100, missing_rate=args.missing_rate, seed=args.seed
    )
    block = auto_block(dataset.n, dataset.d)
    print(
        f"score_all on n={dataset.n} d={dataset.d} "
        f"missing_rate={dataset.missing_rate:.2f} (kernel block={block})"
    )

    loop_seconds, loop_scores = best_of(args.repeats, per_object_score_all, dataset)
    kernel_seconds, kernel_scores = best_of(args.repeats, dominated_counts, dataset)

    if loop_scores.tolist() != kernel_scores.tolist():
        print("FAIL: blocked kernel disagrees with the per-object path", file=sys.stderr)
        return 2

    speedup = loop_seconds / kernel_seconds if kernel_seconds > 0 else float("inf")
    print(f"  per-object loop : {loop_seconds * 1e3:9.1f} ms")
    print(f"  blocked kernel  : {kernel_seconds * 1e3:9.1f} ms")
    print(f"  speedup         : {speedup:9.1f}x  (floor {args.min_speedup:.1f}x)")

    # Secondary exhibit: the MFD operator rides the same kernel (its seed
    # implementation was another per-object dominated_mask loop).
    mfd_seconds, _ = best_of(1, lambda: mfd_scores(dataset))
    print(f"  mfd_scores (blocked, same kernel): {mfd_seconds * 1e3:9.1f} ms")

    if speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below floor {args.min_speedup}x", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
