#!/usr/bin/env python
"""Partitioned-execution acceptance benchmark.

Two claims, each measured and enforced:

1. **Sharding beats the monolithic engine where bounds are loose** — at
   n=20000, d=4 with 4 pool workers and a high missing rate (σ = 0.8,
   the regime where the paper's own pruning family degrades, Fig. 18a),
   ``QueryEngine.query(partitions=P, workers=4)`` must beat the
   monolithic ``engine.query`` (cost-based ``algorithm="auto"``) by at
   least 2x wall-clock.
2. **Exactness** — the partitioned answer must be bit-identical to the
   monolithic one (indices and scores, deterministic tie-breaking).

The phase-2 **candidate-survival fraction** (what share of objects had
to be exchanged after the summary bounds + τ refinement) is logged and
written to the JSON payload, along with phase timings.

Run:  PYTHONPATH=src python benchmarks/bench_engine_partition.py
      PYTHONPATH=src python benchmarks/bench_engine_partition.py \
          --n 1500 --partitions 3 --workers 2 --min-speedup 0.0  # CI smoke

Writes the measurements to ``--json`` (default
``benchmarks/BENCH_partition.json``). Exits 1 when the speedup floor is
missed, 2 when the partitioned answer disagrees with the monolithic one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.datasets.synthetic import independent_dataset
from repro.engine.session import PreparedDatasetCache, QueryEngine


def timed_cold_query(dataset, k, repeats, **query_kwargs):
    """Best-of-N cold query: fresh session + private cache per attempt."""
    best, result = float("inf"), None
    for _ in range(repeats):
        engine = QueryEngine(dataset_cache=PreparedDatasetCache())
        start = time.perf_counter()
        result = engine.query(dataset, k, **query_kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000, help="dataset size")
    parser.add_argument("--d", type=int, default=4, help="dimensions")
    parser.add_argument("--k", type=int, default=10, help="answer size")
    parser.add_argument(
        "--missing-rate",
        type=float,
        default=0.8,
        help="σ of the workload; high missingness is where monolithic "
        "bounds degrade and sharding pays (default 0.8)",
    )
    parser.add_argument("--partitions", type=int, default=8, help="shard count")
    parser.add_argument("--workers", type=int, default=4, help="pool workers")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="floor for monolithic seconds / partitioned seconds",
    )
    parser.add_argument(
        "--json",
        default=os.path.join(os.path.dirname(__file__), "BENCH_partition.json"),
    )
    args = parser.parse_args()

    dataset = independent_dataset(
        args.n, args.d, missing_rate=args.missing_rate, seed=0
    )
    print(
        f"workload: n={args.n} d={args.d} k={args.k} σ={args.missing_rate} "
        f"(P={args.partitions}, workers={args.workers})"
    )

    mono_s, mono = timed_cold_query(dataset, args.k, args.repeats)
    print(f"monolithic auto ({mono.algorithm}): {mono_s * 1e3:.0f}ms")

    part_s, part = timed_cold_query(
        dataset, args.k, args.repeats, partitions=args.partitions, workers=args.workers
    )
    extra = part.stats.extra
    survival = extra.get("survival", 1.0)
    speedup = mono_s / part_s if part_s > 0 else float("inf")
    print(
        f"partitioned {extra.get('partitions')}x{extra.get('workers')}: "
        f"{part_s * 1e3:.0f}ms -> {speedup:.1f}x (floor {args.min_speedup:.1f}x)"
    )
    print(
        f"phase 1 {extra.get('phase1_seconds', 0.0) * 1e3:.0f}ms, "
        f"phase 2 {extra.get('phase2_seconds', 0.0) * 1e3:.0f}ms, "
        f"candidate survival {survival:.1%} "
        f"({part.stats.candidates} of {args.n}; {extra.get('refined', 0)} refined, "
        f"tau={extra.get('tau')})"
    )

    # Sequential sharding (no pool) is reported but not gated: it shows
    # how much of the win is protocol (per-shard tables + bounds) vs pool.
    seq_s, seq = timed_cold_query(dataset, args.k, 1, partitions=args.partitions)
    print(f"partitioned sequential: {seq_s * 1e3:.0f}ms ({mono_s / seq_s:.1f}x)")

    # Bit-identity is defined against index-deterministic selection
    # (lowest index among boundary ties); the pruning family may evict a
    # different — equally tied — boundary object, so the monolithic
    # engine is held to the score-multiset invariant instead.
    from repro.core.query import top_k_dominating

    reference = top_k_dominating(dataset, args.k, algorithm="naive")
    if part.indices != reference.indices or part.scores != reference.scores:
        print("FAIL: partitioned answer is not bit-identical to naive", file=sys.stderr)
        return 2
    if seq.indices != reference.indices or seq.scores != reference.scores:
        print("FAIL: sequential partitioned answer is not bit-identical", file=sys.stderr)
        return 2
    if mono.score_multiset != reference.score_multiset:
        print("FAIL: monolithic auto answer has a different score multiset", file=sys.stderr)
        return 2
    print(
        f"exactness: partitioned bit-identical to naive; monolithic "
        f"({mono.algorithm}) multiset-identical for k={args.k}"
    )

    payload = {
        "n": args.n,
        "d": args.d,
        "k": args.k,
        "missing_rate": args.missing_rate,
        "partitions": args.partitions,
        "workers": args.workers,
        "monolithic_seconds": mono_s,
        "monolithic_algorithm": mono.algorithm,
        "partitioned_seconds": part_s,
        "sequential_partitioned_seconds": seq_s,
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "candidate_survival": survival,
        "candidates": part.stats.candidates,
        "refined": extra.get("refined", 0),
        "phase1_seconds": extra.get("phase1_seconds", 0.0),
        "phase2_seconds": extra.get("phase2_seconds", 0.0),
    }
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.json}")

    if speedup < args.min_speedup:
        print(
            f"FAIL: partitioned speedup {speedup:.2f}x below the "
            f"{args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
