"""Fig. 13 — TKD cost vs k on synthetic IND/AC.

Paper series: CPU time of ESB, UBB, BIG, IBIG for k ∈ {4..64} (Naive is
dropped, as in the paper). Expected shape: BIG/IBIG ≪ UBB < ESB; cost
grows with k; ESB's candidate set (hence cost) is larger on AC.
"""

from __future__ import annotations

import pytest

from conftest import IBIG_BINS
from repro import make_algorithm

KS = (4, 16, 64)
ALGORITHMS = ("esb", "ubb", "big", "ibig")


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("dataset_name", ["ind", "ac"])
def test_fig13_query(benchmark, synthetic_datasets, dataset_name, algorithm, k):
    dataset = synthetic_datasets[dataset_name]
    options = {"bins": IBIG_BINS[dataset_name]} if algorithm == "ibig" else {}
    instance = make_algorithm(dataset, algorithm, **options).prepare()
    benchmark.group = f"fig13 {dataset_name} k={k}"

    result = benchmark(instance.query, k)

    benchmark.extra_info["scored"] = result.stats.scores_computed
    assert len(result) == k
