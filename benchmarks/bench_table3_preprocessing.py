"""Table 3 — preprocessing time of the three auxiliary structures.

Paper rows: per dataset, the cost of (a) MaxScore + F computation,
(b) the exact bitmap index, (c) the binned bitmap index. Expected shape:
building the exact bitmap index costs more than the binned one (more
columns to create and maintain), and MaxScore/F is the cheapest phase.
"""

from __future__ import annotations

import pytest

from conftest import IBIG_BINS
from repro.bitmap.binned import BinnedBitmapIndex
from repro.bitmap.index import BitmapIndex
from repro.core.maxscore import max_scores, maxscore_queue
from repro.skyband.buckets import BucketIndex

ALL = ["movielens", "nba", "zillow", "ind", "ac"]


def _dataset(real_datasets, synthetic_datasets, name):
    return {**real_datasets, **synthetic_datasets}[name]


@pytest.mark.parametrize("dataset_name", ALL)
def test_table3_maxscore_and_f(benchmark, real_datasets, synthetic_datasets, dataset_name):
    dataset = _dataset(real_datasets, synthetic_datasets, dataset_name)
    benchmark.group = f"table3 {dataset_name}"

    def build():
        scores = max_scores(dataset)
        maxscore_queue(dataset, scores)
        return BucketIndex(dataset)

    buckets = benchmark(build)
    assert len(buckets) >= 1


@pytest.mark.parametrize("dataset_name", ALL)
def test_table3_bitmap_index(benchmark, real_datasets, synthetic_datasets, dataset_name):
    dataset = _dataset(real_datasets, synthetic_datasets, dataset_name)
    benchmark.group = f"table3 {dataset_name}"

    index = benchmark(BitmapIndex, dataset)

    benchmark.extra_info["index_bytes"] = index.size_bits // 8


@pytest.mark.parametrize("dataset_name", ALL)
def test_table3_binned_bitmap_index(benchmark, real_datasets, synthetic_datasets, dataset_name):
    dataset = _dataset(real_datasets, synthetic_datasets, dataset_name)
    benchmark.group = f"table3 {dataset_name}"

    index = benchmark(BinnedBitmapIndex, dataset, IBIG_BINS[dataset_name])

    benchmark.extra_info["index_bytes"] = index.size_bits // 8
