"""Fig. 18 — pruning-heuristic effectiveness vs k under IBIG.

Paper series: per dataset, the number of objects pruned by Heuristic 1
(upper-bound score), Heuristic 2 (bitmap/MaxBitScore), and Heuristic 3
(partial score), exclusively counted. Expected shape: Heuristic 3 fires
everywhere; Heuristic 1 collapses on AC (low k-th scores); Heuristic 2
is weak at MovieLens' 95% missing rate.
"""

from __future__ import annotations

import pytest

from conftest import IBIG_BINS
from repro import make_algorithm

KS = (4, 64)


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("dataset_name", ["movielens", "nba", "zillow", "ind", "ac"])
def test_fig18_pruning(benchmark, real_datasets, synthetic_datasets, dataset_name, k):
    dataset = {**real_datasets, **synthetic_datasets}[dataset_name]
    instance = make_algorithm(dataset, "ibig", bins=IBIG_BINS[dataset_name]).prepare()
    benchmark.group = f"fig18 {dataset_name}"

    result = benchmark(instance.query, k)

    stats = result.stats
    benchmark.extra_info["pruned_h1"] = stats.pruned_h1
    benchmark.extra_info["pruned_h2"] = stats.pruned_h2
    benchmark.extra_info["pruned_h3"] = stats.pruned_h3
    benchmark.extra_info["scored"] = stats.scores_computed
    # Exclusive accounting must cover the whole dataset.
    assert stats.pruned_total + stats.scores_computed == dataset.n
