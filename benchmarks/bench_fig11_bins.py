"""Fig. 11 — BIG vs IBIG across bin counts ξ.

Paper series: per dataset, IBIG CPU time for ξ ∈ {…} next to BIG, with
the index sizes S_BIG and S_IBIG printed in the figure header. Expected
shape: IBIG query time falls and index size grows as ξ grows; S_IBIG ≪
S_BIG throughout; ξ → C+1 degenerates to BIG.
"""

from __future__ import annotations

import pytest

from repro import make_algorithm

K = 8
BIN_SWEEP = (2, 8, 32)


@pytest.mark.parametrize("dataset_name", ["movielens", "nba", "zillow", "ind", "ac"])
def test_fig11_big_reference(benchmark, real_datasets, synthetic_datasets, dataset_name):
    dataset = {**real_datasets, **synthetic_datasets}[dataset_name]
    algorithm = make_algorithm(dataset, "big").prepare()
    benchmark.group = f"fig11 {dataset_name}"
    benchmark.name = f"big C+1 [{dataset_name}]"

    result = benchmark(algorithm.query, K)

    benchmark.extra_info["index_bytes"] = algorithm.index_bytes
    assert len(result) == K


@pytest.mark.parametrize("bins", BIN_SWEEP)
@pytest.mark.parametrize("dataset_name", ["movielens", "nba", "zillow", "ind", "ac"])
def test_fig11_ibig_bins(benchmark, real_datasets, synthetic_datasets, dataset_name, bins):
    dataset = {**real_datasets, **synthetic_datasets}[dataset_name]
    algorithm = make_algorithm(dataset, "ibig", bins=bins).prepare()
    benchmark.group = f"fig11 {dataset_name}"

    result = benchmark(algorithm.query, K)

    benchmark.extra_info["index_bytes"] = algorithm.index_bytes
    benchmark.extra_info["bins"] = bins
    assert len(result) == K
