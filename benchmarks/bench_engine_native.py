#!/usr/bin/env python
"""Native kernel backend + zero-copy dispatch acceptance benchmark.

Two claims, each measured and enforced:

1. **The native backend beats numpy on the hot loop** — the fused
   gather+AND+popcount accumulator pass (what ``dominated_counts`` and
   ``foreign_dominated_counts`` bottom out in) over packed bitset tables
   at n=20000, d=4, chunked the way the kernels chunk it, must run at
   least ``--min-speedup`` (default 2x) faster than the numpy route.
   The raw per-row popcount is measured alongside for context.
2. **Shared-memory dispatch beats pickling** — obtaining a usable
   ``PreparedDataset`` in a worker from a ``SharedTables.attach`` must
   cost at least ``--min-payload-ratio`` (default 5x) less than the
   pickle round-trip of the same prepared state that ``query_many``
   workers would otherwise pay per task.

Both claims are gated on **bit-identical parity**: every measured kernel
invocation is compared across backends and any disagreement exits 2.

Run:  PYTHONPATH=src python benchmarks/bench_engine_native.py
      PYTHONPATH=src python benchmarks/bench_engine_native.py \
          --n 4096 --repeats 1  # CI smoke (floors still enforced)

Writes the measurements to ``--json`` (default
``benchmarks/BENCH_native.json``). Exits 1 when a floor is missed, 2 on
a cross-backend parity mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time

import numpy as np

from repro.datasets.synthetic import independent_dataset
from repro.engine.backend import (
    SharedTables,
    native_available,
    native_build_error,
    use_backend,
)
from repro.engine.kernels import PreparedDataset, _BitsetTables

_CHUNK = 8192  # the kernels' bitset batch granularity


def _best_of(repeats, fn):
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _accumulator_pass(backend, tables, lo, hi, n):
    out = np.empty(n, dtype=np.int64)
    for start in range(0, n, _CHUNK):
        idx = np.arange(start, min(start + _CHUNK, n), dtype=np.intp)
        out[idx] = backend.accumulator_counts(
            tables, lo, hi, idx, direction="dominated", live=None
        )
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20000, help="dataset size")
    parser.add_argument("--d", type=int, default=4, help="dimensions")
    parser.add_argument("--missing-rate", type=float, default=0.2)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="floor for numpy seconds / native seconds on the fused hot loop",
    )
    parser.add_argument(
        "--min-payload-ratio",
        type=float,
        default=5.0,
        help="floor for pickle-roundtrip seconds / shared-memory-attach seconds",
    )
    parser.add_argument(
        "--json",
        default=os.path.join(os.path.dirname(__file__), "BENCH_native.json"),
    )
    args = parser.parse_args()

    if not native_available():
        print(f"native backend unavailable: {native_build_error()}", file=sys.stderr)
        return 1

    dataset = independent_dataset(args.n, args.d, missing_rate=args.missing_rate, seed=0)
    n = dataset.n
    prepared = PreparedDataset(dataset)
    print(f"workload: n={n} d={dataset.d} σ={args.missing_rate}")
    start = time.perf_counter()
    # Built directly: at n=20000 the ~400MB tables exceed the session
    # cache budget, but the kernels themselves have no such limit.
    tables = _BitsetTables(prepared.lo, prepared.hi)
    print(f"bitset tables: {tables.nbytes / 1e6:.0f}MB built in {time.perf_counter() - start:.1f}s")

    # -- claim 1: fused accumulator hot loop -------------------------------
    per_backend = {}
    for name in ("numpy", "native"):
        with use_backend(name) as backend:
            per_backend[name] = _best_of(
                args.repeats,
                lambda b=backend: _accumulator_pass(b, tables, prepared.lo, prepared.hi, n),
            )
    numpy_s, numpy_counts = per_backend["numpy"]
    native_s, native_counts = per_backend["native"]
    if not np.array_equal(numpy_counts, native_counts):
        print("FAIL: accumulator counts differ between backends", file=sys.stderr)
        return 2
    speedup = numpy_s / native_s if native_s > 0 else float("inf")
    print(
        f"fused accumulator pass ({n} rows, chunk {_CHUNK}): "
        f"numpy {numpy_s * 1e3:.0f}ms, native {native_s * 1e3:.0f}ms -> "
        f"{speedup:.2f}x (floor {args.min_speedup:.1f}x)"
    )

    # Context: the raw per-row popcount alone (no gather/AND fusion).
    words = np.random.default_rng(1).integers(
        0, 2**64, size=(_CHUNK, tables.words), dtype=np.uint64
    )
    pop = {}
    for name in ("numpy", "native"):
        with use_backend(name) as backend:
            pop[name] = _best_of(args.repeats, lambda b=backend: b.popcount_rows(words))
    if not np.array_equal(pop["numpy"][1], pop["native"][1]):
        print("FAIL: popcounts differ between backends", file=sys.stderr)
        return 2
    pop_speedup = pop["numpy"][0] / max(pop["native"][0], 1e-9)
    print(
        f"raw popcount ({_CHUNK}x{tables.words} words): "
        f"numpy {pop['numpy'][0] * 1e3:.2f}ms, native {pop['native'][0] * 1e3:.2f}ms -> "
        f"{pop_speedup:.2f}x (context only)"
    )

    # -- claim 2: per-task payload cost, attach vs unpickle ----------------
    prepared.warm()  # ship the tables too, as the session export would
    if prepared.tables() is None:
        prepared._tables = tables  # keep the comparison honest at full size

    def pickle_roundtrip():
        blob = pickle.dumps(prepared.state_arrays(), protocol=pickle.HIGHEST_PROTOCOL)
        return PreparedDataset.from_state(pickle.loads(blob))

    pickle_s, via_pickle = _best_of(args.repeats, pickle_roundtrip)

    handle = SharedTables.create(prepared)
    try:

        def attach_roundtrip():
            twin = SharedTables.attach(handle.meta)
            view = twin.prepared()
            twin.close()
            return view

        attach_s, via_attach = _best_of(args.repeats, attach_roundtrip)
        # Parity while the segment is still mapped: an attached view must
        # never be read past its unlink (the mapping dies with it).
        check = np.arange(min(n, 512), dtype=np.intp)
        ref = prepared.dominated_count_rows(check)
        shipped_agree = np.array_equal(
            via_pickle.dominated_count_rows(check), ref
        ) and np.array_equal(via_attach.dominated_count_rows(check), ref)
        del via_attach
    finally:
        handle.close()
        handle.unlink()
    if not shipped_agree:
        print("FAIL: shipped prepared datasets disagree with the original", file=sys.stderr)
        return 2
    payload_ratio = pickle_s / max(attach_s, 1e-9)
    print(
        f"per-task payload ({handle.nbytes / 1e6:.0f}MB prepared state): "
        f"pickle {pickle_s * 1e3:.1f}ms, shm attach {attach_s * 1e3:.2f}ms -> "
        f"{payload_ratio:.0f}x (floor {args.min_payload_ratio:.1f}x)"
    )

    payload = {
        "n": n,
        "d": dataset.d,
        "missing_rate": args.missing_rate,
        "chunk": _CHUNK,
        "table_bytes": tables.nbytes,
        "accumulator_numpy_seconds": numpy_s,
        "accumulator_native_seconds": native_s,
        "accumulator_speedup": speedup,
        "min_speedup": args.min_speedup,
        "popcount_numpy_seconds": pop["numpy"][0],
        "popcount_native_seconds": pop["native"][0],
        "popcount_speedup": pop_speedup,
        "payload_bytes": handle.nbytes,
        "payload_pickle_seconds": pickle_s,
        "payload_attach_seconds": attach_s,
        "payload_ratio": payload_ratio,
        "min_payload_ratio": args.min_payload_ratio,
    }
    with open(args.json, "w") as out:
        json.dump(payload, out, indent=2)
    print(f"wrote {args.json}")

    failed = False
    if speedup < args.min_speedup:
        print(
            f"FAIL: native speedup {speedup:.2f}x below the {args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        failed = True
    if payload_ratio < args.min_payload_ratio:
        print(
            f"FAIL: payload ratio {payload_ratio:.1f}x below the "
            f"{args.min_payload_ratio:.1f}x floor",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
